"""Block-incremental, Merkle-authenticated secondary index (BPI-style).

The paper's retrieval path reads metadata through chaincode; at scale every
selector query degenerates into a linear world-state scan. This package is
the search structure the BPI line of work motivates for hybrid-storage
blockchains: each peer keeps a cumulative index over metadata attributes
(source, camera, vehicle class, violation type, time bucket, trust band),
updated block-by-block at commit time, plus a per-block bloom filter over
the attribute values the block touched.

Every epoch (one per committed block) is committed to by a Merkle root
over the index's postings, so

* the query planner can route equality/range/time-window predicates through
  :meth:`PeerIndex.lookup` instead of a full scan,
* :meth:`~repro.obs.explorer.LedgerExplorer.audit_chain` can verify each
  recorded epoch digest against an independent rebuild, and
* a light client can check :class:`PostingProof` membership proofs attached
  to query answers against a trusted epoch root without replaying the chain
  (:func:`verify_posting_proof` / :func:`verify_answer_records`).
"""

from repro.index.filters import BlockFilter
from repro.index.manager import IndexManager
from repro.index.secondary import (
    PeerIndex,
    Posting,
    PostingProof,
    verify_answer_records,
    verify_posting_proof,
)

__all__ = [
    "BlockFilter",
    "IndexManager",
    "PeerIndex",
    "Posting",
    "PostingProof",
    "verify_answer_records",
    "verify_posting_proof",
]
