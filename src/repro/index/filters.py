"""Per-block posting filters: deterministic blooms over attribute tokens.

One :class:`BlockFilter` per committed block summarises which attribute
values (``"camera=cam-07"``, ``"trust_band=trusted"``) the block's valid
writes touched. A reader walking the chain for one value can skip every
block whose filter rules the token out — false positives only cost a wasted
block visit, never a wrong answer. Hash positions derive from SHA-256 of
the token plus a salt byte, so the filter is identical on every peer.
"""

from __future__ import annotations

import hashlib

DEFAULT_BITS = 512
DEFAULT_HASHES = 4


def _positions(token: str, m: int, k: int) -> list[int]:
    out = []
    data = token.encode()
    for salt in range(k):
        h = hashlib.sha256(bytes([salt]) + data).digest()
        out.append(int.from_bytes(h[:8], "big") % m)
    return out


class BlockFilter:
    """A fixed-size bloom filter over attribute-value tokens."""

    def __init__(self, m_bits: int = DEFAULT_BITS, k: int = DEFAULT_HASHES) -> None:
        if m_bits < 8 or k < 1:
            raise ValueError("bloom filter needs m_bits >= 8 and k >= 1")
        self.m_bits = m_bits
        self.k = k
        self._bits = 0
        self._count = 0

    def add(self, token: str) -> None:
        for pos in _positions(token, self.m_bits, self.k):
            self._bits |= 1 << pos
        self._count += 1

    def might_contain(self, token: str) -> bool:
        return all(
            self._bits >> pos & 1 for pos in _positions(token, self.m_bits, self.k)
        )

    def __contains__(self, token: str) -> bool:
        return self.might_contain(token)

    def __len__(self) -> int:
        return self._count

    def to_doc(self) -> dict:
        return {
            "m": self.m_bits,
            "k": self.k,
            "n": self._count,
            "bits": format(self._bits, "x"),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "BlockFilter":
        out = cls(m_bits=int(doc["m"]), k=int(doc["k"]))
        out._bits = int(doc["bits"], 16)
        out._count = int(doc["n"])
        return out
