"""IndexManager: attach one :class:`PeerIndex` per peer on a channel.

The manager is the channel-level lifecycle owner: it equips every current
peer with an index (rebuilding from world state for peers that already
hold committed blocks, e.g. a late-added org after anti-entropy), hooks
``channel.indexing`` so :meth:`Channel.join_peer` can equip future peers,
and picks the reference peer the query engine reads indexed answers from.
"""

from __future__ import annotations

from repro.index.secondary import MIN_TRUST_THRESHOLD, TRUSTED_THRESHOLD, PeerIndex


class IndexManager:
    """Per-channel owner of the peers' block-incremental indexes."""

    def __init__(
        self,
        channel,
        trusted_threshold: float = TRUSTED_THRESHOLD,
        min_threshold: float = MIN_TRUST_THRESHOLD,
    ) -> None:
        self.channel = channel
        self.trusted_threshold = trusted_threshold
        self.min_threshold = min_threshold
        channel.indexing = self
        for peer in channel.peers.values():
            self.attach(peer)

    def attach(self, peer) -> PeerIndex:
        """Equip *peer* with an index, rebuilding from its current state."""
        if getattr(peer, "index", None) is not None:
            return peer.index
        if peer.ledger.height > 0:
            peer.index = PeerIndex.from_world(
                peer.world,
                peer.ledger.height,
                self.trusted_threshold,
                self.min_threshold,
            )
        else:
            peer.index = PeerIndex(self.trusted_threshold, self.min_threshold)
        return peer.index

    def reference_peer(self, height: int | None = None):
        """The first online peer (by name) whose ledger *and* index are at
        ``height`` — the copy indexed reads come from; None if unavailable."""
        if height is None:
            height = self.channel.height()
        for name in sorted(self.channel.peers):
            peer = self.channel.peers[name]
            if (
                peer.online
                and peer.ledger.height == height
                and getattr(peer, "index", None) is not None
                and peer.index.height == height
            ):
                return peer
        return None
