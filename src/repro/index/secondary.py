"""The authenticated index core: postings, epochs, proofs, rebuilds.

Structure
---------

* A :class:`Posting` per ``(dimension, value)`` pair holds the entry ids
  committed under that value **in commit order**, together with a chained
  digest — ``chain = H(prev_chain || entry_id || record_digest)`` — so an
  append costs O(1) and the whole history of the posting is committed by
  one hash.
* Trust bands are *mutable* (scores move sources between bands), so the
  ``trust_band`` dimension is kept as the current source→score-digest map
  per band rather than an append-only posting.
* :meth:`PeerIndex.root` Merkle-hashes every posting leaf (plus the band
  leaves and a height leaf) with :class:`~repro.crypto.merkle.MerkleTree`;
  the root after applying block *n* is **epoch n**'s digest. Epoch digests
  are journaled into the WAL by the durability layer and auditable by the
  explorer.
* :meth:`PeerIndex.prove` produces a :class:`PostingProof` a light client
  can verify against a trusted epoch root with :func:`verify_posting_proof`
  — no chain replay: the client recomputes the posting chain from the
  proof's entries, rebuilds the leaf, and checks Merkle membership.

The index only ever observes **valid** transactions' write sets, so it is
rebuildable from world state alone (:meth:`PeerIndex.from_world`) — that is
both the recovery path and the SAN308 divergence check.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.chaincodes.data import TIME_BUCKET_S, time_bucket
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import MerkleProofError
from repro.fabric.tx import ValidationCode
from repro.index.filters import BlockFilter
from repro.util.serialization import canonical_json

_DATA_PREFIX = "data:"
_TRUST_PREFIX = "trust:"
_DATA_END = _DATA_PREFIX + "\x7f"
_TRUST_END = _TRUST_PREFIX + "\x7f"

# Entry dimensions (append-only postings). ``trust_band`` is separate.
DIMS = ("source", "camera", "class", "violation", "time")

TRUSTED_THRESHOLD = 0.75
MIN_TRUST_THRESHOLD = 0.25

# Wide numeric time ranges iterate bucket ids directly up to this span;
# beyond it we filter the posting keys instead (sparse-range protection).
_MAX_BUCKET_SPAN = 4096


def _seed_chain(dim: str, value: str) -> str:
    """Domain-separated starting digest of a posting chain."""
    return hashlib.sha256(f"posting\x00{dim}\x00{value}".encode()).hexdigest()


def _extend_chain(chain: str, entry_id: str, record_digest: str) -> str:
    h = hashlib.sha256()
    h.update(bytes.fromhex(chain))
    h.update(entry_id.encode())
    h.update(bytes.fromhex(record_digest))
    return h.hexdigest()


def record_digest(raw: bytes) -> str:
    """Digest binding a posting entry to the exact on-chain record bytes."""
    return hashlib.sha256(raw).hexdigest()


@dataclass
class Posting:
    """Append-only entry list for one (dimension, value), chain-digested."""

    dim: str
    value: str
    entries: list[tuple[str, str]] = field(default_factory=list)
    chain: str = ""

    def __post_init__(self) -> None:
        if not self.chain:
            self.chain = _seed_chain(self.dim, self.value)

    def append(self, entry_id: str, digest: str) -> None:
        self.chain = _extend_chain(self.chain, entry_id, digest)
        self.entries.append((entry_id, digest))

    def leaf_bytes(self) -> bytes:
        return canonical_json(
            {
                "chain": self.chain,
                "dim": self.dim,
                "n": len(self.entries),
                "value": self.value,
            }
        )


def _band_leaf_bytes(band: str, sources: dict[str, str]) -> bytes:
    return canonical_json(
        {
            "dim": "trust_band",
            "sources": [[sid, digest] for sid, digest in sorted(sources.items())],
            "value": band,
        }
    )


@dataclass(frozen=True)
class PostingProof:
    """Merkle membership proof for one posting leaf at one epoch.

    ``entries`` is the full entry list of the posting (``(entry_id,
    record_digest)`` pairs in commit order; for ``trust_band`` it is the
    ``(source_id, score_digest)`` map instead). The verifier recomputes the
    posting chain / band leaf from the entries alone, so a tampered or
    truncated entry list cannot reconstruct the committed leaf.
    """

    dim: str
    value: str
    entries: tuple[tuple[str, str], ...]
    merkle: MerkleProof
    root: str  # hex epoch root this proof targets
    height: int  # chain height (blocks) at the proven epoch


def verify_posting_proof(proof: PostingProof, trusted_root: str) -> bool:
    """Raise :class:`MerkleProofError` unless the proof's entries are the
    committed posting under ``trusted_root`` (a hex epoch digest); returns
    True on success so it composes with assertions."""
    if proof.root != trusted_root:
        raise MerkleProofError(
            "posting proof targets a different epoch root than trusted"
        )
    if proof.dim == "trust_band":
        leaf = _band_leaf_bytes(proof.value, dict(proof.entries))
    else:
        chain = _seed_chain(proof.dim, proof.value)
        for entry_id, digest in proof.entries:
            chain = _extend_chain(chain, entry_id, digest)
        leaf = canonical_json(
            {
                "chain": chain,
                "dim": proof.dim,
                "n": len(proof.entries),
                "value": proof.value,
            }
        )
    proof.merkle.verify(leaf, bytes.fromhex(trusted_root))
    return True


def verify_answer_records(
    records: list[dict], proofs: tuple[PostingProof, ...], trusted_root: str
) -> int:
    """Light-client verification of a query answer, no chain replay.

    Every proof must verify against ``trusted_root``, and every answer
    record must hash (canonical JSON) to the record digest its posting
    committed. Returns the number of verified records; raises
    :class:`MerkleProofError` on any failure.
    """
    digests: dict[str, str] = {}
    for proof in proofs:
        verify_posting_proof(proof, trusted_root)
        if proof.dim != "trust_band":
            digests.update(dict(proof.entries))
    for record in records:
        entry_id = record.get("entry_id")
        expected = digests.get(entry_id)
        if expected is None:
            raise MerkleProofError(
                f"answer row {entry_id!r} is not covered by any posting proof"
            )
        if record_digest(canonical_json(record)) != expected:
            raise MerkleProofError(
                f"answer row {entry_id!r} does not match its committed digest"
            )
    return len(records)


class PeerIndex:
    """One peer's cumulative index, advanced one committed block at a time."""

    def __init__(
        self,
        trusted_threshold: float = TRUSTED_THRESHOLD,
        min_threshold: float = MIN_TRUST_THRESHOLD,
    ) -> None:
        self.trusted_threshold = trusted_threshold
        self.min_threshold = min_threshold
        self.postings: dict[tuple[str, str], Posting] = {}
        # band -> source -> digest of the current on-chain trust record.
        self.bands: dict[str, dict[str, str]] = {}
        self.band_of: dict[str, str] = {}
        self.height = 0  # blocks applied; epoch n exists once height == n+1
        self.epochs: dict[int, str] = {}
        self.block_filters: dict[int, BlockFilter] = {}
        self.tombstones: set[str] = set()
        self._indexed: set[str] = set()

    # -- band mapping --------------------------------------------------------

    def band_for(self, score: float) -> str:
        if score >= self.trusted_threshold:
            return "trusted"
        if score >= self.min_threshold:
            return "provisional"
        return "untrusted"

    # -- incremental maintenance (commit path) --------------------------------

    def apply_block(self, block) -> str:
        """Index a committed (annotated) block's valid writes; returns the
        new epoch digest, also recorded under ``epochs[block.number]``."""
        codes = block.validation_codes
        tokens: list[str] = []
        for i, tx in enumerate(block.transactions):
            if codes and codes[i] is not ValidationCode.VALID:
                continue
            for write in tx.rwset.writes:
                tokens.extend(self._apply_write(write))
        self.height = block.number + 1
        filt = BlockFilter()
        for token in tokens:
            filt.add(token)
        self.block_filters[block.number] = filt
        digest = self.root()
        self.epochs[block.number] = digest
        return digest

    def _apply_write(self, write) -> list[str]:
        key = write.key
        if key.startswith(_DATA_PREFIX):
            if write.is_delete or write.value is None:
                entry_id = key[len(_DATA_PREFIX):]
                if entry_id in self._indexed:
                    self.tombstones.add(entry_id)
                return []
            try:
                record = json.loads(write.value)
            except (UnicodeDecodeError, json.JSONDecodeError):
                return []
            if not isinstance(record, dict):
                return []
            entry_id = record.get("entry_id") or key[len(_DATA_PREFIX):]
            return self._insert(entry_id, record, write.value)
        if key.startswith(_TRUST_PREFIX):
            if write.is_delete or write.value is None:
                return []
            return self._apply_trust(key[len(_TRUST_PREFIX):], write.value)
        return []

    def _insert(self, entry_id: str, record: dict, raw: bytes) -> list[str]:
        if entry_id in self._indexed:
            return []  # data records are immutable; re-commit is a no-op
        digest = record_digest(raw)
        tokens = []
        for dim, value in self._record_dims(record):
            posting = self.postings.get((dim, value))
            if posting is None:
                posting = self.postings[(dim, value)] = Posting(dim, value)
            posting.append(entry_id, digest)
            tokens.append(f"{dim}={value}")
        self._indexed.add(entry_id)
        return tokens

    @staticmethod
    def _record_dims(record: dict) -> list[tuple[str, str]]:
        metadata = record.get("metadata") or {}
        dims: list[tuple[str, str]] = []
        source = record.get("source_id")
        if source:
            dims.append(("source", str(source)))
        camera = metadata.get("camera_id") if isinstance(metadata, dict) else None
        if camera:
            dims.append(("camera", str(camera)))
        ts = metadata.get("timestamp") if isinstance(metadata, dict) else None
        if isinstance(ts, (int, float)) and not isinstance(ts, bool):
            dims.append(("time", time_bucket(ts)))
        classes, violations = set(), set()
        if isinstance(metadata, dict):
            for detection in metadata.get("detections") or ():
                if isinstance(detection, dict) and detection.get("vehicle_class"):
                    classes.add(str(detection["vehicle_class"]))
            for violation in metadata.get("violations") or ():
                if isinstance(violation, dict) and violation.get("violation_type"):
                    violations.add(str(violation["violation_type"]))
        dims.extend(("class", c) for c in sorted(classes))
        dims.extend(("violation", v) for v in sorted(violations))
        return dims

    def _apply_trust(self, source_id: str, raw: bytes) -> list[str]:
        try:
            record = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return []
        if not isinstance(record, dict):
            return []
        try:
            score = float(record.get("score", 0.0))
        except (TypeError, ValueError):
            return []
        band = self.band_for(score)
        old = self.band_of.get(source_id)
        if old is not None and old != band:
            self.bands[old].pop(source_id, None)
            if not self.bands[old]:
                del self.bands[old]
        self.band_of[source_id] = band
        self.bands.setdefault(band, {})[source_id] = record_digest(raw)
        return [f"trust_band={band}"]

    # -- the authenticated epoch root ------------------------------------------

    def leaves(self) -> list[bytes]:
        """Deterministic leaf order: height leaf, entry postings sorted by
        (dim, value), band leaves, then the tombstone leaf when present."""
        out = [canonical_json({"dim": "_meta", "height": self.height})]
        for key in sorted(self.postings):
            out.append(self.postings[key].leaf_bytes())
        for band in sorted(self.bands):
            out.append(_band_leaf_bytes(band, self.bands[band]))
        if self.tombstones:
            out.append(
                canonical_json({"dim": "_tombstones", "ids": sorted(self.tombstones)})
            )
        return out

    def root(self) -> str:
        return MerkleTree(self.leaves()).root.hex()

    def prove(self, dim: str, value: str) -> PostingProof:
        """Membership proof for one posting (or trust band) at the current
        epoch. Raises :class:`MerkleProofError` for an unknown value —
        absence proofs are out of scope for this structure."""
        if dim == "trust_band":
            sources = self.bands.get(value)
            if sources is None:
                raise MerkleProofError(f"no trust band {value!r} in the index")
            target = _band_leaf_bytes(value, sources)
            entries = tuple(sorted(sources.items()))
        else:
            posting = self.postings.get((dim, value))
            if posting is None:
                raise MerkleProofError(f"no posting for {dim}={value!r}")
            target = posting.leaf_bytes()
            entries = tuple(posting.entries)
        leaves = self.leaves()
        tree = MerkleTree(leaves)
        return PostingProof(
            dim=dim,
            value=value,
            entries=entries,
            merkle=tree.proof(leaves.index(target)),
            root=tree.root.hex(),
            height=self.height,
        )

    # -- lookups (the planner's index route) ------------------------------------

    def has(self, dim: str, value: str) -> bool:
        """Is there a posting (or trust band) to prove for this value?"""
        if dim == "trust_band":
            return value in self.bands
        return (dim, value) in self.postings

    def lookup(self, dim: str, value: str) -> list[str]:
        """Entry ids under one value, sorted; tombstoned entries excluded.
        ``trust_band`` expands through the member sources' postings."""
        if dim == "trust_band":
            ids: set[str] = set()
            for source in self.bands.get(value, ()):
                posting = self.postings.get(("source", source))
                if posting is not None:
                    ids.update(eid for eid, _ in posting.entries)
            return sorted(ids - self.tombstones)
        posting = self.postings.get((dim, value))
        if posting is None:
            return []
        return sorted(
            {eid for eid, _ in posting.entries if eid not in self.tombstones}
        )

    def lookup_time_range(self, lower: float, upper: float) -> list[str]:
        """Entry ids whose time bucket intersects ``[lower, upper)``."""
        if upper < lower:
            return []
        lo_b, hi_b = int(lower // TIME_BUCKET_S), int(upper // TIME_BUCKET_S)
        if hi_b - lo_b + 1 <= _MAX_BUCKET_SPAN:
            buckets = [f"{b:012d}" for b in range(lo_b, hi_b + 1)]
        else:  # sparse wide range: filter the values actually present
            buckets = sorted(
                v
                for (dim, v) in self.postings
                if dim == "time" and lo_b <= int(v) <= hi_b
            )
        ids: set[str] = set()
        for bucket in buckets:
            posting = self.postings.get(("time", bucket))
            if posting is not None:
                ids.update(eid for eid, _ in posting.entries)
        return sorted(ids - self.tombstones)

    def time_buckets(self, lower: float, upper: float) -> list[str]:
        """Bucket values present in the index that intersect the range."""
        if upper < lower:
            return []
        lo_b, hi_b = int(lower // TIME_BUCKET_S), int(upper // TIME_BUCKET_S)
        return sorted(
            v
            for (dim, v) in self.postings
            if dim == "time" and lo_b <= int(v) <= hi_b
        )

    def blocks_possibly_containing(self, dim: str, value: str) -> list[int]:
        """Block numbers whose posting filter admits ``dim=value``."""
        token = f"{dim}={value}"
        return [n for n, f in sorted(self.block_filters.items()) if token in f]

    # -- persistence / rebuild ----------------------------------------------------

    def fresh(self) -> "PeerIndex":
        """An empty index with this one's thresholds (post-wipe state)."""
        return PeerIndex(self.trusted_threshold, self.min_threshold)

    def to_doc(self) -> dict:
        return {
            "height": self.height,
            "thresholds": [self.trusted_threshold, self.min_threshold],
            "postings": [
                [dim, value, p.chain, [[e, d] for e, d in p.entries]]
                for (dim, value), p in sorted(self.postings.items())
            ],
            "bands": {
                band: [[s, d] for s, d in sorted(members.items())]
                for band, members in sorted(self.bands.items())
            },
            "epochs": {str(n): digest for n, digest in sorted(self.epochs.items())},
            "filters": {
                str(n): f.to_doc() for n, f in sorted(self.block_filters.items())
            },
            "tombstones": sorted(self.tombstones),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "PeerIndex":
        trusted, minimum = doc.get("thresholds", [TRUSTED_THRESHOLD, MIN_TRUST_THRESHOLD])
        out = cls(float(trusted), float(minimum))
        out.height = int(doc["height"])
        for dim, value, chain, entries in doc.get("postings", ()):
            posting = Posting(dim=dim, value=value, chain=chain)
            posting.entries = [(e, d) for e, d in entries]
            out.postings[(dim, value)] = posting
        out._indexed = {
            eid
            for (dim, _), posting in out.postings.items()
            for eid, _ in posting.entries
        }
        for band, members in doc.get("bands", {}).items():
            out.bands[band] = {s: d for s, d in members}
            for s in out.bands[band]:
                out.band_of[s] = band
        out.epochs = {int(n): d for n, d in doc.get("epochs", {}).items()}
        out.block_filters = {
            int(n): BlockFilter.from_doc(f) for n, f in doc.get("filters", {}).items()
        }
        out.tombstones = set(doc.get("tombstones", ()))
        return out

    @classmethod
    def from_world(
        cls,
        world,
        height: int,
        trusted_threshold: float = TRUSTED_THRESHOLD,
        min_threshold: float = MIN_TRUST_THRESHOLD,
    ) -> "PeerIndex":
        """Rebuild from committed world state (recovery / divergence check).

        Replaying inserts in ``(block, tx)`` version order reproduces the
        exact chained posting digests of incremental maintenance, so the
        rebuilt root matches the live root at the same height. Per-block
        filters are approximated from the data records' versions (trust
        tokens are not recoverable per block from current state); deleted
        records are invisible here, so callers skip root comparison for
        indexes carrying tombstones.
        """
        out = cls(trusted_threshold, min_threshold)
        rows = []
        for key, raw in world.range(_DATA_PREFIX, _DATA_END):
            version = world.get_version(key)
            rows.append((version.block, version.tx, key, raw))
        tokens_by_block: dict[int, list[str]] = {}
        for block_n, _tx, key, raw in sorted(rows):
            try:
                record = json.loads(raw)
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            if not isinstance(record, dict):
                continue
            entry_id = record.get("entry_id") or key[len(_DATA_PREFIX):]
            tokens_by_block.setdefault(block_n, []).extend(
                out._insert(entry_id, record, raw)
            )
        for key, raw in world.range(_TRUST_PREFIX, _TRUST_END):
            out._apply_trust(key[len(_TRUST_PREFIX):], raw)
        for block_n, tokens in tokens_by_block.items():
            filt = BlockFilter()
            for token in tokens:
                filt.add(token)
            out.block_filters[block_n] = filt
        out.height = height
        if height > 0:
            out.epochs[height - 1] = out.root()
        return out
