"""Validator accountability: flagging and removing misbehaving validators.

Paper §III-A: "Validators that repeatedly act against the consensus rules
(e.g., by endorsing invalid transactions) are flagged and removed from the
validator pool." After each consensus decision the pool compares every
validator's vote against the quorum outcome; a validator whose recent
disagreement rate crosses the flagging threshold is flagged, and repeated
flags lead to removal. Silent validators (no vote in the deciding quorum)
accrue absence strikes the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TrustError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import span as obs_span


@dataclass
class ValidatorRecord:
    name: str
    votes: int = 0
    disagreements: int = 0
    absences: int = 0
    flags: int = 0
    removed: bool = False

    def disagreement_rate(self, min_votes: int) -> float:
        total = self.votes + self.absences
        if total < min_votes:
            return 0.0  # not enough evidence yet
        return (self.disagreements + self.absences) / total


@dataclass
class ValidatorPool:
    """Tracks per-validator behaviour across consensus decisions."""

    flag_threshold: float = 0.34  # disagreeing with > 1/3 of decisions
    flags_to_remove: int = 3
    min_votes: int = 5  # evidence floor before any flagging
    # Optional metrics sink: decision/flag/removal counters land here.
    registry: MetricsRegistry | None = None
    _records: dict[str, ValidatorRecord] = field(default_factory=dict)

    def add_validator(self, name: str) -> None:
        if name in self._records:
            raise TrustError(f"validator {name!r} already in pool")
        self._records[name] = ValidatorRecord(name=name)

    def record(self, name: str) -> ValidatorRecord:
        try:
            return self._records[name]
        except KeyError:
            raise TrustError(f"unknown validator {name!r}") from None

    def active(self) -> list[str]:
        return sorted(n for n, r in self._records.items() if not r.removed)

    def flagged(self) -> list[str]:
        return sorted(n for n, r in self._records.items() if r.flags > 0 and not r.removed)

    def removed(self) -> list[str]:
        return sorted(n for n, r in self._records.items() if r.removed)

    def observe_decision(self, outcome_accepted: bool, votes: dict[str, bool]) -> list[str]:
        """Compare each validator's vote to the decided outcome.

        ``votes`` maps validator name → its validity vote for the deciding
        quorum; active validators missing from it are counted absent.
        Returns the validators newly removed by this observation.
        """
        with obs_span("trust.observe_validators") as sp:
            newly_removed: list[str] = []
            flagged_now = 0
            for name in self.active():
                record = self._records[name]
                if name in votes:
                    record.votes += 1
                    if votes[name] != outcome_accepted:
                        record.disagreements += 1
                else:
                    record.absences += 1
                if record.disagreement_rate(self.min_votes) > self.flag_threshold:
                    record.flags += 1
                    flagged_now += 1
                    # Flagging resets the window so one bad streak is one flag,
                    # not a permanent stain that re-flags every decision.
                    record.votes = record.disagreements = record.absences = 0
                    if record.flags >= self.flags_to_remove:
                        record.removed = True
                        newly_removed.append(name)
            sp.set_attr("flagged", flagged_now)
            sp.set_attr("removed", len(newly_removed))
            if self.registry is not None:
                self.registry.counter("validator_decisions_total").inc()
                if flagged_now:
                    self.registry.counter("validators_flagged_total").inc(flagged_now)
                if newly_removed:
                    self.registry.counter("validators_removed_total").inc(len(newly_removed))
                self.registry.gauge("validators_active").set(len(self.active()))
            return newly_removed

    def stats(self) -> dict[str, dict]:
        return {
            name: {
                "votes": r.votes,
                "disagreements": r.disagreements,
                "absences": r.absences,
                "flags": r.flags,
                "removed": r.removed,
            }
            for name, r in sorted(self._records.items())
        }
