"""Anomaly detection and multi-source consensus for trust scoring.

The paper's future work names exactly these: "enhancing trust scoring with
advanced techniques like multi-source consensus and anomaly detection."
Both stay in the paper's low-compute spirit — robust statistics, no ML:

* :class:`AnomalyDetector` — per-source sliding windows with robust
  z-scores (median/MAD, insensitive to the outliers being hunted) over the
  reported vehicle counts, plus burst detection on the reporting rate. A
  source that suddenly reports 40 trucks, or floods ten reports a second,
  is flagged before its data ever reaches cross-validation.
* :class:`MultiSourceConsensus` — when several independent sources cover
  the same spatio-temporal cell, the per-class median is the consensus and
  relative deviation from it marks outlier sources. Unlike cross-validation
  (which needs a *trusted* anchor), this works among untrusted peers, as
  long as most are honest — the same 2/3-style honesty assumption the
  chain's validators already make.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrustError
from repro.trust.crossval import Observation


@dataclass(frozen=True)
class AnomalyReport:
    source_id: str
    is_anomalous: bool
    max_z: float
    reasons: tuple[str, ...]


@dataclass
class AnomalyDetector:
    """Per-source robust anomaly scoring over a sliding window."""

    window: int = 50
    z_threshold: float = 4.0
    burst_window_s: float = 10.0
    burst_max_reports: int = 20
    min_history: int = 8  # below this, everything passes (no baseline yet)
    _counts: dict[str, deque] = field(default_factory=dict)
    _times: dict[str, deque] = field(default_factory=dict)

    def observe(self, obs: Observation) -> AnomalyReport:
        """Score an observation against the source's own history, then add
        it to the window."""
        counts = self._counts.setdefault(obs.source_id, deque(maxlen=self.window))
        times = self._times.setdefault(obs.source_id, deque(maxlen=self.window))
        report = self._score(obs, counts, times)
        counts.append(dict(obs.counts))
        times.append(obs.timestamp)
        return report

    def _score(self, obs: Observation, counts, times) -> AnomalyReport:
        reasons: list[str] = []
        max_z = 0.0
        if len(counts) >= self.min_history:
            classes = set(obs.counts)
            for record in counts:
                classes |= set(record)
            for cls in sorted(classes):
                history = np.array([r.get(cls, 0) for r in counts], dtype=float)
                value = float(obs.counts.get(cls, 0))
                median = float(np.median(history))
                mad = float(np.median(np.abs(history - median)))
                scale = 1.4826 * mad if mad > 0 else 1.0  # MAD→σ under normality
                z = abs(value - median) / scale
                max_z = max(max_z, z)
                if z > self.z_threshold:
                    reasons.append(
                        f"count[{cls}]={value:.0f} deviates from median "
                        f"{median:.0f} (robust z={z:.1f})"
                    )
        # Burst detection needs no baseline: rate limits are absolute.
        recent = sum(1 for t in times if obs.timestamp - t <= self.burst_window_s)
        if recent >= self.burst_max_reports:
            reasons.append(
                f"{recent} reports within {self.burst_window_s:.0f}s (burst)"
            )
        return AnomalyReport(
            source_id=obs.source_id,
            is_anomalous=bool(reasons),
            max_z=max_z,
            reasons=tuple(reasons),
        )

    def history_len(self, source_id: str) -> int:
        return len(self._counts.get(source_id, ()))


@dataclass(frozen=True)
class ConsensusResult:
    consensus_counts: dict[str, float]
    deviations: dict[str, float]  # source -> relative deviation from consensus
    outliers: tuple[str, ...]
    n_sources: int


@dataclass
class MultiSourceConsensus:
    """Median-based agreement among co-located observations."""

    outlier_threshold: float = 0.5  # relative deviation beyond which = outlier
    min_sources: int = 3

    def evaluate(self, observations: list[Observation]) -> ConsensusResult:
        """Consensus over one spatio-temporal cell's observations.

        Requires ``min_sources`` *distinct* sources — two reporters cannot
        outvote each other meaningfully.
        """
        by_source: dict[str, Observation] = {}
        for obs in observations:
            by_source[obs.source_id] = obs  # latest per source wins
        if len(by_source) < self.min_sources:
            raise TrustError(
                f"multi-source consensus needs >= {self.min_sources} sources, "
                f"got {len(by_source)}"
            )
        classes = sorted({cls for obs in by_source.values() for cls in obs.counts})
        consensus = {
            cls: float(np.median([obs.counts.get(cls, 0) for obs in by_source.values()]))
            for cls in classes
        }
        deviations: dict[str, float] = {}
        for source_id, obs in sorted(by_source.items()):
            if not classes:
                deviations[source_id] = 0.0
                continue
            rel = []
            for cls in classes:
                expected = consensus[cls]
                actual = float(obs.counts.get(cls, 0))
                denom = max(expected, 1.0)
                rel.append(abs(actual - expected) / denom)
            deviations[source_id] = float(np.mean(rel))
        outliers = tuple(
            s for s, d in deviations.items() if d > self.outlier_threshold
        )
        return ConsensusResult(
            consensus_counts=consensus,
            deviations=deviations,
            outliers=outliers,
            n_sources=len(by_source),
        )

    def apply_to_trust(self, engine, result: ConsensusResult) -> dict[str, float]:
        """Fold a consensus round into the trust engine: outliers take a
        rejected observation, the agreeing majority takes an accepted one.
        Returns the new scores of the untrusted sources touched."""
        from repro.trust.engine import SourceTier

        updated: dict[str, float] = {}
        for source_id, deviation in result.deviations.items():
            if not engine.is_registered(source_id):
                continue
            if engine.tier(source_id) is SourceTier.TRUSTED:
                continue
            agreeing = source_id not in result.outliers
            agree_count = result.n_sources - len(result.outliers)
            updated[source_id] = engine.record_validation(
                source_id,
                accepted=agreeing,
                valid_votes=agree_count if agreeing else len(result.outliers),
                invalid_votes=len(result.outliers) if agreeing else agree_count,
            )
        return updated
