"""The trust engine: per-source scoring, tiering, and admission decisions.

This is the component Figure 1 labels "trust score … assessed for untrusted
sources": the framework consults it before accepting a submission
(quarantined sources need extra corroboration) and updates it after the
validators vote. Trusted-tier sources (traffic cameras, drones — paper §III)
are registered as such and bypass scoring, but their observations feed the
cross-validator as ground truth for everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import TrustError
from repro.trust.crossval import CrossValidator, Observation, endorsement_score
from repro.trust.score import TrustScore, TrustWeights


class SourceTier(str, Enum):
    TRUSTED = "trusted"        # institutional: cameras, drones, city sensors
    UNTRUSTED = "untrusted"    # crowd-sourced: mobiles, social media
    QUARANTINED = "quarantined"  # score fell below the floor


@dataclass(frozen=True)
class AdmissionDecision:
    """What validation a submission must pass before it is recorded."""

    admitted: bool
    tier: SourceTier
    trust: float
    requires_corroboration: bool
    reason: str


@dataclass
class TrustEngine:
    trusted_threshold: float = 0.75   # above: treated like the trusted tier
    min_threshold: float = 0.25       # below: quarantined
    weights: TrustWeights = field(default_factory=TrustWeights)
    cross_validator: CrossValidator = field(default_factory=CrossValidator)
    _scores: dict[str, TrustScore] = field(default_factory=dict)
    _tiers: dict[str, SourceTier] = field(default_factory=dict)
    _last_seen: dict[str, float] = field(default_factory=dict)

    # -- registration ------------------------------------------------------------

    def register_source(self, source_id: str, tier: SourceTier = SourceTier.UNTRUSTED) -> None:
        if source_id in self._tiers:
            raise TrustError(f"source {source_id!r} already registered")
        if tier is SourceTier.QUARANTINED:
            raise TrustError("cannot register a source directly into quarantine")
        self._tiers[source_id] = tier
        if tier is SourceTier.UNTRUSTED:
            self._scores[source_id] = TrustScore(source_id=source_id, weights=self.weights)

    def is_registered(self, source_id: str) -> bool:
        return source_id in self._tiers

    def tier(self, source_id: str) -> SourceTier:
        try:
            return self._tiers[source_id]
        except KeyError:
            raise TrustError(f"unknown source {source_id!r}") from None

    def score(self, source_id: str) -> float:
        if self.tier(source_id) is SourceTier.TRUSTED:
            return 1.0
        return self._scores[source_id].value

    # -- admission --------------------------------------------------------------------

    def admit(self, source_id: str) -> AdmissionDecision:
        """Gate a submission before validation (paper Figure 1, step ②)."""
        tier = self.tier(source_id)
        if tier is SourceTier.TRUSTED:
            return AdmissionDecision(
                admitted=True,
                tier=tier,
                trust=1.0,
                requires_corroboration=False,
                reason="trusted-tier source",
            )
        value = self._scores[source_id].value
        if tier is SourceTier.QUARANTINED:
            return AdmissionDecision(
                admitted=False,
                tier=tier,
                trust=value,
                requires_corroboration=True,
                reason="source is quarantined pending corroborated submissions",
            )
        return AdmissionDecision(
            admitted=True,
            tier=tier,
            trust=value,
            requires_corroboration=value < self.trusted_threshold,
            reason="untrusted source admitted with validation",
        )

    # -- updates ------------------------------------------------------------------------

    def observe_trusted(self, obs: Observation) -> None:
        """Feed a trusted-tier observation into the cross-validation window."""
        if self.tier(obs.source_id) is not SourceTier.TRUSTED:
            raise TrustError(f"{obs.source_id!r} is not a trusted-tier source")
        self.cross_validator.add_trusted(obs)

    def cross_validate(self, obs: Observation) -> float:
        return self.cross_validator.score(obs)

    def record_validation(
        self,
        source_id: str,
        accepted: bool,
        valid_votes: int,
        invalid_votes: int,
        observation: Observation | None = None,
        now: float | None = None,
    ) -> float:
        """Fold a consensus outcome into the source's score; returns it.

        Quarantine / release transitions happen here: a source whose score
        crosses ``min_threshold`` downward is quarantined; a quarantined
        source that accumulates corroborated accepts is released. ``now``
        (optional) stamps the source's last activity for staleness decay.
        """
        tier = self.tier(source_id)
        if now is not None:
            self._last_seen[source_id] = now
        if tier is SourceTier.TRUSTED:
            return 1.0
        trust = self._scores[source_id]
        cross = self.cross_validate(observation) if observation is not None else None
        endorse = endorsement_score(valid_votes, invalid_votes)
        value = trust.update(accepted, cross_validation=cross, endorsement=endorse)
        if value < self.min_threshold:
            self._tiers[source_id] = SourceTier.QUARANTINED
        elif tier is SourceTier.QUARANTINED and value >= self.min_threshold * 2:
            self._tiers[source_id] = SourceTier.UNTRUSTED
        return value

    def record_corroborated_accept(self, source_id: str, cross_validation: float) -> float:
        """Extra-validation path for quarantined sources: an accept backed by
        strong trusted corroboration counts toward release."""
        if self.tier(source_id) is SourceTier.TRUSTED:
            return 1.0
        if cross_validation < 0.5:
            raise TrustError("corroborated accept requires cross-validation >= 0.5")
        trust = self._scores[source_id]
        value = trust.update(True, cross_validation=cross_validation)
        if (
            self._tiers[source_id] is SourceTier.QUARANTINED
            and value >= self.min_threshold * 2
        ):
            self._tiers[source_id] = SourceTier.UNTRUSTED
        return value

    # -- staleness --------------------------------------------------------------------

    def apply_time_decay(self, now: float, half_life_s: float = 7 * 86400.0) -> dict[str, float]:
        """Fade idle untrusted sources toward neutral: a reputation earned
        months ago (good or bad) should not count as fresh evidence.

        Decay never *releases* quarantine — a bad actor cannot wait out its
        sentence; release requires corroborated accepts. Returns the new
        score of every source that decayed.
        """
        if half_life_s <= 0:
            raise TrustError("half_life_s must be positive")
        updated: dict[str, float] = {}
        for source_id, trust in self._scores.items():
            last = self._last_seen.get(source_id)
            if last is None or now <= last:
                continue
            factor = 0.5 ** ((now - last) / half_life_s)
            updated[source_id] = trust.decay_toward_neutral(factor)
            self._last_seen[source_id] = now
        return updated

    # -- reporting -----------------------------------------------------------------------

    def chain_record(self, source_id: str) -> dict:
        tier = self.tier(source_id)
        if tier is SourceTier.TRUSTED:
            return {"source_id": source_id, "tier": tier.value, "score": 1.0}
        record = self._scores[source_id].to_chain_record()
        record["tier"] = tier.value
        return record

    def sources(self, tier: SourceTier | None = None) -> list[str]:
        if tier is None:
            return sorted(self._tiers)
        return sorted(s for s, t in self._tiers.items() if t is tier)
