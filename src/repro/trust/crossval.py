"""Cross-validation of untrusted submissions against trusted records.

The paper's second trust signal: "cross-validation ensures new inputs match
verified information". An untrusted observation (say, a crowd-sourced
report of three trucks at junction X at 10:04) is compared against trusted
records near it in space and time; agreement raises the submission's
cross-validation score, contradiction lowers it, and *no nearby trusted
data* yields the uninformative 0.5 — absence of corroboration is not
evidence of falsehood.

Records are compared on the fields the paper's metadata schema carries:
location, timestamp, vehicle counts per class. Numeric agreement is scored
with a smooth kernel rather than a hard threshold so near-misses degrade
gracefully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Observation:
    """A comparable record: where, when, and what was counted."""

    source_id: str
    lat: float
    lon: float
    timestamp: float
    counts: dict[str, int] = field(default_factory=dict)  # vehicle class -> count

    def location_distance(self, other: "Observation") -> float:
        """Euclidean degrees — adequate at city scale for similarity kernels."""
        return math.hypot(self.lat - other.lat, self.lon - other.lon)


@dataclass
class CrossValidator:
    """Scores observations against a sliding window of trusted records."""

    # Records farther than these radii contribute nothing.
    max_distance_deg: float = 0.01  # ~1.1 km
    max_time_gap_s: float = 120.0
    window_s: float = 3600.0  # trusted records older than this are dropped
    _trusted: list[Observation] = field(default_factory=list)

    def add_trusted(self, obs: Observation) -> None:
        self._trusted.append(obs)

    def prune(self, now: float) -> int:
        before = len(self._trusted)
        self._trusted = [o for o in self._trusted if now - o.timestamp <= self.window_s]
        return before - len(self._trusted)

    def neighbours(self, obs: Observation) -> list[Observation]:
        return [
            t
            for t in self._trusted
            if t.location_distance(obs) <= self.max_distance_deg
            and abs(t.timestamp - obs.timestamp) <= self.max_time_gap_s
        ]

    def score(self, obs: Observation) -> float:
        """Cross-validation score in [0, 1]; 0.5 when no trusted neighbour."""
        nearby = self.neighbours(obs)
        if not nearby:
            return 0.5
        scores = [self._agreement(obs, t) for t in nearby]
        return sum(scores) / len(scores)

    def _agreement(self, obs: Observation, trusted: Observation) -> float:
        """Count agreement over the union of vehicle classes, weighted by
        spatio-temporal proximity."""
        classes = set(obs.counts) | set(trusted.counts)
        if classes:
            sims = []
            for cls in classes:
                a, b = obs.counts.get(cls, 0), trusted.counts.get(cls, 0)
                denom = max(a, b)
                sims.append(1.0 if denom == 0 else min(a, b) / denom)
            count_sim = sum(sims) / len(sims)
        else:
            count_sim = 1.0  # both empty: vacuous agreement
        # Proximity kernel: records right on top of each other count fully,
        # ones at the radius edge count ~60%.
        d = trusted.location_distance(obs) / self.max_distance_deg
        dt = abs(trusted.timestamp - obs.timestamp) / self.max_time_gap_s
        proximity = math.exp(-0.5 * (d * d + dt * dt))
        # Blend toward neutral 0.5 as proximity falls: weak matches should
        # not drag an honest source to zero.
        return proximity * count_sim + (1.0 - proximity) * 0.5

    def trusted_count(self) -> int:
        return len(self._trusted)


def endorsement_score(valid_votes: int, invalid_votes: int) -> float:
    """Peer-endorsement signal from the validators' consensus votes.

    Maps the vote split on a source's latest transaction into [0, 1] with a
    +1/+1 Laplace smoother, so a lone vote does not saturate the signal.
    """
    if valid_votes < 0 or invalid_votes < 0:
        raise ValueError("vote counts must be non-negative")
    return (valid_votes + 1.0) / (valid_votes + invalid_votes + 2.0)
