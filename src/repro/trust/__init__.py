"""Trust management for untrusted sources: historical reliability,
cross-validation against trusted records, peer endorsements, and validator
pool accountability (paper §III-A)."""

from repro.trust.anomaly import (
    AnomalyDetector,
    AnomalyReport,
    ConsensusResult,
    MultiSourceConsensus,
)
from repro.trust.crossval import CrossValidator, Observation, endorsement_score
from repro.trust.engine import AdmissionDecision, SourceTier, TrustEngine
from repro.trust.score import HistoricalReliability, TrustScore, TrustWeights
from repro.trust.validator_pool import ValidatorPool, ValidatorRecord

__all__ = [
    "AnomalyDetector",
    "AnomalyReport",
    "ConsensusResult",
    "MultiSourceConsensus",
    "CrossValidator",
    "Observation",
    "endorsement_score",
    "AdmissionDecision",
    "SourceTier",
    "TrustEngine",
    "HistoricalReliability",
    "TrustScore",
    "TrustWeights",
    "ValidatorPool",
    "ValidatorRecord",
]
