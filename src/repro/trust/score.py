"""Trust scoring for untrusted data sources (paper §III-A).

The paper scores untrusted sources on two "practical and efficient" signals
— *historical reliability* ("tracking data correctness over time") and
*cross-validation with trusted data* — plus *peer endorsements*, explicitly
preferring these over ML methods for their low computational cost. This
module implements each signal and their weighted combination:

* :class:`HistoricalReliability` — a Beta-Bernoulli estimator over the
  source's accept/reject history with exponential decay, so old behaviour
  fades and a source can neither coast on ancient good deeds nor be damned
  forever by early mistakes. The Beta prior doubles as the "new source"
  starting score.
* cross-validation and endorsement scores arrive from
  :mod:`repro.trust.crossval` / the validator votes and are folded in by
  :class:`TrustScore`.

Scores live in [0, 1]; sources above ``trusted_threshold`` short-cut
validation (the paper's trusted tier: traffic cameras, drones); sources
below ``min_threshold`` are quarantined ("data may require further
validation from multiple trusted sources").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HistoricalReliability:
    """Decayed Beta-Bernoulli estimate of a source's accuracy.

    ``alpha``/``beta`` start at the prior (1, 1) — an uninformative 0.5.
    Each accepted record adds to ``alpha``, each rejected one to ``beta``;
    both decay by ``decay`` per observation so the estimate tracks a moving
    window of roughly ``1/(1-decay)`` observations.
    """

    decay: float = 0.98
    alpha: float = 1.0
    beta: float = 1.0
    observations: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")

    def record(self, correct: bool) -> None:
        self.alpha *= self.decay
        self.beta *= self.decay
        if correct:
            self.alpha += 1.0
        else:
            self.beta += 1.0
        self.observations += 1

    @property
    def score(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def confidence(self) -> float:
        """0→1 as evidence accumulates; scales the weight history gets."""
        effective_n = self.alpha + self.beta - 2.0
        return effective_n / (effective_n + 5.0)

    def decay_toward_prior(self, factor: float) -> None:
        """Time decay with no observation: evidence fades toward the prior,
        pulling the score toward 0.5 and shrinking confidence. ``factor``
        in (0, 1]; 1 = no decay."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        self.alpha = 1.0 + (self.alpha - 1.0) * factor
        self.beta = 1.0 + (self.beta - 1.0) * factor


@dataclass(frozen=True)
class TrustWeights:
    """Relative weights of the three signals (normalized on use)."""

    history: float = 0.5
    cross_validation: float = 0.3
    endorsement: float = 0.2

    def __post_init__(self) -> None:
        if min(self.history, self.cross_validation, self.endorsement) < 0:
            raise ValueError("trust weights must be non-negative")
        if self.history + self.cross_validation + self.endorsement <= 0:
            raise ValueError("at least one trust weight must be positive")


@dataclass
class TrustScore:
    """One source's combined trust state."""

    source_id: str
    weights: TrustWeights = field(default_factory=TrustWeights)
    history: HistoricalReliability = field(default_factory=HistoricalReliability)
    last_cross_validation: float = 0.5
    last_endorsement: float = 0.5

    def update(
        self,
        correct: bool,
        cross_validation: float | None = None,
        endorsement: float | None = None,
    ) -> float:
        """Fold one validated submission into the score; returns the new value."""
        self.history.record(correct)
        if cross_validation is not None:
            if not 0.0 <= cross_validation <= 1.0:
                raise ValueError("cross_validation score must be in [0, 1]")
            self.last_cross_validation = cross_validation
        if endorsement is not None:
            if not 0.0 <= endorsement <= 1.0:
                raise ValueError("endorsement score must be in [0, 1]")
            self.last_endorsement = endorsement
        return self.value

    @property
    def value(self) -> float:
        """Weighted combination, with history's weight scaled by how much
        evidence actually backs it (a brand-new source's history says
        nothing, so cross-validation and endorsements dominate early)."""
        w = self.weights
        history_weight = w.history * self.history.confidence
        total = history_weight + w.cross_validation + w.endorsement
        return (
            history_weight * self.history.score
            + w.cross_validation * self.last_cross_validation
            + w.endorsement * self.last_endorsement
        ) / total

    def decay_toward_neutral(self, factor: float) -> float:
        """Fade the whole score toward neutral 0.5 (staleness decay); the
        signals were observed long ago and should not be trusted fresh."""
        self.history.decay_toward_prior(factor)
        self.last_cross_validation = 0.5 + (self.last_cross_validation - 0.5) * factor
        self.last_endorsement = 0.5 + (self.last_endorsement - 0.5) * factor
        return self.value

    def to_chain_record(self) -> dict:
        """The on-chain representation (paper: trust scores are stored
        on-chain for future reference)."""
        return {
            "source_id": self.source_id,
            "score": round(self.value, 6),
            "history_score": round(self.history.score, 6),
            "observations": self.history.observations,
            "cross_validation": round(self.last_cross_validation, 6),
            "endorsement": round(self.last_endorsement, 6),
        }
