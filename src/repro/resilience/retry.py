"""Retry with exponential backoff and deterministic jitter.

The framework runs in simulated or compressed time, so :func:`retry` never
sleeps by default — backoff amounts are computed (and metered into the
``retry_backoff_seconds_total`` counter so experiments can report what a
real deployment would have waited) and an injectable ``sleep`` callable lets
callers charge a simulated clock or really sleep. Jitter is drawn from a
:func:`repro.util.rng.rng_for` stream derived from ``(seed, op)``, never
from wall-clock entropy, so a given seed always produces the identical
backoff sequence — the property chaos tests rely on.

The happy path is free: a first-attempt success touches no registry and
allocates no RNG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ReproError, RetryExhaustedError
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.util.rng import rng_for

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts and how long to back off between them."""

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5  # fraction of each delay that is randomized

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, attempt: int, u: float) -> float:
        """Delay before retry number ``attempt`` (1-based); ``u`` in [0, 1).

        Exponential growth capped at ``max_delay_s``, then scaled into
        ``[(1 - jitter) * raw, raw]`` by the deterministic draw ``u``.
        """
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        return raw * (1.0 - self.jitter) + raw * self.jitter * u


class Budget:
    """A deadline budget: total seconds an operation (with retries) may spend.

    ``now`` is injectable so tests and simulations control time; the default
    is the real monotonic clock.
    """

    def __init__(self, total_s: float, now: Callable[[], float] = time.monotonic) -> None:
        if total_s <= 0:
            raise ValueError("budget must be positive")
        self.total_s = float(total_s)
        self._now = now
        self._start = now()

    def elapsed_s(self) -> float:
        return self._now() - self._start

    def remaining_s(self) -> float:
        return self.total_s - self.elapsed_s()

    def exhausted(self) -> bool:
        return self.remaining_s() <= 0.0


def retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    retryable: tuple[type[BaseException], ...] = (ReproError,),
    should_retry: Callable[[BaseException], bool] | None = None,
    op: str = "op",
    seed: int = 0,
    sleep: Callable[[float], None] | None = None,
    budget: Budget | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy/budget is exhausted.

    * ``retryable`` — exception classes eligible for retry; anything else
      propagates immediately.
    * ``should_retry`` — optional refinement: return ``False`` to veto a
      retry for a specific (retryable-typed) exception.
    * ``op`` — label for metrics/spans and the jitter stream.
    * ``sleep`` — optional backoff sink (e.g. a simulated clock's advance).

    Raises :class:`RetryExhaustedError` (with ``last_error`` chained) when
    attempts run out, or re-raises the original error when vetoed.
    """
    policy = policy or RetryPolicy()
    rng = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retryable as exc:
            if should_retry is not None and not should_retry(exc):
                raise
            out_of_budget = budget is not None and budget.exhausted()
            if attempt >= policy.max_attempts or out_of_budget:
                get_registry().counter("retry_exhausted_total", {"op": op}).inc()
                raise RetryExhaustedError(op, attempt, exc) from exc
            if rng is None:
                rng = rng_for(seed, "resilience", op)
            delay = policy.backoff_s(attempt, float(rng.random()))
            registry = get_registry()
            registry.counter("retries_total", {"op": op}).inc()
            registry.counter("retry_backoff_seconds_total", {"op": op}).inc(delay)
            with obs_span("resilience.retry") as sp:
                sp.set_attr("op", op)
                sp.set_attr("attempt", attempt)
                sp.set_attr("backoff_s", round(delay, 6))
                sp.set_attr("error", f"{type(exc).__name__}: {exc}"[:160])
            if sleep is not None:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
