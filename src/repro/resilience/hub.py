"""ResilienceHub: one place a deployment's resilience knobs live.

The framework owns one hub; it hands out a shared :class:`RetryPolicy`,
a deterministic jitter seed, and one lazily created
:class:`CircuitBreaker` per dependency ("fabric", "ipfs", ...), so every
integration point applies the same semantics and all breaker state is
inspectable from a single object.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy


class ResilienceHub:
    """Shared retry policy + per-dependency circuit breakers."""

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        failure_threshold: int = 8,
        cooldown_s: float = 0.25,
        seed: int = 0,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        self.retry_policy = retry_policy or RetryPolicy()
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.seed = seed
        self._now = now
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, dependency: str) -> CircuitBreaker:
        """The breaker guarding ``dependency`` (created on first use)."""
        breaker = self._breakers.get(dependency)
        if breaker is None:
            breaker = self._breakers[dependency] = CircuitBreaker(
                dependency,
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
                now=self._now,
            )
        return breaker

    def breakers(self) -> dict[str, CircuitBreaker]:
        return dict(self._breakers)

    def set_clock(self, now: Callable[[], float]) -> None:
        """Swap the time source for the hub and every existing breaker.

        Chaos scenarios use this to drive breaker cooldowns from a
        deterministic cycle clock instead of wall time, so open circuits
        half-open on a schedule the seed fully determines.
        """
        self._now = now
        for breaker in self._breakers.values():
            breaker.set_clock(now)
