"""Circuit breakers: stop hammering a dependency that keeps failing.

The classic three-state machine. **Closed**: calls flow, consecutive
failures are counted. **Open** (after ``failure_threshold`` consecutive
failures): calls are refused with :class:`repro.errors.CircuitOpenError`
until ``cooldown_s`` has passed. **Half-open**: a limited number of trial
calls probe the dependency — one success closes the circuit, one failure
re-opens it and restarts the cooldown.

State is exported as the ``circuit_state{dep=...}`` gauge (0 closed,
1 half-open, 2 open) and every transition increments
``circuit_transitions_total{dep=..., to=...}``, so breaker activity shows
up directly in ``repro metrics`` output. ``now`` is injectable for
deterministic tests.
"""

from __future__ import annotations

import time
from enum import Enum
from typing import Callable, TypeVar

from repro.errors import CircuitOpenError
from repro.obs.metrics import get_registry

T = TypeVar("T")


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


_STATE_GAUGE = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1, BreakerState.OPEN: 2}


class CircuitBreaker:
    """Per-dependency failure isolation."""

    def __init__(
        self,
        dependency: str,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        half_open_trials: int = 1,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.dependency = dependency
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_trials = half_open_trials
        self._now = now
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._trials_allowed = 0
        # Create the gauge series eagerly so the dependency shows up in
        # metrics output even before any transition.
        get_registry().gauge("circuit_state", {"dep": dependency}).set(0)

    # -- state machine ----------------------------------------------------------

    def _transition(self, to: BreakerState) -> None:
        if to is self.state:
            return
        self.state = to
        registry = get_registry()
        registry.gauge("circuit_state", {"dep": self.dependency}).set(_STATE_GAUGE[to])
        registry.counter(
            "circuit_transitions_total", {"dep": self.dependency, "to": to.value}
        ).inc()

    def set_clock(self, now: Callable[[], float]) -> None:
        """Swap the time source (e.g. for a simulated/deterministic clock)."""
        self._now = now

    def retry_after_s(self) -> float:
        """Seconds until the open circuit will admit a half-open trial."""
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self.cooldown_s - (self._now() - self._opened_at))

    def allow(self) -> bool:
        """May a call proceed right now? (Half-open admits limited trials.)"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._now() - self._opened_at < self.cooldown_s:
                return False
            self._transition(BreakerState.HALF_OPEN)
            self._trials_allowed = self.half_open_trials
        # Half-open: admit up to half_open_trials probes.
        if self._trials_allowed > 0:
            self._trials_allowed -= 1
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._open()
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._opened_at = self._now()
        self._trials_allowed = 0
        self._transition(BreakerState.OPEN)

    # -- convenience wrapper ------------------------------------------------------

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker: refuse when open, record outcome."""
        if not self.allow():
            raise CircuitOpenError(self.dependency, self.retry_after_s())
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
