"""repro.resilience — production-style failure-handling primitives.

The layer that makes the storage/retrieval pipeline survivable: retries
with exponential backoff and *deterministic* jitter (seeded streams, never
wall-clock entropy), per-dependency circuit breakers with the standard
closed/open/half-open machine, deadline budgets, and ordered failover
reads. Every recovery action is metered into the shared
:mod:`repro.obs` registry (``retries_total``, ``circuit_state``,
``failover_attempts_total``, ...) so fault → recovery causality shows up
in traces and ``repro metrics`` output.

Integration points live where failures actually bite:
:meth:`repro.ipfs.cluster.IpfsCluster.cat` fails over across providers and
replicas, :meth:`repro.fabric.channel.Channel.endorse` tries surviving
peers of an org, and :class:`repro.core.framework.Framework` routes client
writes through :meth:`~repro.core.framework.Framework.resilient_invoke`.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.failover import FailoverAttempt, try_each
from repro.resilience.hub import ResilienceHub
from repro.resilience.retry import Budget, RetryPolicy, retry

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FailoverAttempt",
    "try_each",
    "ResilienceHub",
    "Budget",
    "RetryPolicy",
    "retry",
]
