"""Failover reads: try candidates in order until one serves.

:func:`try_each` is the generic primitive behind peer/provider failover —
call ``fn(target)`` for each candidate, collecting a typed
:class:`FailoverAttempt` per failure, and raise
:class:`repro.errors.FailoverExhaustedError` (carrying the full attempt
trail) only when *every* candidate failed. Successful failovers are
counted so recovery actions are visible in metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

from repro.errors import FailoverExhaustedError, ReproError
from repro.obs.metrics import get_registry

T = TypeVar("T")
Target = TypeVar("Target")


@dataclass(frozen=True)
class FailoverAttempt:
    """One candidate that failed, and how."""

    target: str
    error: str
    kind: str = ""


def try_each(
    targets: Iterable[Target],
    fn: Callable[[Target], T],
    *,
    op: str = "failover",
    classify: Callable[[BaseException], str] | None = None,
) -> tuple[T, list[FailoverAttempt]]:
    """Return ``(result, failed_attempts)`` from the first target that works.

    Only :class:`ReproError` failures trigger failover — programming errors
    propagate immediately. ``classify`` maps an exception to an attempt
    ``kind`` (defaults to the exception class name).
    """
    attempts: list[FailoverAttempt] = []
    for target in targets:
        try:
            result = fn(target)
        except ReproError as exc:
            kind = classify(exc) if classify is not None else type(exc).__name__
            attempts.append(FailoverAttempt(target=str(target), error=str(exc), kind=kind))
            get_registry().counter("failover_attempts_total", {"op": op}).inc()
            continue
        if attempts:
            get_registry().counter("failover_success_total", {"op": op}).inc()
        return result, attempts
    raise FailoverExhaustedError(op, tuple(attempts))
