"""Message tracing: observability for the simulated network.

A :class:`MessageTrace` taps a :class:`~repro.net.SimNetwork` and records
every delivered message with its simulated timestamp. Protocol analyses
read the trace instead of instrumenting protocol code: message counts per
kind (the O(n²) check on PBFT phases), byte volume per link, and a
rendered timeline for debugging consensus interleavings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.message import Message
from repro.net.simnet import SimNetwork


@dataclass(frozen=True)
class TraceEntry:
    time: float
    src: str
    dst: str
    kind: str
    size_bytes: int


@dataclass
class MessageTrace:
    """Recording tap over one network's deliveries."""

    network: SimNetwork
    entries: list[TraceEntry] = field(default_factory=list)
    _attached: bool = False

    def __post_init__(self) -> None:
        self.attach()

    def attach(self) -> None:
        if not self._attached:
            self.network.taps.append(self._record)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.network.taps.remove(self._record)
            self._attached = False

    def _record(self, msg: Message) -> None:
        self.entries.append(
            TraceEntry(
                time=self.network.clock.now(),
                src=msg.src,
                dst=msg.dst,
                kind=msg.kind,
                size_bytes=msg.size_bytes,
            )
        )

    def clear(self) -> None:
        self.entries.clear()

    # -- analysis ---------------------------------------------------------------

    def count_by_kind(self) -> dict[str, int]:
        return dict(Counter(e.kind for e in self.entries))

    def bytes_by_kind(self) -> dict[str, int]:
        out: Counter = Counter()
        for e in self.entries:
            out[e.kind] += e.size_bytes
        return dict(out)

    def pair_matrix(self) -> dict[tuple[str, str], int]:
        return dict(Counter((e.src, e.dst) for e in self.entries))

    def between(self, start: float, end: float) -> list[TraceEntry]:
        return [e for e in self.entries if start <= e.time < end]

    def timeline(self, limit: int = 50) -> str:
        """Human-readable delivery timeline (first ``limit`` entries)."""
        lines = [
            f"{e.time:10.6f}s  {e.src:>14} -> {e.dst:<14} {e.kind} ({e.size_bytes} B)"
            for e in self.entries[:limit]
        ]
        if len(self.entries) > limit:
            lines.append(f"… {len(self.entries) - limit} more")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
