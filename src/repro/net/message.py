"""Message envelope carried by the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - type-only import, no runtime dep
    from repro.obs.span import SpanContext


@dataclass(frozen=True)
class Message:
    """A network message between two named nodes.

    ``payload`` is an arbitrary Python object (the simulator is in-process,
    so no wire serialization is required), but ``size_bytes`` drives the
    bandwidth model and must reflect the logical wire size of the payload.

    ``trace_ctx`` is the W3C-traceparent-style header slot: the sender's
    span context, stamped by ``SimNetwork.send`` when tracing is enabled,
    restored as the remote parent at delivery. Excluded from equality like
    ``send_time`` — tracing metadata is not message identity.
    """

    src: str
    dst: str
    payload: Any
    size_bytes: int = 256
    kind: str = "msg"
    send_time: float = field(default=0.0, compare=False)
    trace_ctx: "SpanContext | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
