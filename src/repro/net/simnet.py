"""Deterministic discrete-event network simulator.

The simulator is the substrate under the consensus protocols and the
bitswap block exchange: nodes register a handler, ``send`` schedules a
delivery event after the latency model's delay, and :meth:`SimNetwork.run`
drains the event heap in (time, sequence) order. Sequence numbers break
timestamp ties deterministically, so a given seed always produces the same
message interleaving — the property that makes Byzantine-fault tests
reproducible.

Failure injection supported at the network level:

* node crash / restart (:meth:`set_node_up`),
* network partitions (:meth:`partition` / :meth:`heal`),
* probabilistic message drops (``drop_rate``),
* per-link latency overrides (via :class:`repro.net.latency.PairwiseLatency`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import NetworkError, NodeUnreachableError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.obs.prof import profiled
from repro.obs.tracer import current_context, get_tracer
from repro.util.clock import SimClock
from repro.util.rng import rng_for

Handler = Callable[[Message], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


@dataclass
class NetStats:
    """Counters the benchmarks and tests read after a run."""

    sent: int = 0
    delivered: int = 0
    dropped_rate: int = 0
    dropped_partition: int = 0
    dropped_down: int = 0
    dropped_chaos: int = 0
    duplicated_chaos: int = 0
    delayed_chaos: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0


@dataclass(frozen=True)
class FaultAction:
    """What an installed fault injector wants done to one message.

    Returned by ``SimNetwork.fault_injector(msg)``; the default (all-clear)
    action leaves the message alone. ``drop`` wins over the other fields."""

    drop: bool = False
    extra_delay_s: float = 0.0
    duplicate: bool = False


NO_FAULT = FaultAction()


class SimNetwork:
    """A set of named nodes exchanging messages in simulated time."""

    def __init__(
        self,
        latency: LatencyModel | None = None,
        drop_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.clock = SimClock()
        self.latency = latency or ConstantLatency()
        self.drop_rate = drop_rate
        self.stats = NetStats()
        self._handlers: dict[str, Handler] = {}
        self._up: dict[str, bool] = {}
        self._groups: dict[str, int] = {}  # partition group per node; same = reachable
        self._events: list[_Event] = []
        self._seq = itertools.count()
        self._rng = rng_for(seed, "net", "drops")
        self._running = False
        # Chaos hook: when set, called once per sent message (after the
        # drop_rate check) and may drop, delay, or duplicate it.
        self.fault_injector: Callable[[Message], FaultAction] | None = None
        # Delivery taps: observers (tracers, debuggers) called for every
        # delivered message, after stats are updated and before the handler.
        self.taps: list[Handler] = []

    # -- membership ---------------------------------------------------------

    def register(self, name: str, handler: Handler) -> None:
        """Attach a node; its handler runs for each delivered message."""
        if name in self._handlers:
            raise NetworkError(f"node {name!r} already registered")
        self._handlers[name] = handler
        self._up[name] = True
        self._groups[name] = 0

    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    def set_node_up(self, name: str, up: bool) -> None:
        """Crash (``up=False``) or restart a node. Messages to a down node
        are silently dropped, as with a crashed process."""
        self._require_node(name)
        self._up[name] = up

    def is_up(self, name: str) -> bool:
        self._require_node(name)
        return self._up[name]

    # -- partitions ----------------------------------------------------------

    def partition(self, *sides: list[str]) -> None:
        """Split the network: nodes can only reach others on their side.

        Unlisted nodes stay in group 0 (the first side's group if the first
        side is meant to be the majority, pass them explicitly).
        """
        for name in self._groups:
            self._groups[name] = 0
        for gid, side in enumerate(sides, start=1):
            for name in side:
                self._require_node(name)
                self._groups[name] = gid

    def heal(self) -> None:
        """Remove all partitions."""
        for name in self._groups:
            self._groups[name] = 0

    def reachable(self, src: str, dst: str) -> bool:
        return self._groups[src] == self._groups[dst]

    # -- messaging ------------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size_bytes: int = 256, kind: str = "msg") -> None:
        """Schedule delivery of ``payload`` from ``src`` to ``dst``.

        Unknown destination raises immediately (a configuration bug); a down
        or partitioned destination drops the message silently (a fault being
        simulated). Drops by ``drop_rate`` are decided at send time so the
        decision sequence is deterministic per seed.
        """
        self._require_node(src)
        if dst not in self._handlers:
            raise NodeUnreachableError(f"unknown destination node {dst!r}")
        # Trace-context propagation: stamp the sender's span identity onto
        # the message (None when tracing is off — one global read). The
        # stamp happens at send time, so the causal parent is the span
        # that *sent*, not whatever runs the event loop at delivery.
        msg = Message(
            src=src, dst=dst, payload=payload, size_bytes=size_bytes,
            kind=kind, send_time=self.clock.now(), trace_ctx=current_context(),
        )
        self.stats.sent += 1
        self.stats.bytes_sent += size_bytes
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.stats.dropped_rate += 1
            return
        fault = self.fault_injector(msg) if self.fault_injector is not None else NO_FAULT
        if fault.drop:
            self.stats.dropped_chaos += 1
            return
        delay = self.latency.delay(src, dst, size_bytes)
        if delay < 0:
            raise NetworkError("latency model returned a negative delay")
        if fault.extra_delay_s > 0:
            self.stats.delayed_chaos += 1
            delay += fault.extra_delay_s
        self.schedule(delay, lambda: self._deliver(msg))
        if fault.duplicate:
            self.stats.duplicated_chaos += 1
            self.schedule(delay, lambda: self._deliver(msg))

    def broadcast(self, src: str, payload: Any, size_bytes: int = 256, kind: str = "msg") -> None:
        """Send to every other node (the BFT protocols' primitive)."""
        for dst in self.nodes():
            if dst != src:
                self.send(src, dst, payload, size_bytes=size_bytes, kind=kind)

    def _deliver(self, msg: Message) -> None:
        # Reachability and liveness are evaluated at delivery time: a message
        # in flight when a partition forms is lost, like a TCP RST mid-split.
        if not self._up.get(msg.dst, False):
            self.stats.dropped_down += 1
            return
        if not self.reachable(msg.src, msg.dst):
            self.stats.dropped_partition += 1
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += msg.size_bytes
        for tap in self.taps:
            tap(msg)
        tracer = get_tracer()
        if tracer is None:
            with profiled("net.deliver"):
                self._handlers[msg.dst](msg)
            return
        # Restore the remote parent: the handler (and every span it opens)
        # joins the sender's trace, turning per-node span trees into one
        # causal DAG per transaction. A message without a stamp (sent
        # outside any span) falls back to the ambient context.
        with tracer.span(
            "net.deliver",
            attrs={"src": msg.src, "node": msg.dst, "kind": msg.kind},
            remote_parent=msg.trace_ctx,
        ):
            with profiled("net.deliver"):
                self._handlers[msg.dst](msg)

    # -- event loop -----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` simulated seconds (timers etc.)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._events, _Event(self.clock.now() + delay, next(self._seq), action)
        )

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Drain events in (time, seq) order; returns events processed.

        ``until`` bounds simulated time (events after it stay queued);
        ``max_events`` guards against livelock in protocol bugs.
        """
        if self._running:
            raise NetworkError("SimNetwork.run is not reentrant")
        self._running = True
        processed = 0
        try:
            # net.run's *exclusive* time is the drain machinery (heap pops,
            # clock advances); each action runs under net.dispatch, whose
            # own exclusive is the span/delivery machinery around the
            # handler — frames opened inside subtract themselves out.
            with profiled("net.run"):
                while self._events and processed < max_events:
                    if until is not None and self._events[0].time > until:
                        break
                    event = heapq.heappop(self._events)
                    self.clock.advance_to(event.time)
                    with profiled("net.dispatch"):
                        event.action()
                    processed += 1
        finally:
            self._running = False
        if until is not None and self.clock.now() < until:
            self.clock.advance_to(until)
        return processed

    def pending(self) -> int:
        return len(self._events)

    def _require_node(self, name: str) -> None:
        if name not in self._handlers:
            raise NetworkError(f"unknown node {name!r}")
