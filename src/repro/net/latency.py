"""Link latency and bandwidth models for the network simulator.

A :class:`LatencyModel` maps (src, dst, message size) to a one-way delay in
simulated seconds. Models compose a fixed propagation component with a
size-proportional transmission component (``size / bandwidth``) and optional
random jitter drawn from a seeded generator, so identical seeds yield
identical delay sequences.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.util.rng import rng_for


class LatencyModel(Protocol):
    """Delay computation interface used by :class:`repro.net.SimNetwork`."""

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        """One-way delay in seconds for a message of ``size_bytes``."""
        ...


class ConstantLatency:
    """Fixed propagation delay plus deterministic transmission delay."""

    def __init__(self, base: float = 0.001, bandwidth_bps: float = 1e9) -> None:
        if base < 0:
            raise ValueError("base latency must be non-negative")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.base = base
        self.bandwidth_bps = bandwidth_bps

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        return self.base + (size_bytes * 8.0) / self.bandwidth_bps


class JitterLatency:
    """Constant base plus uniform jitter; models a LAN with scheduling noise.

    Jitter is drawn from a generator seeded per (seed) so simulations are
    reproducible; src/dst do not affect the stream, only its consumption
    order, which the deterministic event loop fixes.
    """

    def __init__(
        self,
        base: float = 0.001,
        jitter: float = 0.0005,
        bandwidth_bps: float = 1e9,
        seed: int = 0,
    ) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._const = ConstantLatency(base, bandwidth_bps)
        self.jitter = jitter
        self._rng = rng_for(seed, "net", "jitter")

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        return self._const.delay(src, dst, size_bytes) + float(
            self._rng.uniform(0.0, self.jitter)
        )


class LogNormalLatency:
    """Heavy-tailed WAN-like latency: lognormal propagation + transmission.

    Models the occasional straggler message that dominates consensus round
    time — the reason BFT quorum waits are sized 2f+1 of 3f+1 rather than all.
    """

    def __init__(
        self,
        median: float = 0.02,
        sigma: float = 0.4,
        bandwidth_bps: float = 1e8,
        seed: int = 0,
    ) -> None:
        if median <= 0:
            raise ValueError("median latency must be positive")
        self.median = median
        self.sigma = sigma
        self.bandwidth_bps = bandwidth_bps
        self._rng = rng_for(seed, "net", "lognormal")

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        prop = float(self._rng.lognormal(mean=np.log(self.median), sigma=self.sigma))
        return prop + (size_bytes * 8.0) / self.bandwidth_bps


class PairwiseLatency:
    """Explicit per-link base latencies with a fallback model.

    Lets experiments place some peers "far away" (e.g. a drone uplink with a
    slow radio) while the rest of the cluster shares a datacenter profile.
    """

    def __init__(self, fallback: LatencyModel | None = None) -> None:
        self.fallback = fallback or ConstantLatency()
        self._links: dict[tuple[str, str], LatencyModel] = {}

    def set_link(self, src: str, dst: str, model: LatencyModel, symmetric: bool = True) -> None:
        self._links[(src, dst)] = model
        if symmetric:
            self._links[(dst, src)] = model

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        model = self._links.get((src, dst), self.fallback)
        return model.delay(src, dst, size_bytes)
