"""Deterministic discrete-event network simulator: the substrate under BFT
consensus rounds and bitswap block exchange."""

from repro.net.latency import (
    ConstantLatency,
    JitterLatency,
    LatencyModel,
    LogNormalLatency,
    PairwiseLatency,
)
from repro.net.message import Message
from repro.net.node import NetNode
from repro.net.simnet import FaultAction, NetStats, SimNetwork
from repro.net.trace import MessageTrace, TraceEntry

__all__ = [
    "ConstantLatency",
    "JitterLatency",
    "LatencyModel",
    "LogNormalLatency",
    "PairwiseLatency",
    "FaultAction",
    "Message",
    "NetNode",
    "NetStats",
    "SimNetwork",
    "MessageTrace",
    "TraceEntry",
]
