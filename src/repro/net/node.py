"""Convenience base class for protocol participants on a SimNetwork."""

from __future__ import annotations

from typing import Any

from repro.net.message import Message
from repro.net.simnet import SimNetwork


class NetNode:
    """A named participant bound to a :class:`SimNetwork`.

    Subclasses override :meth:`on_message`; :meth:`send`/:meth:`broadcast`
    route through the simulator. The base class auto-registers on
    construction, so building the node is enough to join the network.
    """

    def __init__(self, name: str, network: SimNetwork) -> None:
        self.name = name
        self.network = network
        network.register(name, self._handle)

    def _handle(self, msg: Message) -> None:
        self.on_message(msg)

    def on_message(self, msg: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def send(self, dst: str, payload: Any, size_bytes: int = 256, kind: str = "msg") -> None:
        self.network.send(self.name, dst, payload, size_bytes=size_bytes, kind=kind)

    def broadcast(self, payload: Any, size_bytes: int = 256, kind: str = "msg") -> None:
        self.network.broadcast(self.name, payload, size_bytes=size_bytes, kind=kind)

    def after(self, delay: float, action) -> None:
        """Schedule a local timer on the shared event loop."""
        self.network.schedule(delay, action)

    @property
    def now(self) -> float:
        return self.network.clock.now()
