"""Channels and the FabricNetwork: the client-facing orchestration layer.

A :class:`Channel` wires peers to an ordering service and exposes the two
operations the paper's client performs:

* :meth:`Channel.invoke` — the full execute-order-validate write path:
  sign a proposal, collect endorsements from the required orgs, verify the
  endorsers simulated identically, submit to ordering, and return the
  commit outcome once the block lands (steps ②–⑦ of the paper's Figure 1).
* :meth:`Channel.query` — a read against one peer's state with no ordering
  and no consensus, the paper's observation that "reading from the
  blockchain does not incur gas costs".

:class:`FabricNetwork` assembles the pieces — MSP registry, channels,
orderers — the way the paper's testbed stands up its HLF network (one
channel, two peers, one orderer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import (
    AccessDeniedError,
    ChaincodeError,
    ChaincodeNotFoundError,
    EndorsementAttempt,
    EndorsementError,
    FabricError,
    IdentityError,
)
from repro.fabric.chaincode import Chaincode, ChaincodeDefinition
from repro.fabric.events import EventHub
from repro.fabric.identity import Identity, Role
from repro.fabric.ledger import Block
from repro.fabric.msp import MSPRegistry
from repro.fabric.orderer import BftOrderer, Orderer, SoloOrderer
from repro.fabric.peer import Peer
from repro.fabric.privatedata import CollectionRegistry, PrivateCollection
from repro.fabric.policy import AnyOf, Policy
from repro.fabric.tx import (
    ProposalResponse,
    Transaction,
    TxProposal,
    ValidationCode,
)
from repro.obs.metrics import get_registry
from repro.obs.prof import profiled
from repro.obs.tracer import span as obs_span
from repro.util.clock import Clock, WallClock


@dataclass(frozen=True)
class TxResult:
    """Commit outcome returned to the client."""

    tx_id: str
    code: ValidationCode
    response: str
    block_number: int

    @property
    def ok(self) -> bool:
        return self.code is ValidationCode.VALID


@dataclass
class ChannelStats:
    invokes: int = 0
    queries: int = 0
    endorsement_rtts: int = 0


class Channel:
    """One ledger shared by a set of peers behind one ordering service."""

    def __init__(
        self,
        name: str,
        msp_registry: MSPRegistry,
        orderer: Orderer,
        clock: Clock | None = None,
    ) -> None:
        self.name = name
        self.msp_registry = msp_registry
        self.orderer = orderer
        self.clock = clock or WallClock()
        self.peers: dict[str, Peer] = {}
        self.collections = CollectionRegistry()
        self.events = EventHub()
        self.stats = ChannelStats()
        self.rejected_by_block: dict[int, frozenset[str]] = {}
        # Runtime sanitizer (repro.analysis); propagated to joining peers.
        self.sanitizer = None
        # Index manager (repro.index.IndexManager); equips joining peers.
        self.indexing = None
        self._definitions: list[ChaincodeDefinition] = []
        self._results: dict[str, TxResult] = {}
        self._nonce = itertools.count()
        orderer.register_delivery(self._deliver_block)

    # -- topology ---------------------------------------------------------------

    def join_peer(self, peer: Peer) -> None:
        if peer.name in self.peers:
            raise FabricError(f"peer {peer.name!r} already joined channel {self.name!r}")
        self.peers[peer.name] = peer
        if self.sanitizer is not None:
            peer.sanitizer = self.sanitizer
        if self.indexing is not None:
            self.indexing.attach(peer)
        for definition in self._definitions:
            peer.install_chaincode(definition)

    def install_chaincode(self, chaincode: Chaincode, policy: Policy | None = None) -> None:
        orgs = sorted({p.org for p in self.peers.values()})
        definition = ChaincodeDefinition(
            chaincode=chaincode, policy=policy or AnyOf(*orgs)
        )
        self._definitions.append(definition)
        for peer in self.peers.values():
            peer.install_chaincode(definition)

    def define_collection(self, name: str, member_orgs: list[str]) -> PrivateCollection:
        """Define a private data collection; member-org peers will hold the
        plaintext, everyone else only the on-chain hashes."""
        collection = PrivateCollection(name=name, member_orgs=frozenset(member_orgs))
        self.collections.define(collection)
        return collection

    def update_chaincode_policy(self, chaincode: str, policy: Policy) -> None:
        """Replace a chaincode's endorsement policy (Fabric's chaincode
        definition update — required e.g. after admitting a new org)."""
        for definition in self._definitions:
            if definition.chaincode.name == chaincode:
                definition.policy = policy
                return
        raise FabricError(f"chaincode {chaincode!r} not installed on {self.name!r}")

    def org_peers(self, org: str) -> list[Peer]:
        return [p for p in self.peers.values() if p.org == org and p.online]

    def chaincode_names(self) -> list[str]:
        """Names of the chaincodes installed on this channel (sorted)."""
        return sorted(d.chaincode.name for d in self._definitions)

    # -- block delivery -------------------------------------------------------------

    def _deliver_block(self, block: Block, consensus_rejected: frozenset[str]) -> None:
        with obs_span("fabric.deliver") as sp:
            sp.set_attr("block", block.number)
            sp.set_attr("txs", len(block.transactions))
            with profiled("fabric.deliver"):
                self._deliver_block_inner(block, consensus_rejected)

    def _deliver_block_inner(self, block: Block, consensus_rejected: frozenset[str]) -> None:
        self.rejected_by_block[block.number] = consensus_rejected
        annotated: Block | None = None
        for peer in self.peers.values():
            if not peer.online:
                continue  # it will catch up via gossip anti-entropy
            if peer.ledger.height != block.number:
                continue  # revived mid-run behind the chain — same remedy
            committed = peer.commit_block(block, consensus_rejected=consensus_rejected)
            if annotated is None:
                annotated = committed
                self.events.publish_block(peer.name, committed)
        if annotated is None:
            raise FabricError("no online peer to commit the block")
        for i, tx in enumerate(annotated.transactions):
            self._results[tx.tx_id] = TxResult(
                tx_id=tx.tx_id,
                code=annotated.validation_codes[i],
                response=tx.response,
                block_number=annotated.number,
            )

    # -- client write path -------------------------------------------------------------

    def _build_proposal(
        self,
        identity: Identity,
        chaincode: str,
        fn: str,
        args: list[str],
        transient: dict[str, bytes] | None = None,
    ) -> TxProposal:
        creator = identity.info()
        nonce = f"{self.name}:{next(self._nonce)}".encode()
        tx_id = TxProposal.make_tx_id(creator, nonce)
        unsigned = TxProposal(
            tx_id=tx_id,
            channel=self.name,
            chaincode=chaincode,
            fn=fn,
            args=tuple(args),
            creator=creator,
            timestamp=self.clock.now(),
            transient=tuple(sorted((transient or {}).items())),
        )
        signature = identity.sign(unsigned.signing_payload())
        return TxProposal(
            tx_id=unsigned.tx_id,
            channel=unsigned.channel,
            chaincode=unsigned.chaincode,
            fn=unsigned.fn,
            args=unsigned.args,
            creator=unsigned.creator,
            timestamp=unsigned.timestamp,
            signature=signature,
            transient=unsigned.transient,
        )

    def _endorsing_orgs(self, chaincode: str, endorsing_orgs: list[str] | None) -> list[str]:
        definition = next(
            (d for d in self._definitions if d.chaincode.name == chaincode), None
        )
        if definition is None:
            raise FabricError(f"chaincode {chaincode!r} not installed on {self.name!r}")
        return endorsing_orgs or sorted(definition.policy.required_orgs())

    def endorse(
        self,
        identity: Identity,
        chaincode: str,
        fn: str,
        args: list[str],
        endorsing_orgs: list[str] | None = None,
        transient: dict[str, bytes] | None = None,
    ) -> tuple[TxProposal, list[ProposalResponse]]:
        """Run the endorsement phase only (exposed for tests and benches).

        Per org, surviving peers are tried in order — a peer that raises
        (crashed mid-request, stale liveness flag) is skipped and the next
        peer of the same org endorses instead. Only when *no* org produced
        a response is :class:`~repro.errors.EndorsementError` raised,
        carrying the full :class:`~repro.errors.EndorsementAttempt` trail so
        callers can tell offline peers from chaincode-level failures.
        """
        with obs_span("fabric.endorse") as sp:
            sp.set_attr("chaincode", chaincode)
            sp.set_attr("fn", fn)
            with profiled("endorse.propose"):
                proposal = self._build_proposal(identity, chaincode, fn, args, transient)
            orgs = self._endorsing_orgs(chaincode, endorsing_orgs)
            responses: list[ProposalResponse] = []
            attempts: list[EndorsementAttempt] = []
            height = self.height()
            for org in orgs:
                # Discovery-service ranking: a peer still catching up after
                # a restart would endorse against stale state and diverge
                # the rwset, so peers at chain height are tried first.
                candidates = sorted(
                    self.org_peers(org), key=lambda p: p.ledger.height != height
                )
                if not candidates:
                    attempts.append(EndorsementAttempt(peer="", org=org, kind="no_peers"))
                    continue
                for i, peer in enumerate(candidates):
                    try:
                        response = peer.endorse(proposal)
                    except (
                        IdentityError,
                        AccessDeniedError,
                        ChaincodeError,
                        ChaincodeNotFoundError,
                    ):
                        # Request-level failure: every peer would reject it
                        # identically, so failover would only mask the cause.
                        raise
                    except FabricError as exc:
                        attempts.append(
                            EndorsementAttempt(
                                peer=peer.name,
                                org=org,
                                kind=type(exc).__name__,
                                error=str(exc),
                            )
                        )
                        continue
                    if i > 0:
                        get_registry().counter(
                            "endorse_failover_total", {"org": org}
                        ).inc()
                    responses.append(response)
                    self.stats.endorsement_rtts += 1
                    break
            if not responses:
                raise EndorsementError(
                    f"no online peers available for orgs {orgs}", attempts
                )
            sp.set_attr("endorsements", len(responses))
            return proposal, responses

    def assemble(
        self, proposal: TxProposal, responses: list[ProposalResponse]
    ) -> Transaction:
        """Client-side checks + transaction assembly."""
        with profiled("fabric.assemble"):
            failures = [r for r in responses if not r.success]
            if failures:
                raise ChaincodeError(failures[0].message)
            digests = {r.rwset.digest() for r in responses}
            if len(digests) != 1:
                raise EndorsementError(
                    "endorsers produced divergent read/write sets "
                    "(non-deterministic chaincode or state skew)"
                )
            first = responses[0]
            return Transaction(
                proposal=proposal,
                rwset=first.rwset,
                response=first.response,
                endorsements=tuple(r.endorsement for r in responses),
                events=first.events,
                private_data=first.private_data,
            )

    def invoke(
        self,
        identity: Identity,
        chaincode: str,
        fn: str,
        args: list[str],
        endorsing_orgs: list[str] | None = None,
        transient: dict[str, bytes] | None = None,
    ) -> TxResult:
        """Full write path; blocks until the transaction commits.

        ``submit`` on the orderer is asynchronous (it only queues the
        transaction), so this method flushes the orderer — cutting a block
        that may be smaller than ``max_batch_size`` — when the result is
        not already committed. High-throughput writers should prefer
        :meth:`invoke_async` + one :meth:`flush` per batch so consensus
        amortizes over full blocks.
        """
        with obs_span("fabric.invoke") as sp:
            sp.set_attr("chaincode", chaincode)
            sp.set_attr("fn", fn)
            tx_id = self.invoke_async(identity, chaincode, fn, args, endorsing_orgs, transient)
            sp.set_attr("tx_id", tx_id)
            if tx_id not in self._results:
                self.orderer.flush()
            try:
                return self._results[tx_id]
            except KeyError:
                raise FabricError(
                    f"transaction {tx_id!r} did not commit after flush"
                ) from None

    def invoke_async(
        self,
        identity: Identity,
        chaincode: str,
        fn: str,
        args: list[str],
        endorsing_orgs: list[str] | None = None,
        transient: dict[str, bytes] | None = None,
    ) -> str:
        proposal, responses = self.endorse(
            identity, chaincode, fn, args, endorsing_orgs, transient
        )
        tx = self.assemble(proposal, responses)
        self.orderer.submit(tx)
        self.stats.invokes += 1
        return tx.tx_id

    def flush(self) -> None:
        with obs_span("fabric.flush"):
            self.orderer.flush()

    def result(self, tx_id: str) -> TxResult:
        try:
            return self._results[tx_id]
        except KeyError:
            raise FabricError(f"no commit result for {tx_id!r}") from None

    # -- client read path -------------------------------------------------------------

    def query(
        self,
        identity: Identity,
        chaincode: str,
        fn: str,
        args: list[str],
        peer: str | None = None,
    ) -> str:
        """Read-only chaincode execution on one peer; no ordering.

        With no explicit ``peer``, online peers are tried in order — a peer
        that fails mid-query is skipped and the next one answers. Request-
        level errors (bad identity, unknown chaincode, chaincode failure)
        propagate immediately: every peer would reject them the same way.
        """
        with obs_span("fabric.query") as sp:
            sp.set_attr("chaincode", chaincode)
            sp.set_attr("fn", fn)
            proposal = self._build_proposal(identity, chaincode, fn, args)
            self.stats.queries += 1
            if peer is not None:
                return self.peers[peer].query(proposal)
            online = [p for p in self.peers.values() if p.online]
            if not online:
                raise FabricError("no online peer to query")
            last_error: FabricError | None = None
            for i, target in enumerate(online):
                try:
                    result = target.query(proposal)
                except (
                    IdentityError,
                    AccessDeniedError,
                    ChaincodeError,
                    ChaincodeNotFoundError,
                ):
                    raise
                except FabricError as exc:
                    last_error = exc
                    continue
                if i > 0:
                    get_registry().counter("query_failover_total").inc()
                return result
            raise FabricError("every online peer failed the query") from last_error

    # -- maintenance ------------------------------------------------------------------

    def anti_entropy(self) -> int:
        """Catch lagging (recently restarted) peers up via gossip."""
        from repro.fabric.gossip import anti_entropy

        return anti_entropy(list(self.peers.values()), self.rejected_by_block)

    def height(self) -> int:
        online = [p for p in self.peers.values() if p.online]
        return max((p.ledger.height for p in online), default=0)


class FabricNetwork:
    """Top-level factory: orgs, identities, channels, orderers.

    ``create_channel(..., consensus="solo" | "bft")`` reproduces the
    paper's deployment shape; peers default to two (one per org) as in the
    paper's testbed.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or WallClock()
        self.msp_registry = MSPRegistry()
        self.channels: dict[str, Channel] = {}
        self._peer_counter = itertools.count()

    # -- identities --------------------------------------------------------------

    def add_org(self, org: str) -> None:
        self.msp_registry.add_org(org)

    def register_identity(
        self, name: str, org: str, role: Role = Role.CLIENT
    ) -> Identity:
        if org not in self.msp_registry.orgs():
            self.add_org(org)
        identity = Identity.create(name, org, role)
        self.msp_registry.enroll(identity)
        return identity

    # -- channels ------------------------------------------------------------------

    def create_channel(
        self,
        name: str,
        orgs: list[str],
        peers_per_org: int = 1,
        consensus: str = "solo",
        max_batch_size: int = 1,
        n_validators: int = 4,
        bft_behaviours=None,
        consensus_checkpoint_interval: int = 0,
    ) -> Channel:
        if name in self.channels:
            raise FabricError(f"channel {name!r} already exists")
        if consensus == "solo":
            orderer: Orderer = SoloOrderer(max_batch_size=max_batch_size, clock=self.clock)
        elif consensus == "bft":
            orderer = BftOrderer(
                n_validators=n_validators,
                max_batch_size=max_batch_size,
                clock=self.clock,
                behaviours=bft_behaviours,
                checkpoint_interval=consensus_checkpoint_interval,
            )
        else:
            raise FabricError(f"unknown consensus type {consensus!r}")
        channel = Channel(name, self.msp_registry, orderer, clock=self.clock)
        for org in orgs:
            if org not in self.msp_registry.orgs():
                self.add_org(org)
            for _ in range(peers_per_org):
                idx = next(self._peer_counter)
                peer_identity = self.register_identity(
                    f"peer{idx}.{org}", org, role=Role.PEER
                )
                channel.join_peer(
                    Peer(
                        f"peer{idx}.{org}",
                        peer_identity,
                        self.msp_registry,
                        collections=channel.collections,
                    )
                )
        self.channels[name] = channel
        return channel

    def channel(self, name: str) -> Channel:
        try:
            return self.channels[name]
        except KeyError:
            raise FabricError(f"unknown channel {name!r}") from None

    def add_org_to_channel(self, channel_name: str, org: str, peers: int = 1) -> list[Peer]:
        """Admit a new organization at runtime: register its MSP, stand up
        its peers (with the channel's chaincodes and collections), and
        catch them up to the current chain via gossip anti-entropy —
        Fabric's channel-config-update flow, in one call."""
        channel = self.channel(channel_name)
        if org not in self.msp_registry.orgs():
            self.add_org(org)
        joined: list[Peer] = []
        for _ in range(peers):
            idx = next(self._peer_counter)
            identity = self.register_identity(f"peer{idx}.{org}", org, role=Role.PEER)
            peer = Peer(
                f"peer{idx}.{org}",
                identity,
                self.msp_registry,
                collections=channel.collections,
            )
            channel.join_peer(peer)
            joined.append(peer)
        channel.anti_entropy()
        return joined
