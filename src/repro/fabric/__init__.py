"""HLF-like permissioned blockchain substrate: identities and MSPs,
endorsement policies, chaincode runtime with rwset capture, versioned world
state, hash-chained ledger, solo/BFT ordering, MVCC commit, gossip, events."""

from repro.fabric.chaincode import (
    Chaincode,
    ChaincodeDefinition,
    ChaincodeRegistry,
    ChaincodeStub,
)
from repro.fabric.channel import Channel, ChannelStats, FabricNetwork, TxResult
from repro.fabric.events import BlockEvent, ChaincodeEventRecord, EventHub
from repro.fabric.gossip import anti_entropy, sync_peer
from repro.fabric.identity import Identity, IdentityInfo, Role
from repro.fabric.ledger import Block, BlockHeader, BlockStore, GENESIS_PREVIOUS_HASH
from repro.fabric.msp import MSP, MSPRegistry
from repro.fabric.orderer import BftOrderer, SoloOrderer, default_tx_validator
from repro.fabric.peer import Peer, PeerStats, endorsement_payload
from repro.fabric.privatedata import (
    CollectionRegistry,
    PrivateCollection,
    PrivateStateStore,
    private_hash_key,
    value_hash,
)
from repro.fabric.policy import AllOf, And, AnyOf, MajorityOf, Or, OutOf, Policy, SignedBy
from repro.fabric.tx import (
    ChaincodeEvent,
    Endorsement,
    ProposalResponse,
    ReadEntry,
    ReadWriteSet,
    Transaction,
    TxProposal,
    ValidationCode,
    WriteEntry,
)
from repro.fabric.worldstate import (
    HistoryEntry,
    Version,
    WorldState,
    composite_prefix_range,
    make_composite_key,
    split_composite_key,
)

__all__ = [
    "Chaincode",
    "ChaincodeDefinition",
    "ChaincodeRegistry",
    "ChaincodeStub",
    "Channel",
    "ChannelStats",
    "FabricNetwork",
    "TxResult",
    "BlockEvent",
    "ChaincodeEventRecord",
    "EventHub",
    "anti_entropy",
    "sync_peer",
    "Identity",
    "IdentityInfo",
    "Role",
    "Block",
    "BlockHeader",
    "BlockStore",
    "GENESIS_PREVIOUS_HASH",
    "MSP",
    "MSPRegistry",
    "BftOrderer",
    "SoloOrderer",
    "default_tx_validator",
    "Peer",
    "PeerStats",
    "endorsement_payload",
    "CollectionRegistry",
    "PrivateCollection",
    "PrivateStateStore",
    "private_hash_key",
    "value_hash",
    "AllOf",
    "And",
    "AnyOf",
    "MajorityOf",
    "Or",
    "OutOf",
    "Policy",
    "SignedBy",
    "ChaincodeEvent",
    "Endorsement",
    "ProposalResponse",
    "ReadEntry",
    "ReadWriteSet",
    "Transaction",
    "TxProposal",
    "ValidationCode",
    "WriteEntry",
    "HistoryEntry",
    "Version",
    "WorldState",
    "composite_prefix_range",
    "make_composite_key",
    "split_composite_key",
]
