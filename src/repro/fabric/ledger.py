"""The ledger: a hash-chained block store.

Each block header carries the previous header's hash and the Merkle root of
the block's transaction envelopes, so any historical tamper breaks the chain
at verification. Block metadata records the per-transaction validation codes
the committer assigned — invalid transactions stay in the block (the audit
trail the paper's provenance story needs) but never touch the world state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.merkle import MerkleTree, merkle_root
from repro.errors import LedgerError
from repro.fabric.tx import Transaction, ValidationCode
from repro.util.serialization import canonical_json


@dataclass(frozen=True)
class BlockHeader:
    number: int
    previous_hash: str
    data_hash: str  # Merkle root of tx envelopes
    timestamp: float

    def hash(self) -> str:
        return hashlib.sha256(
            canonical_json(
                {
                    "number": self.number,
                    "previous_hash": self.previous_hash,
                    "data_hash": self.data_hash,
                    "timestamp": self.timestamp,
                }
            )
        ).hexdigest()


@dataclass(frozen=True)
class Block:
    header: BlockHeader
    transactions: tuple[Transaction, ...]
    # Parallel to transactions; filled by the committer.
    validation_codes: tuple[ValidationCode, ...] = ()

    @property
    def number(self) -> int:
        return self.header.number

    def tx_merkle_tree(self) -> MerkleTree:
        return MerkleTree([tx.envelope_bytes() for tx in self.transactions])

    @classmethod
    def build(
        cls,
        number: int,
        previous_hash: str,
        transactions: tuple[Transaction, ...],
        timestamp: float,
    ) -> "Block":
        data_hash = merkle_root([tx.envelope_bytes() for tx in transactions]).hex()
        header = BlockHeader(
            number=number,
            previous_hash=previous_hash,
            data_hash=data_hash,
            timestamp=timestamp,
        )
        return cls(header=header, transactions=transactions)

    def with_validation(self, codes: list[ValidationCode]) -> "Block":
        if len(codes) != len(self.transactions):
            raise LedgerError("one validation code required per transaction")
        return Block(
            header=self.header,
            transactions=self.transactions,
            validation_codes=tuple(codes),
        )


GENESIS_PREVIOUS_HASH = "0" * 64


@dataclass
class BlockStore:
    """Append-only chain of blocks with lookup indexes.

    A store normally starts at genesis; a peer bootstrapped from a state
    snapshot starts at a *checkpoint* (``base_height``/``base_prev_hash``)
    and stores only blocks from there forward — the snapshot vouches for
    everything before it.
    """

    base_height: int = 0
    base_prev_hash: str = "0" * 64
    _blocks: list[Block] = field(default_factory=list)
    _by_txid: dict[str, tuple[int, int]] = field(default_factory=dict)

    def append(self, block: Block) -> None:
        expected_number = self.base_height + len(self._blocks)
        if block.number != expected_number:
            raise LedgerError(
                f"expected block {expected_number}, got {block.number}"
            )
        expected_prev = (
            self._blocks[-1].header.hash() if self._blocks else self.base_prev_hash
        )
        if block.header.previous_hash != expected_prev:
            raise LedgerError(f"block {block.number} breaks the hash chain")
        # Recompute the data hash: the store never trusts the producer.
        recomputed = merkle_root([tx.envelope_bytes() for tx in block.transactions]).hex()
        if recomputed != block.header.data_hash:
            raise LedgerError(f"block {block.number} data hash mismatch")
        self._blocks.append(block)
        for i, tx in enumerate(block.transactions):
            self._by_txid.setdefault(tx.tx_id, (block.number, i))

    @property
    def height(self) -> int:
        return self.base_height + len(self._blocks)

    def block(self, number: int) -> Block:
        idx = number - self.base_height
        if idx < 0:
            raise LedgerError(
                f"block {number} predates this store's checkpoint ({self.base_height})"
            )
        try:
            return self._blocks[idx]
        except IndexError:
            raise LedgerError(f"no block {number} (height {self.height})") from None

    def last_hash(self) -> str:
        return self._blocks[-1].header.hash() if self._blocks else self.base_prev_hash

    def blocks(self) -> list[Block]:
        return list(self._blocks)

    def find_tx(self, tx_id: str) -> tuple[Block, Transaction, ValidationCode]:
        """Locate a transaction and its validation outcome."""
        try:
            block_num, idx = self._by_txid[tx_id]
        except KeyError:
            raise LedgerError(f"transaction {tx_id!r} not found") from None
        block = self.block(block_num)
        code = (
            block.validation_codes[idx]
            if block.validation_codes
            else ValidationCode.VALID
        )
        return block, block.transactions[idx], code

    def has_tx(self, tx_id: str) -> bool:
        return tx_id in self._by_txid

    def verify_chain(self) -> None:
        """Full-chain audit (from the checkpoint forward): hash links and
        per-block Merkle roots."""
        prev = self.base_prev_hash
        for i, block in enumerate(self._blocks, start=self.base_height):
            if block.number != i:
                raise LedgerError(f"block {i} has wrong number {block.number}")
            if block.header.previous_hash != prev:
                raise LedgerError(f"hash chain broken at block {i}")
            recomputed = merkle_root(
                [tx.envelope_bytes() for tx in block.transactions]
            ).hex()
            if recomputed != block.header.data_hash:
                raise LedgerError(f"data hash mismatch at block {i}")
            prev = block.header.hash()
