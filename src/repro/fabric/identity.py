"""Identities: who can act on the blockchain, and in what role.

An :class:`Identity` pairs a name with an organization, a role, and a
keypair — the reproduction's stand-in for Fabric's X.509 enrollment
certificates. The public half (:class:`IdentityInfo`) is what proposals
carry as the *creator* and what the MSP registry stores; the private half
never leaves the client process.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.crypto.keys import KeyPair, PublicKey


class Role(str, Enum):
    """Principal roles recognized by endorsement policies and chaincodes."""

    ADMIN = "admin"
    PEER = "peer"
    CLIENT = "client"
    ORDERER = "orderer"


@dataclass(frozen=True)
class IdentityInfo:
    """The shareable face of an identity (goes into proposals and blocks)."""

    name: str
    org: str
    role: Role
    public_key_hex: str

    @property
    def public_key(self) -> PublicKey:
        return PublicKey.from_hex(self.public_key_hex)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "org": self.org,
            "role": self.role.value,
            "public_key": self.public_key_hex,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "IdentityInfo":
        return cls(
            name=doc["name"],
            org=doc["org"],
            role=Role(doc["role"]),
            public_key_hex=doc["public_key"],
        )


@dataclass(frozen=True)
class Identity:
    """A full identity with signing capability."""

    name: str
    org: str
    role: Role
    keypair: KeyPair

    @classmethod
    def create(cls, name: str, org: str, role: Role = Role.CLIENT) -> "Identity":
        """Deterministic identity (key derived from name+org), for tests and
        reproducible experiments; use :meth:`create_random` otherwise."""
        return cls(name=name, org=org, role=role, keypair=KeyPair.from_seed(f"{org}/{name}"))

    @classmethod
    def create_random(cls, name: str, org: str, role: Role = Role.CLIENT) -> "Identity":
        return cls(name=name, org=org, role=role, keypair=KeyPair.generate())

    def info(self) -> IdentityInfo:
        return IdentityInfo(
            name=self.name,
            org=self.org,
            role=self.role,
            public_key_hex=self.keypair.public.hex(),
        )

    def sign(self, message: bytes) -> bytes:
        return self.keypair.sign(message)
