"""Transaction structures: proposals, endorsements, envelopes, rwsets.

The execute-order-validate flow is carried by three structures:

* :class:`TxProposal` — a signed client request to run a chaincode function.
* :class:`ProposalResponse` — one endorsing peer's simulation result: the
  read/write set it produced, the chaincode's return value, and the peer's
  signature over all of it.
* :class:`Transaction` — the proposal plus a set of endorsements, submitted
  to ordering; validated and committed by every peer.

:class:`ReadWriteSet` records each read key with the version observed at
simulation time and each written key with its new value; equality of rwsets
across endorsers is what lets the client detect non-deterministic chaincode.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

from repro.fabric.identity import IdentityInfo
from repro.fabric.worldstate import Version
from repro.obs.prof import profiled
from repro.util.serialization import canonical_json


class ValidationCode(str, Enum):
    """Per-transaction commit outcome, recorded in block metadata."""

    VALID = "VALID"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    ENDORSEMENT_POLICY_FAILURE = "ENDORSEMENT_POLICY_FAILURE"
    BAD_SIGNATURE = "BAD_SIGNATURE"
    BAD_IDENTITY = "BAD_IDENTITY"
    MISMATCHED_RWSETS = "MISMATCHED_RWSETS"
    CHAINCODE_ERROR = "CHAINCODE_ERROR"
    REJECTED_BY_CONSENSUS = "REJECTED_BY_CONSENSUS"
    DUPLICATE_TXID = "DUPLICATE_TXID"


@dataclass(frozen=True)
class ReadEntry:
    key: str
    version: Version | None  # None: the key did not exist at read time

    def to_dict(self) -> dict:
        return {"key": self.key, "version": self.version.to_dict() if self.version else None}


@dataclass(frozen=True)
class WriteEntry:
    key: str
    value: bytes | None  # None marks a delete
    is_delete: bool = False

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "value": self.value.hex() if self.value is not None else None,
            "is_delete": self.is_delete,
        }


@dataclass(frozen=True)
class ReadWriteSet:
    reads: tuple[ReadEntry, ...] = ()
    writes: tuple[WriteEntry, ...] = ()

    def to_dict(self) -> dict:
        return {
            "reads": [r.to_dict() for r in self.reads],
            "writes": [w.to_dict() for w in self.writes],
        }

    def digest(self) -> str:
        return hashlib.sha256(canonical_json(self.to_dict())).hexdigest()


@dataclass(frozen=True)
class TxProposal:
    """A client's signed request to execute chaincode.

    ``transient`` carries sensitive inputs (private-collection payloads)
    that must never appear on the ledger: it is excluded from the signing
    payload and hence from every block hash, exactly like Fabric's
    transient map.
    """

    tx_id: str
    channel: str
    chaincode: str
    fn: str
    args: tuple[str, ...]
    creator: IdentityInfo
    timestamp: float
    signature: bytes = b""
    transient: tuple[tuple[str, bytes], ...] = ()

    def transient_map(self) -> dict[str, bytes]:
        return dict(self.transient)

    def signing_payload(self) -> bytes:
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "fn": self.fn,
                "args": list(self.args),
                "creator": self.creator.to_dict(),
                "timestamp": self.timestamp,
            }
        )

    @staticmethod
    def make_tx_id(creator: IdentityInfo, nonce: bytes) -> str:
        return hashlib.sha256(
            nonce + creator.public_key_hex.encode() + creator.name.encode()
        ).hexdigest()


@dataclass(frozen=True)
class Endorsement:
    """One peer's signature over a proposal response payload."""

    endorser: IdentityInfo
    signature: bytes


@dataclass(frozen=True)
class ProposalResponse:
    """An endorsing peer's simulation result."""

    tx_id: str
    rwset: ReadWriteSet
    response: str  # chaincode return value (JSON string)
    success: bool
    message: str
    endorsement: Endorsement
    # Chaincode events captured during simulation. Not covered by the
    # endorsement signature (as in Fabric, events ride in the tx envelope).
    events: tuple["ChaincodeEvent", ...] = ()
    # Private-collection payloads from simulation; their hashes are in the
    # (signed) rwset, the payloads themselves travel out-of-band.
    private_data: tuple["PrivateWrite", ...] = ()

    def response_payload(self) -> bytes:
        """Bytes the endorser signed: binds tx, rwset, and return value."""
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "rwset": self.rwset.to_dict(),
                "response": self.response,
                "success": self.success,
            }
        )


@dataclass(frozen=True)
class PrivateWrite:
    """One private-collection write: the payload travels to member-org
    peers only; the public rwset carries just its hash (HLF private data)."""

    collection: str
    key: str
    value: bytes

    def value_hash(self) -> str:
        return hashlib.sha256(self.value).hexdigest()


@dataclass(frozen=True)
class Transaction:
    """Proposal + endorsements, as submitted to the ordering service."""

    proposal: TxProposal
    rwset: ReadWriteSet
    response: str
    endorsements: tuple[Endorsement, ...]
    events: tuple["ChaincodeEvent", ...] = ()
    # Private payloads; NOT part of the envelope/block hash — only their
    # hashes (inside the public rwset) are, exactly as in Fabric.
    private_data: tuple[PrivateWrite, ...] = ()

    @property
    def tx_id(self) -> str:
        return self.proposal.tx_id

    def endorsing_orgs(self) -> set[str]:
        return {e.endorser.org for e in self.endorsements}

    def envelope_bytes(self) -> bytes:
        """Canonical bytes of the full transaction (hashed into blocks)."""
        with profiled("serialize.envelope"):
            return canonical_json(
                {
                    "proposal": self.proposal.signing_payload().decode("utf-8"),
                    "proposal_sig": self.proposal.signature.hex(),
                    "rwset": self.rwset.to_dict(),
                    "response": self.response,
                    "endorsements": [
                        {"endorser": e.endorser.to_dict(), "sig": e.signature.hex()}
                        for e in self.endorsements
                    ],
                    "events": [ev.to_dict() for ev in self.events],
                }
            )


@dataclass(frozen=True)
class ChaincodeEvent:
    """An application event emitted during chaincode execution."""

    chaincode: str
    name: str
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"chaincode": self.chaincode, "name": self.name, "payload": self.payload}
