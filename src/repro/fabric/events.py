"""Event hub: block and chaincode event delivery to subscribers.

Fabric clients learn about commits through peer event services; here the
channel publishes a :class:`BlockEvent` after each commit, and chaincode
events (``stub.set_event``) from *valid* transactions fan out to matching
subscriptions. The trust engine and the monitoring hooks in the benchmarks
are both built on these callbacks.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Callable

from repro.fabric.ledger import Block
from repro.fabric.tx import ChaincodeEvent, ValidationCode


@dataclass(frozen=True)
class BlockEvent:
    """A block was committed on a peer."""

    peer: str
    block: Block


@dataclass(frozen=True)
class ChaincodeEventRecord:
    """A chaincode event from a committed, valid transaction."""

    peer: str
    block_number: int
    tx_id: str
    event: ChaincodeEvent


BlockCallback = Callable[[BlockEvent], None]
ChaincodeCallback = Callable[[ChaincodeEventRecord], None]


class EventHub:
    """Subscription registry; publishing is synchronous and in commit order."""

    def __init__(self) -> None:
        self._block_subs: list[BlockCallback] = []
        self._cc_subs: list[tuple[str, str, ChaincodeCallback]] = []
        self.blocks_published = 0
        self.events_published = 0

    def subscribe_blocks(self, callback: BlockCallback) -> None:
        self._block_subs.append(callback)

    def subscribe_chaincode(
        self, chaincode: str, event_pattern: str, callback: ChaincodeCallback
    ) -> None:
        """``event_pattern`` is an fnmatch glob over event names."""
        self._cc_subs.append((chaincode, event_pattern, callback))

    def publish_block(self, peer: str, block: Block) -> None:
        self.blocks_published += 1
        event = BlockEvent(peer=peer, block=block)
        for callback in list(self._block_subs):
            callback(event)
        codes = block.validation_codes or tuple(
            ValidationCode.VALID for _ in block.transactions
        )
        for tx, code in zip(block.transactions, codes):
            if code is not ValidationCode.VALID:
                continue  # events from invalid transactions never fire
            for cc_event in tx.events:
                self._publish_cc(peer, block.number, tx.tx_id, cc_event)

    def _publish_cc(self, peer: str, block_number: int, tx_id: str, event: ChaincodeEvent) -> None:
        self.events_published += 1
        record = ChaincodeEventRecord(
            peer=peer, block_number=block_number, tx_id=tx_id, event=event
        )
        for chaincode, pattern, callback in list(self._cc_subs):
            if chaincode == event.chaincode and fnmatch.fnmatch(event.name, pattern):
                callback(record)
