"""Private data collections: org-scoped confidentiality on a shared ledger.

The paper picks HLF because "it gives participating organizations control
over data accessibility" — in Fabric that control is *private data
collections*: named side databases whose contents only member-org peers
hold, while the public ledger records just a salted-free hash of each
private write so everyone can audit *that* something was written (and
verify disclosed values) without seeing *what*.

Flow, mirroring Fabric:

* chaincode calls ``stub.put_private_data(collection, key, value)``;
* the public read/write set gains a hash write under the collection's
  hashed-key namespace — that is what gets endorsed, ordered, and hashed
  into the block;
* the raw payload rides the transaction envelope out-of-band (Fabric uses
  transient store + gossip; in-process we attach it to the Transaction,
  excluded from the envelope hash);
* at commit, member-org peers verify each payload against the on-chain
  hash and store it in their side database; non-members store nothing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import ChaincodeError, FabricError
from repro.fabric.worldstate import WorldState, make_composite_key

# Namespace for on-chain hashes of private writes.
PVT_HASH_TYPE = "pvt~hash"


def private_hash_key(collection: str, key: str) -> str:
    """The public world-state key holding the hash of a private value."""
    return make_composite_key(PVT_HASH_TYPE, [collection, key])


def value_hash(value: bytes) -> str:
    return hashlib.sha256(value).hexdigest()


@dataclass(frozen=True)
class PrivateCollection:
    """A collection definition: who may hold the plaintext."""

    name: str
    member_orgs: frozenset[str]

    def __post_init__(self) -> None:
        if not self.name:
            raise FabricError("collection name must be non-empty")
        if not self.member_orgs:
            raise FabricError(f"collection {self.name!r} needs at least one member org")

    def is_member(self, org: str) -> bool:
        return org in self.member_orgs


@dataclass
class CollectionRegistry:
    """Channel-level collection configuration."""

    _collections: dict[str, PrivateCollection] = field(default_factory=dict)

    def define(self, collection: PrivateCollection) -> None:
        if collection.name in self._collections:
            raise FabricError(f"collection {collection.name!r} already defined")
        self._collections[collection.name] = collection

    def get(self, name: str) -> PrivateCollection:
        try:
            return self._collections[name]
        except KeyError:
            raise ChaincodeError(f"unknown private collection {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._collections)

    def __contains__(self, name: str) -> bool:
        return name in self._collections


@dataclass
class PrivateStateStore:
    """One peer's side databases, one world state per member collection."""

    org: str
    registry: CollectionRegistry
    _stores: dict[str, WorldState] = field(default_factory=dict)

    def store_for(self, collection: str) -> WorldState:
        definition = self.registry.get(collection)
        if not definition.is_member(self.org):
            raise ChaincodeError(
                f"org {self.org!r} is not a member of collection {collection!r}"
            )
        return self._stores.setdefault(collection, WorldState())

    def has_collection(self, collection: str) -> bool:
        return collection in self.registry and self.registry.get(collection).is_member(self.org)
