"""Gossip: block dissemination and anti-entropy between peers.

Fabric peers receive blocks either directly from ordering or from other
peers via gossip; a peer that was offline catches up by pulling missing
blocks from a healthy neighbour. :func:`sync_peer` replays the missing
suffix through the normal commit path (so validation codes and world state
come out identical), and :func:`anti_entropy` runs pairwise sync until all
online peers converge to the same height.
"""

from __future__ import annotations

from repro.errors import FabricError, LedgerError
from repro.fabric.peer import Peer


def sync_peer(behind: Peer, ahead: Peer, rejected_by_block: dict[int, frozenset[str]] | None = None) -> int:
    """Pull blocks ``behind`` is missing from ``ahead``; returns blocks copied.

    ``rejected_by_block`` carries the consensus-rejection sets per block
    number (empty when the channel uses solo ordering).
    """
    if not behind.online:
        raise FabricError(f"peer {behind.name!r} is offline")
    copied = 0
    rejected_by_block = rejected_by_block or {}
    while behind.ledger.height < ahead.ledger.height:
        number = behind.ledger.height
        block = ahead.ledger.block(number)
        # Re-commit from the raw transactions: the receiving peer re-validates
        # rather than trusting the sender's annotations.
        from repro.fabric.ledger import Block

        raw = Block(header=block.header, transactions=block.transactions)
        recommitted = behind.commit_block(
            raw, consensus_rejected=rejected_by_block.get(number, frozenset())
        )
        if recommitted.validation_codes != block.validation_codes:
            raise LedgerError(
                f"peer {behind.name!r} disagrees with {ahead.name!r} on block {number}"
            )
        copied += 1
    return copied


def anti_entropy(peers: list[Peer], rejected_by_block: dict[int, frozenset[str]] | None = None) -> int:
    """Bring every online peer to the maximum height among online peers."""
    online = [p for p in peers if p.online]
    if not online:
        return 0
    ahead = max(online, key=lambda p: p.ledger.height)
    total = 0
    for peer in online:
        if peer is not ahead:
            total += sync_peer(peer, ahead, rejected_by_block)
    return total
