"""Rich queries: CouchDB-style selectors over the world state.

Fabric peers backed by CouchDB support JSON selector queries
(``{"selector": {"tier": "untrusted", "score": {"$lt": 0.5}}}``), and the
related work the paper builds on (Yan et al.) is exactly about making such
conditional queries efficient on Fabric. This module implements the
selector language over our world state, exposed to chaincode through
``stub.get_query_result`` — values that aren't JSON objects simply never
match, as in CouchDB.

Supported operators: implicit equality, ``$eq $ne $gt $gte $lt $lte $in
$nin $exists $regex`` per field, and ``$and $or $not`` combinators.
Dotted field names reach into nested objects.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.errors import QueryError


def _get_field(doc: dict, dotted: str) -> tuple[bool, Any]:
    current: Any = doc
    for part in dotted.split("."):
        if not isinstance(current, dict) or part not in current:
            return False, None
        current = current[part]
    return True, current


def _compare(op: str, actual: Any, expected: Any) -> bool:
    try:
        if op == "$eq":
            return actual == expected
        if op == "$ne":
            return actual != expected
        if op == "$gt":
            return actual > expected
        if op == "$gte":
            return actual >= expected
        if op == "$lt":
            return actual < expected
        if op == "$lte":
            return actual <= expected
        if op in ("$in", "$nin"):
            # CouchDB requires an array operand; a scalar (or a string,
            # whose `in` would do substring matching) is a malformed
            # selector, not a non-match.
            if not isinstance(expected, (list, tuple)):
                raise QueryError(f"{op} needs an array operand, got {type(expected).__name__}")
            return (actual in expected) if op == "$in" else (actual not in expected)
        if op == "$regex":
            if not isinstance(actual, str):
                return False
            try:
                return re.search(expected, actual) is not None
            except re.error as exc:
                raise QueryError(f"invalid $regex pattern {expected!r}: {exc}") from exc
    except TypeError:
        return False  # cross-type comparisons never match
    raise QueryError(f"unknown selector operator {op!r}")


def _match_condition(doc: dict, field: str, condition: Any) -> bool:
    present, actual = _get_field(doc, field)
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        for op, expected in condition.items():
            if op == "$exists":
                if bool(expected) != present:
                    return False
                continue
            if not present or not _compare(op, actual, expected):
                return False
        return True
    return present and actual == condition


def match_selector(doc: dict, selector: dict) -> bool:
    """Does ``doc`` satisfy the selector?"""
    if not isinstance(selector, dict):
        raise QueryError("selector must be a JSON object")
    for key, value in selector.items():
        if key == "$and":
            if not all(match_selector(doc, s) for s in value):
                return False
        elif key == "$or":
            if not any(match_selector(doc, s) for s in value):
                return False
        elif key == "$not":
            if match_selector(doc, value):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unknown combinator {key!r}")
        else:
            if not _match_condition(doc, key, value):
                return False
    return True


def select(rows: list[tuple[str, bytes]], selector: dict, limit: int | None = None) -> list[tuple[str, dict]]:
    """Filter (key, value-bytes) state rows; non-JSON-object values never
    match. Returns (key, parsed document) pairs."""
    out: list[tuple[str, dict]] = []
    for key, raw in rows:
        try:
            doc = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        if not isinstance(doc, dict):
            continue
        if match_selector(doc, selector):
            out.append((key, doc))
            if limit is not None and len(out) >= limit:
                break
    return out
