"""State snapshots: checkpointing and fast peer bootstrap.

A long-running channel accumulates thousands of blocks; a new peer (or an
org restoring from disaster) should not have to replay all of them.
Fabric v2.4 added ledger snapshots for exactly this; here a
:class:`Snapshot` captures a peer's world state (values + versions) plus
the ledger coordinate it reflects (height, last block hash) under a
deterministic digest, so the receiver can verify the snapshot byte-for-byte
against any honest peer before adopting it.

The digest also powers :func:`state_digest`-based divergence auditing: two
honest peers at the same height must produce identical digests, which the
tests use as the fabric's end-to-end consistency oracle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import LedgerError
from repro.fabric.ledger import BlockStore
from repro.fabric.peer import Peer
from repro.fabric.worldstate import Version, WorldState
from repro.util.serialization import canonical_json, from_canonical_json


def state_digest(world: WorldState) -> str:
    """Deterministic digest over (key, value, version) of the live state."""
    h = hashlib.sha256()
    for key in world.keys():
        value = world.get(key)
        version = world.get_version(key)
        h.update(
            canonical_json(
                {
                    "k": key,
                    "v": value.hex() if value is not None else None,
                    "ver": version.to_dict() if version else None,
                }
            )
        )
    return h.hexdigest()


@dataclass(frozen=True)
class Snapshot:
    """A verifiable capture of one peer's committed state."""

    channel: str
    height: int
    last_block_hash: str
    entries: tuple[tuple[str, str, int, int], ...]  # (key, value_hex, block, tx)
    digest: str

    def to_bytes(self) -> bytes:
        return canonical_json(
            {
                "channel": self.channel,
                "height": self.height,
                "last_block_hash": self.last_block_hash,
                "entries": [list(e) for e in self.entries],
                "digest": self.digest,
            }
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Snapshot":
        doc = from_canonical_json(raw)
        try:
            return cls(
                channel=doc["channel"],
                height=int(doc["height"]),
                last_block_hash=doc["last_block_hash"],
                entries=tuple(
                    (e[0], e[1], int(e[2]), int(e[3])) for e in doc["entries"]
                ),
                digest=doc["digest"],
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise LedgerError(f"malformed snapshot: {exc}") from exc


def take_snapshot(peer: Peer, channel_name: str) -> Snapshot:
    """Capture a peer's current world state and ledger coordinate."""
    entries = []
    for key in peer.world.keys():
        value = peer.world.get(key)
        version = peer.world.get_version(key)
        assert value is not None and version is not None
        entries.append((key, value.hex(), version.block, version.tx))
    return Snapshot(
        channel=channel_name,
        height=peer.ledger.height,
        last_block_hash=peer.ledger.last_hash(),
        entries=tuple(entries),
        digest=state_digest(peer.world),
    )


def bootstrap_peer(peer: Peer, snapshot: Snapshot) -> None:
    """Adopt a snapshot on a fresh peer: verify its digest, load the state,
    and checkpoint the block store so commits resume at ``height``."""
    if peer.ledger.height != 0 or len(peer.world) != 0:
        raise LedgerError("can only bootstrap a fresh peer from a snapshot")
    world = WorldState()
    for key, value_hex, block, tx in snapshot.entries:
        world.apply_write(
            key=key,
            value=bytes.fromhex(value_hex),
            version=Version(block=block, tx=tx),
            tx_id="snapshot",
            timestamp=0.0,
        )
    if state_digest(world) != snapshot.digest:
        raise LedgerError("snapshot digest mismatch — refusing to adopt")
    peer.world = world
    peer.ledger = BlockStore(
        base_height=snapshot.height, base_prev_hash=snapshot.last_block_hash
    )


def adopt_snapshot(peer: Peer, snapshot: Snapshot) -> int:
    """Replace a (possibly lagging or damaged) peer's state with a verified
    snapshot, instead of replaying the chain block by block.

    Unlike :func:`bootstrap_peer` this accepts a non-fresh peer — the
    revived-node case — but refuses to move a peer *backwards*: adopting a
    snapshot below the peer's current height would silently discard
    committed blocks. Returns the number of blocks the peer skipped
    replaying (snapshot height minus the height it was at). The private
    side databases are reset; they must be refilled from a same-org peer
    (see :meth:`repro.storage.persistence.DurabilityManager._adopt_private`).
    """
    from repro.fabric.privatedata import PrivateStateStore

    if snapshot.height < peer.ledger.height:
        raise LedgerError(
            f"snapshot at height {snapshot.height} is behind peer "
            f"{peer.name!r} at {peer.ledger.height} — refusing to rewind"
        )
    skipped = snapshot.height - peer.ledger.height
    peer.world = WorldState()
    peer.ledger = BlockStore()
    peer.private = PrivateStateStore(org=peer.org, registry=peer.collections)
    bootstrap_peer(peer, snapshot)  # digest-verified adoption
    return skipped


def states_agree(a: Peer, b: Peer) -> bool:
    """Divergence audit: do two peers hold identical committed state?"""
    return state_digest(a.world) == state_digest(b.world)
