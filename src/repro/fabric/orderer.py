"""Ordering services: turn endorsed transactions into a block stream.

Two implementations behind one interface:

* :class:`SoloOrderer` — a single sequencer with batch cutting by count or
  explicit flush. Fabric's dev-mode orderer; the "without consensus cost"
  baseline in ablations.
* :class:`BftOrderer` — runs every transaction through a PBFT validator
  cluster (:class:`repro.consensus.BftCluster`) before it is ordered, the
  configuration the paper describes: validators independently re-verify the
  transaction (endorsement signatures + policy) and vote; a transaction
  needs a 2/3 quorum of valid votes, and rejected transactions are still
  ordered into blocks flagged ``REJECTED_BY_CONSENSUS`` so the audit trail
  shows what was refused and why.

Orderers do not execute chaincode and never touch the world state — they
sequence opaque envelopes, exactly as in Fabric.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol

from repro.consensus.bft import Behaviour, BftCluster
from repro.consensus.messages import ClientRequest
from repro.errors import OrderingError
from repro.fabric.ledger import Block, GENESIS_PREVIOUS_HASH
from repro.fabric.peer import endorsement_payload
from repro.fabric.tx import Transaction
from repro.net import SimNetwork
from repro.obs.tracer import span as obs_span
from repro.util.clock import Clock, WallClock

# A delivery callback receives the cut block plus the tx ids the consensus
# rejected (empty for solo ordering).
DeliverFn = Callable[[Block, frozenset[str]], None]


class Orderer(Protocol):
    def submit(self, tx: Transaction) -> None: ...
    def flush(self) -> None: ...
    def register_delivery(self, deliver: DeliverFn) -> None: ...


class _BatchCutter:
    """Shared batching + hash-chain bookkeeping for both orderers."""

    def __init__(self, max_batch_size: int, clock: Clock) -> None:
        if max_batch_size < 1:
            raise OrderingError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.clock = clock
        self._pending: list[Transaction] = []
        self._pending_rejected: set[str] = set()
        self._next_number = 0
        self._prev_hash = GENESIS_PREVIOUS_HASH
        self._delivery: list[DeliverFn] = []
        self.blocks_cut = 0
        self.txs_ordered = 0

    def register_delivery(self, deliver: DeliverFn) -> None:
        self._delivery.append(deliver)

    def enqueue(self, tx: Transaction, rejected: bool) -> None:
        self._pending.append(tx)
        if rejected:
            self._pending_rejected.add(tx.tx_id)
        if len(self._pending) >= self.max_batch_size:
            self.cut()

    def cut(self) -> None:
        if not self._pending:
            return
        block = Block.build(
            number=self._next_number,
            previous_hash=self._prev_hash,
            transactions=tuple(self._pending),
            timestamp=self.clock.now(),
        )
        rejected = frozenset(self._pending_rejected)
        self._pending = []
        self._pending_rejected = set()
        self._next_number += 1
        self._prev_hash = block.header.hash()
        self.blocks_cut += 1
        self.txs_ordered += len(block.transactions)
        for deliver in self._delivery:
            deliver(block, rejected)


class SoloOrderer:
    """Single-node sequencer (no fault tolerance, no validation)."""

    def __init__(self, max_batch_size: int = 1, clock: Clock | None = None) -> None:
        self._cutter = _BatchCutter(max_batch_size, clock or WallClock())

    def submit(self, tx: Transaction) -> None:
        with obs_span("fabric.order") as sp:
            sp.set_attr("orderer", "solo")
            sp.set_attr("tx_id", tx.tx_id)
            self._cutter.enqueue(tx, rejected=False)

    def flush(self) -> None:
        self._cutter.cut()

    def register_delivery(self, deliver: DeliverFn) -> None:
        self._cutter.register_delivery(deliver)

    @property
    def blocks_cut(self) -> int:
        return self._cutter.blocks_cut


def default_tx_validator(tx: Transaction) -> bool:
    """What each BFT validator independently checks before voting *valid*:
    every endorsement signature verifies over the transaction's rwset and
    response — the "assesses the digital signatures attached to the data"
    check from the paper's §III."""
    if not tx.endorsements:
        return False
    payload = endorsement_payload(tx)
    for endorsement in tx.endorsements:
        if not endorsement.endorser.public_key.is_valid(payload, endorsement.signature):
            return False
    return True


class BftOrderer:
    """Ordering via a PBFT validator cluster.

    Each submitted transaction becomes one BFT consensus instance: the
    digest the replicas agree on is the hash of the transaction envelope,
    and each replica's vote is ``validator(tx)``. Decisions are collected
    from replica 0's log (all honest replicas decide identically — that is
    the BFT guarantee, separately tested in the consensus suite).
    """

    def __init__(
        self,
        n_validators: int = 4,
        max_batch_size: int = 1,
        clock: Clock | None = None,
        validator: Callable[[Transaction], bool] | None = None,
        behaviours: dict[str, Behaviour] | None = None,
        network: SimNetwork | None = None,
    ) -> None:
        self._cutter = _BatchCutter(max_batch_size, clock or WallClock())
        self._txs: dict[str, Transaction] = {}
        self._decided: set[str] = set()
        # tx_id -> the consensus Decision (validator votes, acceptance);
        # the trust engine reads these to score sources and validators.
        self.decisions: dict[str, object] = {}
        tx_validator = validator or default_tx_validator

        def replica_validator(replica_name: str, request: ClientRequest) -> bool:
            tx = self._txs[request.payload["tx_id"]]
            return tx_validator(tx)

        self.cluster = BftCluster(
            n_replicas=n_validators,
            network=network or SimNetwork(),
            validator=replica_validator,
            behaviours=behaviours,
            on_decision=self._on_decision,
        )

    # -- consensus plumbing ---------------------------------------------------

    def _on_decision(self, replica: str, decision) -> None:
        request_id = decision.request.request_id
        if request_id in self._decided:
            return  # one enqueue per transaction, not per replica
        self._decided.add(request_id)
        tx = self._txs[decision.request.payload["tx_id"]]
        self.decisions[tx.tx_id] = decision
        self._cutter.enqueue(tx, rejected=not decision.accepted)

    # -- orderer interface --------------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        if tx.tx_id in self._txs:
            raise OrderingError(f"transaction {tx.tx_id!r} already submitted")
        with obs_span("fabric.order") as sp:
            sp.set_attr("orderer", "bft")
            sp.set_attr("tx_id", tx.tx_id)
            self._txs[tx.tx_id] = tx
            envelope_hash = hashlib.sha256(tx.envelope_bytes()).hexdigest()
            self.cluster.submit(
                {"tx_id": tx.tx_id, "envelope_hash": envelope_hash},
                request_id=tx.tx_id,
            )
            # Drive the validator network to a decision (synchronous ordering).
            self.cluster.run()

    def flush(self) -> None:
        self.cluster.run()
        self._cutter.cut()

    def register_delivery(self, deliver: DeliverFn) -> None:
        self._cutter.register_delivery(deliver)

    @property
    def blocks_cut(self) -> int:
        return self._cutter.blocks_cut

    @property
    def consensus_messages(self) -> int:
        return self.cluster.network.stats.delivered
