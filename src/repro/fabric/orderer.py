"""Ordering services: turn endorsed transactions into a block stream.

Two implementations behind one interface:

* :class:`SoloOrderer` — a single sequencer with batch cutting by count or
  explicit flush. Fabric's dev-mode orderer; the "without consensus cost"
  baseline in ablations.
* :class:`BftOrderer` — runs transactions through a PBFT validator
  cluster (:class:`repro.consensus.BftCluster`) before they are ordered, the
  configuration the paper describes: validators independently re-verify each
  transaction (endorsement signatures + policy) and vote; a transaction
  needs a 2/3 quorum of valid votes, and rejected transactions are still
  ordered into blocks flagged ``REJECTED_BY_CONSENSUS`` so the audit trail
  shows what was refused and why.

  Consensus is *batched*: ``submit`` only queues the transaction, and one
  PBFT instance runs per cut block — the batch digest is what replicas
  agree on, with per-transaction validity votes carried inside the
  prepare/commit messages. ``submit`` therefore no longer implies a
  decision; ``flush`` drives the cluster until every queued batch decides.
  Consensus messages per committed transaction drop by roughly the batch
  factor, which is what makes ``max_batch_size`` a real throughput lever.

Orderers do not execute chaincode and never touch the world state — they
sequence opaque envelopes, exactly as in Fabric.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.consensus.bft import Behaviour, BftCluster, Decision
from repro.consensus.messages import ClientRequest
from repro.errors import OrderingError
from repro.fabric.ledger import Block, GENESIS_PREVIOUS_HASH
from repro.fabric.peer import endorsement_payload
from repro.fabric.tx import Transaction
from repro.net import SimNetwork
from repro.obs.prof import get_profiler, profiled
from repro.obs.tracer import span as obs_span
from repro.util.clock import Clock, WallClock

# A delivery callback receives the cut block plus the tx ids the consensus
# rejected (empty for solo ordering).
DeliverFn = Callable[[Block, frozenset[str]], None]


class Orderer(Protocol):
    def submit(self, tx: Transaction) -> None: ...
    def flush(self) -> None: ...
    def register_delivery(self, deliver: DeliverFn) -> None: ...


class _BatchCutter:
    """Shared batching + hash-chain bookkeeping for both orderers."""

    def __init__(self, max_batch_size: int, clock: Clock) -> None:
        if max_batch_size < 1:
            raise OrderingError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.clock = clock
        self._pending: list[Transaction] = []
        self._pending_rejected: set[str] = set()
        self._next_number = 0
        self._prev_hash = GENESIS_PREVIOUS_HASH
        self._delivery: list[DeliverFn] = []
        self.blocks_cut = 0
        self.txs_ordered = 0

    def register_delivery(self, deliver: DeliverFn) -> None:
        self._delivery.append(deliver)

    def enqueue(self, tx: Transaction, rejected: bool) -> None:
        self._pending.append(tx)
        if rejected:
            self._pending_rejected.add(tx.tx_id)
        if len(self._pending) >= self.max_batch_size:
            self.cut()

    def cut(self) -> None:
        if not self._pending:
            return
        block = Block.build(
            number=self._next_number,
            previous_hash=self._prev_hash,
            transactions=tuple(self._pending),
            timestamp=self.clock.now(),
        )
        rejected = frozenset(self._pending_rejected)
        self._pending = []
        self._pending_rejected = set()
        self._next_number += 1
        self._prev_hash = block.header.hash()
        self.blocks_cut += 1
        self.txs_ordered += len(block.transactions)
        for deliver in self._delivery:
            deliver(block, rejected)


class SoloOrderer:
    """Single-node sequencer (no fault tolerance, no validation)."""

    def __init__(self, max_batch_size: int = 1, clock: Clock | None = None) -> None:
        self._cutter = _BatchCutter(max_batch_size, clock or WallClock())
        # Durability hook (repro.storage.persistence.DurabilityManager).
        self.journal = None

    def submit(self, tx: Transaction) -> None:
        with obs_span("fabric.order") as sp:
            sp.set_attr("orderer", "solo")
            sp.set_attr("tx_id", tx.tx_id)
            if self.journal is not None:
                self.journal.record_submit(tx)
            self._cutter.enqueue(tx, rejected=False)

    def flush(self) -> None:
        self._cutter.cut()

    def register_delivery(self, deliver: DeliverFn) -> None:
        self._cutter.register_delivery(deliver)

    @property
    def blocks_cut(self) -> int:
        return self._cutter.blocks_cut

    @property
    def txs_ordered(self) -> int:
        return self._cutter.txs_ordered


def default_tx_validator(tx: Transaction) -> bool:
    """What each BFT validator independently checks before voting *valid*:
    every endorsement signature verifies over the transaction's rwset and
    response — the "assesses the digital signatures attached to the data"
    check from the paper's §III."""
    if not tx.endorsements:
        return False
    payload = endorsement_payload(tx)
    for endorsement in tx.endorsements:
        if not endorsement.endorser.public_key.is_valid(payload, endorsement.signature):
            return False
    return True


@dataclass(frozen=True)
class TxDecision:
    """Per-transaction view of one batched consensus :class:`Decision`.

    The trust engine reads ``votes``/``accepted`` per transaction; this
    projects item ``index`` of the batch decision. Vote dictionaries are
    *live* views: straggler commits keep enriching the underlying batch
    decision's vote record, and those late votes show up here too.
    """

    tx_id: str
    index: int
    batch: Decision

    @property
    def seq(self) -> int:
        return self.batch.seq

    @property
    def view(self) -> int:
        return self.batch.view

    @property
    def accepted(self) -> bool:
        items = self.batch.item_accepted
        return items[self.index] if items else self.batch.accepted

    @property
    def votes(self) -> dict[str, bool]:
        if self.batch.item_votes:
            return {
                replica: verdicts[self.index]
                for replica, verdicts in self.batch.item_votes.items()
                if self.index < len(verdicts)
            }
        return dict(self.batch.votes)

    @property
    def valid_votes(self) -> int:
        return sum(1 for v in self.votes.values() if v)

    @property
    def invalid_votes(self) -> int:
        votes = self.votes
        return len(votes) - sum(1 for v in votes.values() if v)


class BftOrderer:
    """Ordering via a PBFT validator cluster, amortized over blocks.

    ``submit`` queues the transaction; once ``max_batch_size`` transactions
    accumulate (or ``flush`` is called) the whole batch becomes *one* BFT
    consensus instance. The digest replicas agree on covers every envelope
    hash in the batch, and each replica's prepare/commit vote carries one
    ``validator(tx)`` verdict per transaction, so per-transaction
    acceptance (and ``REJECTED_BY_CONSENSUS`` flagging) is decided exactly
    as in the one-instance-per-transaction configuration. Decisions are
    collected from the first replica to decide (all honest replicas decide
    identically — that is the BFT guarantee, separately tested in the
    consensus suite).

    ``submit`` is asynchronous: it never drives the validator network.
    ``flush`` runs the network until every in-flight batch decides, then
    cuts the final (possibly partial) block.
    """

    def __init__(
        self,
        n_validators: int = 4,
        max_batch_size: int = 1,
        clock: Clock | None = None,
        validator: Callable[[Transaction], bool] | None = None,
        behaviours: dict[str, Behaviour] | None = None,
        network: SimNetwork | None = None,
        checkpoint_interval: int = 0,
    ) -> None:
        self._cutter = _BatchCutter(max_batch_size, clock or WallClock())
        # Durability hook (repro.storage.persistence.DurabilityManager).
        self.journal = None
        self._txs: dict[str, Transaction] = {}
        self._queue: list[str] = []  # tx ids awaiting a consensus instance
        self._decided: set[str] = set()  # batch request ids already enqueued
        self._batch_seq = 0
        self.batches_ordered = 0
        # tx_id -> per-transaction consensus outcome (validator votes,
        # acceptance); the trust engine reads these to score sources and
        # validators.
        self.decisions: dict[str, TxDecision] = {}
        # Profiler enqueue clocks: tx_id -> submit time, drained by
        # _order_batch as orderer.submit queue waits.
        self._enqueued_s: dict[str, float] = {}
        tx_validator = validator or default_tx_validator

        def replica_validator(
            replica_name: str, request: ClientRequest
        ) -> tuple[bool, ...]:
            # One verdict per transaction in the batch, in batch order.
            return tuple(
                tx_validator(self._txs[tx_id]) for tx_id in request.payload["tx_ids"]
            )

        self.cluster = BftCluster(
            n_replicas=n_validators,
            network=network or SimNetwork(),
            validator=replica_validator,
            behaviours=behaviours,
            on_decision=self._on_decision,
            checkpoint_interval=checkpoint_interval,
        )

    # -- consensus plumbing ---------------------------------------------------

    def _on_decision(self, replica: str, decision: Decision) -> None:
        request_id = decision.request.request_id
        if request_id in self._decided:
            return  # one enqueue per batch, not per replica
        self._decided.add(request_id)
        tx_ids = decision.request.payload["tx_ids"]
        for index, tx_id in enumerate(tx_ids):
            tx_decision = TxDecision(tx_id=tx_id, index=index, batch=decision)
            self.decisions[tx_id] = tx_decision
            self._cutter.enqueue(self._txs[tx_id], rejected=not tx_decision.accepted)

    def _order_batch(self) -> None:
        """Start one consensus instance over everything currently queued."""
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        with obs_span("fabric.order") as sp:
            sp.set_attr("orderer", "bft")
            sp.set_attr("batch_size", len(batch))
            profiler = get_profiler()
            if profiler is not None and self._enqueued_s:
                now = profiler.clock()
                for tx_id in batch:
                    enqueued = self._enqueued_s.pop(tx_id, None)
                    if enqueued is not None:
                        profiler.record_queue_wait("orderer.submit", now - enqueued)
            with profiled("consensus.order"):
                envelope_hashes = [
                    hashlib.sha256(self._txs[tx_id].envelope_bytes()).hexdigest()
                    for tx_id in batch
                ]
                batch_digest = hashlib.sha256(
                    "".join(envelope_hashes).encode()
                ).hexdigest()
            request_id = f"batch-{self._batch_seq}"
            self._batch_seq += 1
            sp.set_attr("request_id", request_id)
            self.batches_ordered += 1
            if self.journal is not None:
                self.journal.record_batch(
                    request_id, [self._txs[tx_id] for tx_id in batch]
                )
            self.cluster.submit(
                {
                    "tx_ids": list(batch),
                    "envelope_hashes": envelope_hashes,
                    "batch_digest": batch_digest,
                },
                request_id=request_id,
                n_items=len(batch),
            )

    # -- orderer interface --------------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        """Queue a transaction for batched ordering (no decision implied)."""
        if tx.tx_id in self._txs:
            raise OrderingError(f"transaction {tx.tx_id!r} already submitted")
        self._txs[tx.tx_id] = tx
        self._queue.append(tx.tx_id)
        profiler = get_profiler()
        if profiler is not None:
            self._enqueued_s[tx.tx_id] = profiler.clock()
        if self.journal is not None:
            self.journal.record_submit(tx)
        if len(self._queue) >= self._cutter.max_batch_size:
            self._order_batch()

    def drop_queued(self) -> list[str]:
        """Orderer crash-amnesia: transactions submitted but not yet handed
        to a consensus instance are simply gone. Returns the dropped tx ids
        (oldest first) so the caller can count and report them — clients
        must resubmit through the resilience retry path."""
        dropped, self._queue = self._queue, []
        for tx_id in dropped:
            del self._txs[tx_id]
            self._enqueued_s.pop(tx_id, None)
        return dropped

    def flush(self) -> None:
        self._order_batch()
        # Drive the validator network until every in-flight batch decides.
        self.cluster.run()
        self._cutter.cut()

    def register_delivery(self, deliver: DeliverFn) -> None:
        self._cutter.register_delivery(deliver)

    @property
    def blocks_cut(self) -> int:
        return self._cutter.blocks_cut

    @property
    def txs_ordered(self) -> int:
        return self._cutter.txs_ordered

    @property
    def consensus_messages(self) -> int:
        return self.cluster.network.stats.delivered
