"""Peers: the nodes that endorse proposals and commit blocks.

A peer owns a full copy of the ledger (block store + world state), the
installed chaincodes, and an endorsing identity. Two roles, as in Fabric:

* **Endorsement** (:meth:`Peer.endorse`): simulate the proposal against the
  current state, capture the read/write set, sign the result. Nothing is
  committed.
* **Commit** (:meth:`Peer.commit_block`): validate every transaction in an
  ordered block — creator identity and signature, endorsement signatures and
  policy, duplicate tx-id, then MVCC read-version checks (including
  conflicts against earlier transactions *in the same block*) — and apply
  the writes of valid transactions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import (
    ChaincodeError,
    ChaincodeNotFoundError,
    FabricError,
    IdentityError,
    SignatureError,
)
from repro.fabric.chaincode import ChaincodeDefinition, ChaincodeRegistry, ChaincodeStub
from repro.fabric.identity import Identity
from repro.fabric.privatedata import (
    CollectionRegistry,
    PrivateStateStore,
    private_hash_key,
)
from repro.fabric.ledger import Block, BlockStore
from repro.fabric.msp import MSPRegistry
from repro.fabric.tx import (
    Endorsement,
    ProposalResponse,
    Transaction,
    TxProposal,
    ValidationCode,
)
from repro.fabric.worldstate import Version, WorldState
from repro.obs.prof import profiled
from repro.obs.tracer import span as obs_span


def endorsement_payload(tx: Transaction) -> bytes:
    """The bytes every endorser of ``tx`` must have signed: the tx id, the
    read/write set, and the chaincode response, exactly as produced by
    :meth:`ProposalResponse.response_payload` for a successful simulation."""
    from repro.util.serialization import canonical_json

    return canonical_json(
        {
            "tx_id": tx.tx_id,
            "rwset": tx.rwset.to_dict(),
            "response": tx.response,
            "success": True,
        }
    )


@dataclass
class PeerStats:
    endorsements: int = 0
    endorsement_failures: int = 0
    blocks_committed: int = 0
    txs_valid: int = 0
    txs_invalid: int = 0


class Peer:
    """One endorsing/committing peer."""

    def __init__(
        self,
        name: str,
        identity: Identity,
        msp_registry: MSPRegistry,
        collections: CollectionRegistry | None = None,
    ) -> None:
        self.name = name
        self.identity = identity
        self.msp_registry = msp_registry
        self.world = WorldState()
        self.ledger = BlockStore()
        self.chaincodes = ChaincodeRegistry()
        self.collections = collections or CollectionRegistry()
        self.private = PrivateStateStore(org=identity.org, registry=self.collections)
        self.online = True
        self.stats = PeerStats()
        # Runtime sanitizer hook (repro.analysis.runtime.Sanitizer); None in
        # normal operation — set by install_sanitizers for checked runs.
        self.sanitizer = None
        # Durability hook (repro.storage.persistence.DurabilityManager);
        # None when the run is purely in-memory.
        self.journal = None
        # Secondary index (repro.index.PeerIndex); attached by an
        # IndexManager, advanced after each block's writes are applied.
        self.index = None

    @property
    def org(self) -> str:
        return self.identity.org

    def install_chaincode(self, definition: ChaincodeDefinition) -> None:
        self.chaincodes.install(definition)

    # ------------------------------------------------------------------
    # Endorsement
    # ------------------------------------------------------------------

    def _make_stub(self, proposal: TxProposal, chaincode_name: str) -> ChaincodeStub:
        def invoker(cc_name: str, fn: str, args: list[str], stub: ChaincodeStub) -> str:
            definition = self.chaincodes.get(cc_name)
            # The nested call shares the caller's stub so its reads/writes
            # land in the same transaction rwset.
            return definition.chaincode.dispatch(stub, fn, args)

        return ChaincodeStub(
            world=self.world,
            tx_id=proposal.tx_id,
            creator=proposal.creator,
            timestamp=proposal.timestamp,
            chaincode_name=chaincode_name,
            invoker=invoker,
            private=self.private,
            collections=self.collections,
            transient=proposal.transient_map(),
        )

    def endorse(self, proposal: TxProposal) -> ProposalResponse:
        """Simulate and sign. Raises :class:`FabricError` subclasses for
        requests that should never have reached this peer (bad identity,
        unknown chaincode); chaincode-level failures return an unendorsed
        failure response instead, as Fabric does."""
        with obs_span("fabric.peer.endorse") as sp:
            sp.set_attr("peer", self.name)
            sp.set_attr("chaincode", proposal.chaincode)
            with profiled("endorse.process"):
                response = self._endorse_inner(proposal)
            if self.sanitizer is not None:
                self.sanitizer.check_endorsement(self, proposal, response)
            return response

    def _endorse_inner(self, proposal: TxProposal) -> ProposalResponse:
        if not self.online:
            raise FabricError(f"peer {self.name!r} is offline")
        self.msp_registry.verify_signature(
            proposal.creator, proposal.signing_payload(), proposal.signature
        )
        definition = self.chaincodes.get(proposal.chaincode)
        stub = self._make_stub(proposal, proposal.chaincode)
        try:
            with profiled("endorse.simulate"):
                response = definition.chaincode.dispatch(stub, proposal.fn, list(proposal.args))
            success, message = True, ""
        except ChaincodeError as exc:
            self.stats.endorsement_failures += 1
            response, success, message = json.dumps(None), False, str(exc)
        rwset = stub.rwset()
        unsigned = ProposalResponse(
            tx_id=proposal.tx_id,
            rwset=rwset,
            response=response,
            success=success,
            message=message,
            endorsement=Endorsement(endorser=self.identity.info(), signature=b""),
        )
        signature = self.identity.sign(unsigned.response_payload())
        self.stats.endorsements += 1
        return ProposalResponse(
            tx_id=unsigned.tx_id,
            rwset=unsigned.rwset,
            response=unsigned.response,
            success=unsigned.success,
            message=unsigned.message,
            endorsement=Endorsement(endorser=self.identity.info(), signature=signature),
            events=stub.events(),
            private_data=stub.private_writes(),
        )

    def resimulate(self, proposal: TxProposal) -> tuple:
        """Re-run a proposal's simulation on a fresh stub — no signing, no
        stats. Simulation buffers all writes in the stub, so this is
        side-effect-free; the divergence sanitizer diffs the outcome
        against the original endorsement to expose nondeterminism a
        single-endorser policy would never surface."""
        definition = self.chaincodes.get(proposal.chaincode)
        stub = self._make_stub(proposal, proposal.chaincode)
        try:
            response = definition.chaincode.dispatch(
                stub, proposal.fn, list(proposal.args)
            )
            success = True
        except ChaincodeError:
            response, success = json.dumps(None), False
        return stub.rwset(), response, success

    # ------------------------------------------------------------------
    # Validation + commit
    # ------------------------------------------------------------------

    def _validate_tx(
        self,
        tx: Transaction,
        block_number: int,
        written_this_block: dict[str, Version],
        consensus_rejected: frozenset[str],
    ) -> ValidationCode:
        with profiled("fabric.validate"):
            return self._validate_tx_inner(
                tx, block_number, written_this_block, consensus_rejected
            )

    def _validate_tx_inner(
        self,
        tx: Transaction,
        block_number: int,
        written_this_block: dict[str, Version],
        consensus_rejected: frozenset[str],
    ) -> ValidationCode:
        if tx.tx_id in consensus_rejected:
            return ValidationCode.REJECTED_BY_CONSENSUS
        if self.ledger.has_tx(tx.tx_id):
            return ValidationCode.DUPLICATE_TXID
        # Creator identity and proposal signature.
        try:
            self.msp_registry.verify_signature(
                tx.proposal.creator, tx.proposal.signing_payload(), tx.proposal.signature
            )
        except IdentityError:
            return ValidationCode.BAD_IDENTITY
        except SignatureError:
            return ValidationCode.BAD_SIGNATURE
        # Endorsement signatures: each must sign this exact rwset+response.
        payload = endorsement_payload(tx)
        valid_orgs: set[str] = set()
        for endorsement in tx.endorsements:
            try:
                self.msp_registry.validate_identity(endorsement.endorser)
                endorsement.endorser.public_key.verify(payload, endorsement.signature)
            except (IdentityError, SignatureError):
                continue  # an invalid endorsement simply doesn't count
            valid_orgs.add(endorsement.endorser.org)
        try:
            definition = self.chaincodes.get(tx.proposal.chaincode)
        except ChaincodeNotFoundError:
            return ValidationCode.CHAINCODE_ERROR
        if not definition.policy.satisfied_by(valid_orgs):
            return ValidationCode.ENDORSEMENT_POLICY_FAILURE
        # MVCC: every read version must still be current, considering both
        # the committed state and writes earlier in this very block.
        for read in tx.rwset.reads:
            current = written_this_block.get(read.key, self.world.get_version(read.key))
            if current != read.version:
                return ValidationCode.MVCC_READ_CONFLICT
        return ValidationCode.VALID

    def commit_block(self, block: Block, consensus_rejected: frozenset[str] = frozenset()) -> Block:
        """Validate and commit an ordered block; returns the block annotated
        with validation codes (identical on every honest peer)."""
        with obs_span("fabric.peer.commit") as sp:
            sp.set_attr("peer", self.name)
            sp.set_attr("block", block.number)
            with profiled("fabric.commit"):
                annotated = self._commit_block_inner(block, consensus_rejected)
            if self.sanitizer is not None:
                self.sanitizer.check_commit(self, annotated)
            if self.journal is not None:
                self.journal.record_commit(self, annotated, consensus_rejected)
            return annotated

    def _commit_block_inner(
        self, block: Block, consensus_rejected: frozenset[str] = frozenset()
    ) -> Block:
        if not self.online:
            raise FabricError(f"peer {self.name!r} is offline")
        codes: list[ValidationCode] = []
        written_this_block: dict[str, Version] = {}
        staged: list[tuple[int, Transaction]] = []
        for tx_num, tx in enumerate(block.transactions):
            code = self._validate_tx(tx, block.number, written_this_block, consensus_rejected)
            codes.append(code)
            if code is ValidationCode.VALID:
                staged.append((tx_num, tx))
                version = Version(block=block.number, tx=tx_num)
                for write in tx.rwset.writes:
                    written_this_block[write.key] = version
        annotated = block.with_validation(codes)
        self.ledger.append(annotated)
        with profiled("state.apply"):
            for tx_num, tx in staged:
                version = Version(block=block.number, tx=tx_num)
                for write in tx.rwset.writes:
                    self.world.apply_write(
                        key=write.key,
                        value=None if write.is_delete else write.value,
                        version=version,
                        tx_id=tx.tx_id,
                        timestamp=block.header.timestamp,
                    )
                self._apply_private(tx, version, block.header.timestamp)
        # Index after ledger append + state writes: a block the ledger
        # rejects must never advance the index.
        if self.index is not None:
            with profiled("index.apply"):
                self.index.apply_block(annotated)
        self.stats.blocks_committed += 1
        self.stats.txs_valid += len(staged)
        self.stats.txs_invalid += len(block.transactions) - len(staged)
        return annotated

    def _apply_private(self, tx: Transaction, version: Version, timestamp: float) -> None:
        """Store private payloads this peer's org is entitled to, after
        verifying each against its on-chain hash."""
        for pw in tx.private_data:
            if not self.private.has_collection(pw.collection):
                continue  # not a member: the payload is not for us
            on_chain = self.world.get(private_hash_key(pw.collection, pw.key))
            if on_chain is None or on_chain.decode() != pw.value_hash():
                # Payload doesn't match what was endorsed — drop it rather
                # than poison the side DB (Fabric purges such payloads too).
                continue
            self.private.store_for(pw.collection).apply_write(
                key=pw.key,
                value=pw.value,
                version=version,
                tx_id=tx.tx_id,
                timestamp=timestamp,
            )

    # ------------------------------------------------------------------
    # Queries (read-only, no ordering — the paper's gas-free read path)
    # ------------------------------------------------------------------

    def query(self, proposal: TxProposal) -> str:
        """Execute a read-only invocation; writes are discarded."""
        if not self.online:
            raise FabricError(f"peer {self.name!r} is offline")
        self.msp_registry.verify_signature(
            proposal.creator, proposal.signing_payload(), proposal.signature
        )
        definition = self.chaincodes.get(proposal.chaincode)
        stub = self._make_stub(proposal, proposal.chaincode)
        with profiled("endorse.simulate"):
            return definition.chaincode.dispatch(stub, proposal.fn, list(proposal.args))
