"""Monitoring: metrics registry and channel explorer.

The paper's testbed watches the network through Grafana and Hyperledger
Explorer; this module is that observability surface, programmatic:

* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket histograms
  with a Prometheus-style text exposition, so benches and operators read
  one format.
* :class:`ChannelMonitor` — subscribes to a channel's event hub and keeps
  the ledger metrics live (blocks, transactions by validation code, block
  fill, chain height).
* :func:`channel_summary` — the Explorer-style overview: height, tx
  totals, per-peer state, installed chaincodes, orgs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import FabricError
from repro.fabric.channel import Channel
from repro.fabric.events import BlockEvent


@dataclass
class Counter:
    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise FabricError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    name: str
    buckets: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise FabricError("histogram buckets must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        self.counts[idx] += 1
        self.total += value
        self.n += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0


class MetricsRegistry:
    """Named metrics with Prometheus-style text exposition."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name=name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name=name))

    def histogram(self, name: str, buckets: tuple[float, ...]) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name=name, buckets=buckets)
        return self._histograms[name]

    def snapshot(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"n": h.n, "mean": h.mean, "buckets": dict(zip(h.buckets, h.counts))}
                for n, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Prometheus text format (counters/gauges/histograms)."""
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            lines.append(f"# TYPE {self.prefix}_{name} counter")
            lines.append(f"{self.prefix}_{name} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"# TYPE {self.prefix}_{name} gauge")
            lines.append(f"{self.prefix}_{name} {gauge.value}")
        for name, hist in sorted(self._histograms.items()):
            lines.append(f"# TYPE {self.prefix}_{name} histogram")
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                lines.append(f'{self.prefix}_{name}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += hist.counts[-1]
            lines.append(f'{self.prefix}_{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{self.prefix}_{name}_sum {hist.total}")
            lines.append(f"{self.prefix}_{name}_count {hist.n}")
        return "\n".join(lines) + "\n"


class ChannelMonitor:
    """Live ledger metrics fed by the channel's event hub."""

    BLOCK_FILL_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

    def __init__(self, channel: Channel, registry: MetricsRegistry | None = None) -> None:
        self.channel = channel
        self.metrics = registry or MetricsRegistry()
        channel.events.subscribe_blocks(self._on_block)

    def _on_block(self, event: BlockEvent) -> None:
        block = event.block
        self.metrics.counter("blocks_total").inc()
        self.metrics.gauge("chain_height").set(block.number + 1)
        self.metrics.histogram("block_tx_count", self.BLOCK_FILL_BUCKETS).observe(
            len(block.transactions)
        )
        codes = block.validation_codes or ()
        for code in codes:
            self.metrics.counter(f"txs_total_{code.value.lower()}").inc()

    def render(self) -> str:
        return self.metrics.render()


def channel_summary(channel: Channel) -> dict:
    """Hyperledger-Explorer-style overview of one channel."""
    peers = {}
    tx_by_code: dict[str, int] = {}
    reference = None
    for name, peer in channel.peers.items():
        peers[name] = {
            "org": peer.org,
            "height": peer.ledger.height,
            "state_keys": len(peer.world),
            "online": peer.online,
            "txs_valid": peer.stats.txs_valid,
            "txs_invalid": peer.stats.txs_invalid,
        }
        if reference is None and peer.online:
            reference = peer
    if reference is not None:
        for block in reference.ledger.blocks():
            for code in block.validation_codes or ():
                tx_by_code[code.value] = tx_by_code.get(code.value, 0) + 1
    return {
        "channel": channel.name,
        "height": channel.height(),
        "orgs": sorted({p.org for p in channel.peers.values()}),
        "chaincodes": sorted(
            d.chaincode.name for d in channel._definitions
        ),
        "collections": channel.collections.names(),
        "tx_by_code": dict(sorted(tx_by_code.items())),
        "peers": peers,
    }
