"""Monitoring: channel-level metrics and the Explorer-style summary.

The metrics primitives (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`, :class:`MetricsRegistry`) now live in
:mod:`repro.obs.metrics` — the process-wide observability layer — and are
re-exported here for backward compatibility. What remains fabric-specific:

* :class:`ChannelMonitor` — subscribes to a channel's event hub and keeps
  the ledger metrics live (blocks, transactions by validation code, block
  fill, chain height).
* :func:`channel_summary` — the Explorer-style overview: height, tx
  totals, per-peer state, installed chaincodes, orgs.
"""

from __future__ import annotations

from repro.fabric.channel import Channel
from repro.fabric.events import BlockEvent
from repro.obs.metrics import (  # noqa: F401  (re-exported for compatibility)
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class ChannelMonitor:
    """Live ledger metrics fed by the channel's event hub."""

    BLOCK_FILL_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

    def __init__(self, channel: Channel, registry: MetricsRegistry | None = None) -> None:
        self.channel = channel
        self.metrics = registry or MetricsRegistry()
        channel.events.subscribe_blocks(self._on_block)

    def _on_block(self, event: BlockEvent) -> None:
        block = event.block
        self.metrics.counter("blocks_total").inc()
        self.metrics.gauge("chain_height").set(block.number + 1)
        self.metrics.histogram("block_tx_count", self.BLOCK_FILL_BUCKETS).observe(
            len(block.transactions)
        )
        # One labeled family (txs_total{code=...}), not one metric name per
        # validation code — keeps the family bounded and Grafana-friendly.
        for code in block.validation_codes or ():
            self.metrics.counter("txs_total", labels={"code": code.value.lower()}).inc()

    def render(self) -> str:
        return self.metrics.render()


def channel_summary(channel: Channel) -> dict:
    """Hyperledger-Explorer-style overview of one channel.

    Thin compatibility shim: the aggregation moved to
    :meth:`repro.obs.explorer.LedgerExplorer.summary`, which also serves
    the ``repro explorer`` CLI. Same dict shape as before.
    """
    from repro.obs.explorer import LedgerExplorer

    return LedgerExplorer(channel).summary()
