"""Membership Service Provider: the permissioning layer of the fabric.

Each organization runs an MSP that enrolls identities, answers "is this
public key really *alice@org1* with role *client*?", and maintains a
revocation list. The :class:`MSPRegistry` aggregates per-org MSPs for the
channel — the component that makes the blockchain *permissioned*: a
signature is only as good as the registered, unrevoked identity behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IdentityError, SignatureError
from repro.fabric.identity import Identity, IdentityInfo, Role


@dataclass
class MSP:
    """One organization's membership records."""

    org: str
    _members: dict[str, IdentityInfo] = field(default_factory=dict)
    _revoked: set[str] = field(default_factory=set)

    def enroll(self, identity: Identity | IdentityInfo) -> IdentityInfo:
        info = identity.info() if isinstance(identity, Identity) else identity
        if info.org != self.org:
            raise IdentityError(
                f"cannot enroll {info.name!r} of org {info.org!r} into MSP {self.org!r}"
            )
        if info.name in self._members:
            raise IdentityError(f"identity {info.name!r} already enrolled in {self.org!r}")
        self._members[info.name] = info
        return info

    def revoke(self, name: str) -> None:
        if name not in self._members:
            raise IdentityError(f"cannot revoke unknown identity {name!r}")
        self._revoked.add(name)

    def reinstate(self, name: str) -> None:
        self._revoked.discard(name)

    def is_valid(self, info: IdentityInfo) -> bool:
        """Enrolled, unrevoked, and the registered key matches."""
        registered = self._members.get(info.name)
        return (
            registered is not None
            and info.name not in self._revoked
            and registered.public_key_hex == info.public_key_hex
            and registered.role == info.role
        )

    def members(self, role: Role | None = None) -> list[IdentityInfo]:
        out = [m for m in self._members.values() if m.name not in self._revoked]
        if role is not None:
            out = [m for m in out if m.role == role]
        return out


class MSPRegistry:
    """All organizations on a channel."""

    def __init__(self) -> None:
        self._msps: dict[str, MSP] = {}

    def add_org(self, org: str) -> MSP:
        if org in self._msps:
            raise IdentityError(f"org {org!r} already registered")
        msp = MSP(org=org)
        self._msps[org] = msp
        return msp

    def msp(self, org: str) -> MSP:
        try:
            return self._msps[org]
        except KeyError:
            raise IdentityError(f"unknown org {org!r}") from None

    def orgs(self) -> list[str]:
        return sorted(self._msps)

    def enroll(self, identity: Identity) -> IdentityInfo:
        return self.msp(identity.org).enroll(identity)

    def validate_identity(self, info: IdentityInfo) -> None:
        """Raise unless ``info`` is a live member of a registered org."""
        if info.org not in self._msps:
            raise IdentityError(f"unknown org {info.org!r}")
        if not self._msps[info.org].is_valid(info):
            raise IdentityError(
                f"identity {info.name!r}@{info.org!r} is not enrolled, was revoked, "
                "or presented a mismatched key"
            )

    def verify_signature(self, info: IdentityInfo, message: bytes, signature: bytes) -> None:
        """Identity check plus cryptographic signature verification."""
        self.validate_identity(info)
        try:
            info.public_key.verify(message, signature)
        except SignatureError as exc:
            raise SignatureError(
                f"bad signature from {info.name!r}@{info.org!r}: {exc}"
            ) from exc
