"""Chaincode runtime: the smart-contract execution environment.

A chaincode is a Python class whose public methods take a
:class:`ChaincodeStub` plus string arguments — the same shape as Fabric's
``ctx.stub`` API the paper's snippets use (``getState``/``putState``/
``getTxID``/composite keys/history/range queries). The stub runs against a
*simulation view* of the world state: reads record the observed key version
into the read set, writes buffer into the write set (visible to subsequent
reads in the same simulation, never to the live state). The resulting
:class:`ReadWriteSet` is what endorsement signs and what MVCC validation
checks at commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ChaincodeError, ChaincodeNotFoundError, EncodingError
from repro.fabric.identity import IdentityInfo
from repro.fabric.privatedata import (
    CollectionRegistry,
    PrivateStateStore,
    private_hash_key,
    value_hash,
)
from repro.fabric.tx import ChaincodeEvent, PrivateWrite, ReadEntry, ReadWriteSet, WriteEntry
from repro.fabric.worldstate import (
    WorldState,
    composite_prefix_range,
    make_composite_key,
    split_composite_key,
)
from repro.util.serialization import canonical_json


class ChaincodeStub:
    """The API surface a chaincode sees during one invocation."""

    def __init__(
        self,
        world: WorldState,
        tx_id: str,
        creator: IdentityInfo,
        timestamp: float,
        chaincode_name: str,
        invoker: Callable[[str, str, list[str], "ChaincodeStub"], str] | None = None,
        private: PrivateStateStore | None = None,
        collections: CollectionRegistry | None = None,
        transient: dict[str, bytes] | None = None,
    ) -> None:
        self._world = world
        self._tx_id = tx_id
        self._creator = creator
        self._timestamp = timestamp
        self._chaincode_name = chaincode_name
        self._invoker = invoker
        self._private = private
        self._collections = collections
        self._transient = dict(transient or {})
        self._reads: dict[str, ReadEntry] = {}
        self._writes: dict[str, WriteEntry] = {}  # insertion-ordered
        self._private_writes: dict[tuple[str, str], PrivateWrite] = {}
        self._events: list[ChaincodeEvent] = []

    # -- transaction context ----------------------------------------------------

    def get_tx_id(self) -> str:
        return self._tx_id

    def get_creator(self) -> IdentityInfo:
        return self._creator

    def get_timestamp(self) -> float:
        """Proposal timestamp — chaincode must not read wall clocks, or the
        endorsers' rwsets would diverge."""
        return self._timestamp

    def get_transient(self, key: str) -> bytes | None:
        """Sensitive input passed off-ledger (Fabric's transient map); the
        standard way to feed values into ``put_private_data``."""
        return self._transient.get(key)

    # -- state access -----------------------------------------------------------

    def get_state(self, key: str) -> bytes | None:
        """Read a key: buffered writes win, else the live state (recorded
        in the read set for MVCC)."""
        if key in self._writes:
            entry = self._writes[key]
            return None if entry.is_delete else entry.value
        if key not in self._reads:
            self._reads[key] = ReadEntry(key=key, version=self._world.get_version(key))
        return self._world.get(key)

    def put_state(self, key: str, value: bytes) -> None:
        if not key:
            raise ChaincodeError("cannot put empty key")
        if not isinstance(value, (bytes, bytearray)):
            raise ChaincodeError("state values must be bytes")
        self._writes[key] = WriteEntry(key=key, value=bytes(value), is_delete=False)

    def del_state(self, key: str) -> None:
        self._writes[key] = WriteEntry(key=key, value=None, is_delete=True)

    def get_state_by_range(self, start: str = "", end: str = "") -> list[tuple[str, bytes]]:
        """Range scan merging the live state with buffered writes.

        Every returned key is recorded in the read set (phantom protection
        for the keys actually observed, matching Fabric's range semantics).
        """
        live = dict(self._world.range(start, end))
        for key, entry in self._writes.items():
            in_range = (not start or key >= start) and (not end or key < end)
            if not in_range:
                continue
            if entry.is_delete:
                live.pop(key, None)
            else:
                live[key] = entry.value  # type: ignore[assignment]
        out = sorted(live.items())
        for key, _ in out:
            if key not in self._writes and key not in self._reads:
                self._reads[key] = ReadEntry(key=key, version=self._world.get_version(key))
        return out

    def get_query_result(
        self, selector_json: str, start: str = "", end: str = "", limit: int | None = None
    ) -> list[tuple[str, dict]]:
        """CouchDB-style rich query over the (JSON-valued) state.

        Scans ``[start, end)`` (whole state by default) and returns
        (key, document) pairs matching the selector. Observed keys join
        the read set through the underlying range scan, like any state
        read.
        """
        import json as _json

        from repro.fabric.richquery import select

        try:
            selector = _json.loads(selector_json)
        except _json.JSONDecodeError as exc:
            raise ChaincodeError(f"selector is not valid JSON: {exc}") from exc
        rows = self.get_state_by_range(start, end)
        return select(rows, selector, limit=limit)

    # -- composite keys ------------------------------------------------------------

    def create_composite_key(self, object_type: str, attributes: list[str]) -> str:
        return make_composite_key(object_type, attributes)

    def split_composite_key(self, key: str) -> tuple[str, list[str]]:
        return split_composite_key(key)

    def get_state_by_partial_composite_key(
        self, object_type: str, attributes: list[str]
    ) -> list[tuple[str, bytes]]:
        start, end = composite_prefix_range(object_type, attributes)
        return self.get_state_by_range(start, end)

    # -- private data (org-scoped collections) -------------------------------------

    def put_private_data(self, collection: str, key: str, value: bytes) -> None:
        """Write to a private collection: plaintext to member-org side DBs,
        only its hash onto the public ledger."""
        if self._collections is None:
            raise ChaincodeError("private collections are not configured here")
        self._collections.get(collection)  # validates existence
        if not key:
            raise ChaincodeError("cannot put empty private key")
        if not isinstance(value, (bytes, bytearray)):
            raise ChaincodeError("private values must be bytes")
        write = PrivateWrite(collection=collection, key=key, value=bytes(value))
        self._private_writes[(collection, key)] = write
        # The endorsed, ordered, block-hashed artifact is the hash write.
        hash_key = private_hash_key(collection, key)
        self._writes[hash_key] = WriteEntry(
            key=hash_key, value=write.value_hash().encode(), is_delete=False
        )

    def get_private_data(self, collection: str, key: str) -> bytes | None:
        """Read a private value: buffered writes first, then this peer's
        side database (raises if the peer's org is not a member)."""
        if (collection, key) in self._private_writes:
            return self._private_writes[(collection, key)].value
        if self._private is None:
            raise ChaincodeError("this peer holds no private collections")
        return self._private.store_for(collection).get(key)

    def get_private_data_hash(self, collection: str, key: str) -> str | None:
        """The on-chain hash of a private value — readable by *any* org,
        which is how non-members verify disclosed values."""
        raw = self.get_state(private_hash_key(collection, key))
        return raw.decode() if raw is not None else None

    def verify_private_disclosure(self, collection: str, key: str, value: bytes) -> bool:
        """Does a value disclosed off-band match the on-chain hash?"""
        stored = self.get_private_data_hash(collection, key)
        return stored is not None and stored == value_hash(value)

    def private_writes(self) -> tuple[PrivateWrite, ...]:
        return tuple(self._private_writes.values())

    # -- history ----------------------------------------------------------------------

    def get_history_for_key(self, key: str):
        """Committed history of a key (provenance); not part of the rwset,
        as in Fabric — history queries are not MVCC-protected."""
        return self._world.history(key)

    # -- events & cross-chaincode ---------------------------------------------------------

    def set_event(self, name: str, payload: dict | None = None) -> None:
        self._events.append(
            ChaincodeEvent(chaincode=self._chaincode_name, name=name, payload=payload or {})
        )

    def invoke_chaincode(self, chaincode: str, fn: str, args: list[str]) -> str:
        """Call another chaincode in the same transaction context; its reads
        and writes merge into this transaction's rwset."""
        if self._invoker is None:
            raise ChaincodeError("cross-chaincode invocation not available here")
        return self._invoker(chaincode, fn, args, self)

    # -- rwset extraction (runtime only) ----------------------------------------------------

    def rwset(self) -> ReadWriteSet:
        return ReadWriteSet(
            reads=tuple(sorted(self._reads.values(), key=lambda r: r.key)),
            writes=tuple(self._writes.values()),
        )

    def events(self) -> tuple[ChaincodeEvent, ...]:
        return tuple(self._events)


class Chaincode:
    """Base class for smart contracts.

    Subclasses define public methods ``def my_fn(self, stub, arg1, arg2)``;
    :meth:`dispatch` routes an invocation by function name. Return values
    must be JSON-serializable (they are rendered to the response string the
    endorsement signs).
    """

    name: str = "chaincode"

    def dispatch(self, stub: ChaincodeStub, fn: str, args: list[str]) -> str:
        if fn.startswith("_") or not hasattr(self, fn):
            raise ChaincodeError(f"chaincode {self.name!r} has no function {fn!r}")
        method = getattr(self, fn)
        if not callable(method):
            raise ChaincodeError(f"{fn!r} is not invokable")
        try:
            result = method(stub, *args)
        except ChaincodeError:
            raise
        except TypeError as exc:
            # Wrong arity is an application error, not a framework crash.
            raise ChaincodeError(f"bad arguments for {self.name}.{fn}: {exc}") from exc
        # Canonical rendering: the response string is part of what every
        # endorser signs, so it must be byte-identical across endorsers.
        try:
            return canonical_json(result).decode("utf-8")
        except EncodingError as exc:
            raise ChaincodeError(
                f"{self.name}.{fn} returned a non-canonical value: {exc}"
            ) from exc


@dataclass
class ChaincodeDefinition:
    """An installed chaincode plus its channel-level endorsement policy."""

    chaincode: Chaincode
    policy: Any  # repro.fabric.policy.Policy


class ChaincodeRegistry:
    """Chaincodes installed on one peer/channel."""

    def __init__(self) -> None:
        self._defs: dict[str, ChaincodeDefinition] = {}

    def install(self, definition: ChaincodeDefinition) -> None:
        name = definition.chaincode.name
        if name in self._defs:
            raise ChaincodeError(f"chaincode {name!r} already installed")
        self._defs[name] = definition

    def get(self, name: str) -> ChaincodeDefinition:
        try:
            return self._defs[name]
        except KeyError:
            raise ChaincodeNotFoundError(f"chaincode {name!r} is not installed") from None

    def names(self) -> list[str]:
        return sorted(self._defs)

    def __contains__(self, name: str) -> bool:
        return name in self._defs
