"""Endorsement policies: which signatures make a transaction committable.

A policy is an expression tree over org principals, mirroring Fabric's
policy language::

    SignedBy("org1")                       # any org1 endorsement
    And(SignedBy("org1"), SignedBy("org2"))
    Or(SignedBy("org1"), SignedBy("org2"))
    OutOf(2, SignedBy("org1"), SignedBy("org2"), SignedBy("org3"))
    MajorityOf("org1", "org2", "org3")

Policies are evaluated at commit time against the set of orgs whose peers
produced valid endorsements — an unsatisfied policy marks the transaction
ENDORSEMENT_POLICY_FAILURE, exactly Fabric's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


class Policy:
    """Base class; subclasses implement :meth:`satisfied_by`."""

    def satisfied_by(self, endorsing_orgs: Iterable[str]) -> bool:  # pragma: no cover
        raise NotImplementedError

    def required_orgs(self) -> set[str]:  # pragma: no cover
        """Orgs that could contribute to satisfying this policy."""
        raise NotImplementedError


@dataclass(frozen=True)
class SignedBy(Policy):
    org: str

    def satisfied_by(self, endorsing_orgs: Iterable[str]) -> bool:
        return self.org in set(endorsing_orgs)

    def required_orgs(self) -> set[str]:
        return {self.org}

    def __repr__(self) -> str:
        return f"SignedBy({self.org!r})"


@dataclass(frozen=True)
class OutOf(Policy):
    """At least ``n`` of the sub-policies must be satisfied."""

    n: int
    policies: tuple[Policy, ...]

    def __init__(self, n: int, *policies: Policy) -> None:
        if n < 1 or n > len(policies):
            raise ValueError(f"OutOf needs 1 <= n <= {len(policies)}, got {n}")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "policies", tuple(policies))

    def satisfied_by(self, endorsing_orgs: Iterable[str]) -> bool:
        orgs = set(endorsing_orgs)
        return sum(1 for p in self.policies if p.satisfied_by(orgs)) >= self.n

    def required_orgs(self) -> set[str]:
        out: set[str] = set()
        for p in self.policies:
            out |= p.required_orgs()
        return out

    def __repr__(self) -> str:
        return f"OutOf({self.n}, {', '.join(map(repr, self.policies))})"


def And(*policies: Policy) -> OutOf:
    """All sub-policies must hold."""
    return OutOf(len(policies), *policies)


def Or(*policies: Policy) -> OutOf:
    """Any sub-policy suffices."""
    return OutOf(1, *policies)


def MajorityOf(*orgs: str) -> OutOf:
    """A strict majority of the named orgs must endorse."""
    return OutOf(len(orgs) // 2 + 1, *(SignedBy(o) for o in orgs))


def AnyOf(*orgs: str) -> OutOf:
    return Or(*(SignedBy(o) for o in orgs))


def AllOf(*orgs: str) -> OutOf:
    return And(*(SignedBy(o) for o in orgs))
