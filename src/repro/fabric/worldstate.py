"""World state: the versioned key-value view of the ledger.

Fabric's state DB holds, for every key, the value written by the most
recent valid transaction plus that transaction's *version* — the
``(block, tx)`` coordinate of the write. Versions are what make optimistic
concurrency (MVCC) work: endorsement records the version of every key it
read, and commit rejects the transaction if any of those keys has since
moved. A separate history index (Fabric's history DB) records every write
per key for provenance queries.

Composite keys pack an index name and attribute parts into one range-
scannable string using the same ``\\x00`` framing Fabric uses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import LedgerError

# Composite keys: \x00 + objectType + \x00 + attr1 + \x00 + attr2 + ...
COMPOSITE_SEP = "\x00"


@dataclass(frozen=True, order=True)
class Version:
    """Coordinate of the transaction that last wrote a key."""

    block: int
    tx: int

    def to_dict(self) -> dict:
        return {"block": self.block, "tx": self.tx}


@dataclass(frozen=True)
class HistoryEntry:
    """One write (or delete) of a key, for provenance queries."""

    tx_id: str
    version: Version
    value: bytes | None  # None marks a delete
    timestamp: float

    @property
    def is_delete(self) -> bool:
        return self.value is None


@dataclass
class WorldState:
    """Versioned KV store with range scans and per-key history."""

    _values: dict[str, bytes] = field(default_factory=dict)
    _versions: dict[str, Version] = field(default_factory=dict)
    _sorted_keys: list[str] = field(default_factory=list)
    _history: dict[str, list[HistoryEntry]] = field(default_factory=dict)

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        return self._values.get(key)

    def get_version(self, key: str) -> Version | None:
        return self._versions.get(key)

    def has(self, key: str) -> bool:
        return key in self._values

    def range(self, start: str = "", end: str = "") -> list[tuple[str, bytes]]:
        """Keys in ``[start, end)`` in lexicographic order; empty bound = open."""
        lo = bisect.bisect_left(self._sorted_keys, start) if start else 0
        hi = bisect.bisect_left(self._sorted_keys, end) if end else len(self._sorted_keys)
        return [(k, self._values[k]) for k in self._sorted_keys[lo:hi]]

    def history(self, key: str) -> list[HistoryEntry]:
        """All writes to ``key``, oldest first (valid transactions only)."""
        return list(self._history.get(key, ()))

    def keys(self) -> list[str]:
        return list(self._sorted_keys)

    def __len__(self) -> int:
        return len(self._values)

    # -- writes (committer only) -------------------------------------------------

    def apply_write(
        self,
        key: str,
        value: bytes | None,
        version: Version,
        tx_id: str,
        timestamp: float,
    ) -> None:
        """Apply one validated write. ``value=None`` deletes the key."""
        current = self._versions.get(key)
        if current is not None and version < current:
            raise LedgerError(
                f"write to {key!r} with stale version {version} < {current}"
            )
        if value is None:
            if key in self._values:
                del self._values[key]
                idx = bisect.bisect_left(self._sorted_keys, key)
                if idx < len(self._sorted_keys) and self._sorted_keys[idx] == key:
                    self._sorted_keys.pop(idx)
            self._versions[key] = version  # deletes still advance the version
        else:
            if key not in self._values:
                bisect.insort(self._sorted_keys, key)
            self._values[key] = value
            self._versions[key] = version
        self._history.setdefault(key, []).append(
            HistoryEntry(tx_id=tx_id, version=version, value=value, timestamp=timestamp)
        )

    # -- snapshots (endorsement simulation) ------------------------------------------

    def snapshot_versions(self, keys: list[str]) -> dict[str, Version | None]:
        return {k: self._versions.get(k) for k in keys}


# ---------------------------------------------------------------------------
# Composite keys
# ---------------------------------------------------------------------------


def make_composite_key(object_type: str, attributes: list[str]) -> str:
    """Pack an index name and attributes into one scannable key."""
    if COMPOSITE_SEP in object_type:
        raise LedgerError("object_type must not contain the separator")
    for attr in attributes:
        if COMPOSITE_SEP in attr:
            raise LedgerError("composite attributes must not contain the separator")
    return COMPOSITE_SEP + object_type + COMPOSITE_SEP + COMPOSITE_SEP.join(attributes) + (
        COMPOSITE_SEP if attributes else ""
    )


def split_composite_key(key: str) -> tuple[str, list[str]]:
    if not key.startswith(COMPOSITE_SEP):
        raise LedgerError(f"not a composite key: {key!r}")
    parts = key.split(COMPOSITE_SEP)
    # parts[0] is the empty string before the leading separator; the last
    # element is empty from the trailing separator when attributes exist.
    body = parts[1:]
    if body and body[-1] == "":
        body = body[:-1]
    if not body:
        raise LedgerError(f"malformed composite key: {key!r}")
    return body[0], body[1:]


def composite_prefix_range(object_type: str, attributes: list[str]) -> tuple[str, str]:
    """(start, end) bounds scanning all keys under a composite prefix.

    Every key under the prefix continues with the ``\\x00`` separator, so
    bumping the prefix's final separator to ``\\x01`` yields an exclusive
    upper bound that no continuation can exceed.
    """
    if attributes:
        prefix = (
            COMPOSITE_SEP + object_type + COMPOSITE_SEP + COMPOSITE_SEP.join(attributes) + COMPOSITE_SEP
        )
    else:
        prefix = COMPOSITE_SEP + object_type + COMPOSITE_SEP
    return prefix, prefix[:-1] + "\x01"
