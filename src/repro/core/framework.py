"""The assembled framework: Figure 1 of the paper as one object.

:class:`Framework` stands up the whole system — the HLF-like channel with
all five chaincodes installed, the IPFS cluster, the trust engine, and the
validator pool — in the paper's testbed shape by default (two orgs / two
peers, one orderer, two IPFS nodes, BFT validation). :class:`FrameworkConfig`
exposes every knob the benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaincodes import (
    AdminEnrollmentChaincode,
    DataRetrievalChaincode,
    DataUploadChaincode,
    ProvenanceChaincode,
    TrustScoreChaincode,
    UserRegistrationChaincode,
)
from repro.chaincodes.access import AccessControlChaincode
from repro.errors import (
    AccessDeniedError,
    ChaincodeError,
    ChaincodeNotFoundError,
    CircuitOpenError,
    FabricError,
    IdentityError,
    MVCCConflictError,
    TrustError,
)
from repro.fabric import Channel, FabricNetwork, Identity, Role
from repro.fabric.tx import ValidationCode
from repro.ipfs import FixedSizeChunker, IpfsCluster
from repro.ipfs.chunker import Chunker
from repro.resilience import ResilienceHub, RetryPolicy, retry
from repro.trust import SourceTier, TrustEngine, ValidatorPool


@dataclass(frozen=True)
class FrameworkConfig:
    """Deployment knobs; defaults mirror the paper's experimental setup
    (§IV a: one channel, two peer nodes, one orderer, two IPFS nodes)."""

    orgs: tuple[str, ...] = ("org1", "org2")
    peers_per_org: int = 1
    consensus: str = "bft"            # "solo" | "bft"
    n_validators: int = 4
    max_batch_size: int = 1
    n_ipfs_nodes: int = 2
    chunk_size: int = 64 * 1024
    channel_name: str = "traffic"
    trusted_threshold: float = 0.75
    min_trust_threshold: float = 0.25
    # Paper §III: "If discrepancies are detected, the data may require
    # further validation from multiple trusted sources before it is
    # recorded." With strict admission, a low-trust source's submission is
    # rejected up-front when trusted neighbours contradict its observation.
    strict_admission: bool = False
    corroboration_floor: float = 0.5
    # Resilience layer (retry/breaker semantics shared by every hot path).
    retry_max_attempts: int = 4
    breaker_failure_threshold: int = 8
    breaker_cooldown_s: float = 0.25
    resilience_seed: int = 0
    # Runtime sanitizer modes (repro.analysis): "" disables, "all" enables
    # everything, or a comma list of
    # divergence/ledger/locks/consensus/recovery. Combined with the
    # REPRO_SANITIZE environment variable at build time.
    sanitize: str = ""
    # Durable node state (repro.storage): when enabled, every peer and the
    # orderer journal to a simulated DurableStore (WAL + checkpoints), and
    # crash faults become real amnesia with WAL/checkpoint recovery.
    durability: bool = False
    checkpoint_interval: int = 8   # blocks between checkpoints (0 disables)
    wal_sync_every: int = 1        # fsync the WAL every N blocks
    # Block-incremental authenticated secondary index (repro.index): every
    # peer maintains per-block posting filters plus a cumulative index the
    # query planner routes equality/range/time predicates through.
    index_enabled: bool = True


class Framework:
    """Everything the paper's client talks to, wired together."""

    def __init__(self, config: FrameworkConfig | None = None, chunker: Chunker | None = None) -> None:
        self.config = config or FrameworkConfig()
        cfg = self.config
        self.fabric = FabricNetwork()
        # Sanitizers must attach before any invoke (the admin enrollment
        # below is already a checked endorsement+commit when enabled).
        from repro.analysis.runtime import install_sanitizers

        self.channel: Channel = self.fabric.create_channel(
            cfg.channel_name,
            orgs=list(cfg.orgs),
            peers_per_org=cfg.peers_per_org,
            consensus=cfg.consensus,
            max_batch_size=cfg.max_batch_size,
            n_validators=cfg.n_validators,
            consensus_checkpoint_interval=(
                cfg.checkpoint_interval if cfg.durability else 0
            ),
        )
        self.sanitizer = install_sanitizers(self.channel, spec=cfg.sanitize)
        # Durable storage attaches before the first invoke so even the
        # genesis/admin commits are journaled.
        self.durability = None
        if cfg.durability:
            from repro.storage import DurabilityManager

            self.durability = DurabilityManager(
                self.channel,
                checkpoint_interval=cfg.checkpoint_interval,
                wal_sync_every=cfg.wal_sync_every,
            )
        # The secondary index attaches before the first invoke so epoch 0
        # covers the admin-enrollment block; the durability journal above
        # records each epoch digest into the WAL.
        self.indexing = None
        if cfg.index_enabled:
            from repro.index import IndexManager

            self.indexing = IndexManager(
                self.channel,
                trusted_threshold=cfg.trusted_threshold,
                min_threshold=cfg.min_trust_threshold,
            )
        for chaincode in (
            AdminEnrollmentChaincode(),
            UserRegistrationChaincode(),
            DataUploadChaincode(),
            DataRetrievalChaincode(),
            ProvenanceChaincode(),
            TrustScoreChaincode(),
            AccessControlChaincode(),
        ):
            self.channel.install_chaincode(chaincode)
        self.ipfs = IpfsCluster(
            n_nodes=cfg.n_ipfs_nodes,
            chunker=chunker or FixedSizeChunker(cfg.chunk_size),
        )
        self.trust = TrustEngine(
            trusted_threshold=cfg.trusted_threshold,
            min_threshold=cfg.min_trust_threshold,
        )
        self.resilience = ResilienceHub(
            retry_policy=RetryPolicy(max_attempts=cfg.retry_max_attempts),
            failure_threshold=cfg.breaker_failure_threshold,
            cooldown_s=cfg.breaker_cooldown_s,
            seed=cfg.resilience_seed,
        )
        self.validator_pool = ValidatorPool()
        if cfg.consensus == "bft":
            for name in self.channel.orderer.cluster.replica_names:  # type: ignore[attr-defined]
                self.validator_pool.add_validator(name)
        # The operator identity used for registration bookkeeping.
        self.admin = self.fabric.register_identity("framework-admin", cfg.orgs[0], Role.ADMIN)
        self.channel.invoke(self.admin, "admin_enrollment", "enroll_admin", ["framework-admin"])

    # -- resilient write path ---------------------------------------------------

    # Deterministic request-level failures: every retry would fail the same
    # way, so the resilience layer lets them propagate immediately.
    _NO_RETRY = (
        ChaincodeError,
        ChaincodeNotFoundError,
        AccessDeniedError,
        IdentityError,
        CircuitOpenError,
    )

    def resilient_invoke(
        self,
        identity: Identity,
        chaincode: str,
        fn: str,
        args: list[str],
        op: str | None = None,
        endorsing_orgs: list[str] | None = None,
        transient: dict[str, bytes] | None = None,
    ):
        """``channel.invoke`` hardened for a faulty deployment.

        Each attempt passes through the ``"fabric"`` circuit breaker, and
        transient failures — endorsement failures after peer failover,
        ordering hiccups, MVCC read conflicts — are retried with exponential
        backoff and deterministic jitter. Every retry builds a *fresh*
        proposal (new nonce, new tx id), so a transaction stalled inside a
        slow consensus instance can still commit later: the write path is
        at-least-once, and idempotence lives in the chaincodes.
        """
        op = op or f"{chaincode}.{fn}"
        breaker = self.resilience.breaker("fabric")

        def attempt():
            if not breaker.allow():
                raise CircuitOpenError("fabric", breaker.retry_after_s())
            try:
                result = self.channel.invoke(
                    identity, chaincode, fn, args, endorsing_orgs, transient
                )
            except self._NO_RETRY:
                raise
            except FabricError:
                breaker.record_failure()
                raise
            if result.code is ValidationCode.MVCC_READ_CONFLICT:
                # A conflict is contention, not dependency sickness — retry
                # with a fresh read set but don't count it against fabric.
                raise MVCCConflictError(
                    f"transaction {result.tx_id!r} hit an MVCC read conflict"
                )
            breaker.record_success()
            return result

        return retry(
            attempt,
            policy=self.resilience.retry_policy,
            retryable=(FabricError,),
            should_retry=lambda exc: not isinstance(exc, self._NO_RETRY),
            op=op,
            seed=self.resilience.seed,
        )

    # -- source management (paper Figure 1: users register before submitting) --

    def register_source(
        self, source_id: str, org: str | None = None, tier: SourceTier = SourceTier.UNTRUSTED
    ) -> Identity:
        """Register a data source end to end: MSP identity, on-chain user
        record, and trust-engine tier."""
        org = org or self.config.orgs[0]
        identity = self.fabric.register_identity(source_id, org, Role.CLIENT)
        tier_str = "trusted" if tier is SourceTier.TRUSTED else "untrusted"
        self.resilient_invoke(
            self.admin,
            "user_registration",
            "register_user",
            [source_id, org, tier_str, identity.keypair.public.hex()],
        )
        self.trust.register_source(source_id, tier)
        return identity

    def consensus_votes(self, tx_id: str) -> dict[str, bool]:
        """Per-validator validity votes for a transaction (BFT mode only)."""
        orderer = self.channel.orderer
        decisions = getattr(orderer, "decisions", None)
        if not decisions or tx_id not in decisions:
            return {}
        return dict(decisions[tx_id].votes)

    def observe_validators(self, tx_id: str, accepted: bool) -> list[str]:
        """Feed one consensus outcome into the validator pool; records any
        newly flagged/removed validators on-chain (paper §III-A)."""
        votes = self.consensus_votes(tx_id)
        if not votes:
            return []
        removed = self.validator_pool.observe_decision(accepted, votes)
        for name in removed:
            self.resilient_invoke(
                self.admin,
                "trust_score",
                "remove_validator",
                [name, "repeatedly acted against consensus"],
            )
        return removed

    def record_trust_on_chain(self, source_id: str) -> None:
        import json

        record = self.trust.chain_record(source_id)
        self.resilient_invoke(
            self.admin, "trust_score", "put_score", [source_id, json.dumps(record)]
        )

    def require_registered(self, source_id: str) -> None:
        if not self.trust.is_registered(source_id):
            raise TrustError(f"source {source_id!r} is not registered")
