"""The client: the paper's Figure 1 entry point for users.

``submit`` walks the full store path ①–⑦: the source signs its data, the
trust engine gates admission, raw bytes go to IPFS (③), and the CID plus
extracted metadata go through endorsement, BFT ordering, and commit onto
the ledger (④–⑦), with provenance events recorded and the source's trust
score updated from the validators' votes and stored on-chain.

``retrieve``/``query`` walk the retrieval path Ⓐ–Ⓓ: metadata from the
blockchain query executor, raw bytes from the IPFS executor, and integrity
verification of the bytes against the on-chain record.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.framework import Framework
from repro.crypto.cid import CID
from repro.errors import (
    DagError,
    FabricError,
    IntegrityError,
    InvalidBlockError,
    ResilienceError,
    StorageError,
    UntrustedSourceError,
)
from repro.fabric import Identity, ValidationCode
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.query import QueryEngine, QueryRow
from repro.trust import SourceTier
from repro.trust.crossval import Observation
from repro.vision import Frame, MetadataExtractor, SimulatedYolo


@dataclass(frozen=True)
class SubmissionReceipt:
    """Everything a source learns back from a successful submission."""

    entry_id: str
    cid: str
    data_hash: str
    tx_id: str
    block_number: int
    validation_code: ValidationCode
    accepted: bool
    trust_score: float

    @property
    def ok(self) -> bool:
        return self.accepted


@dataclass(frozen=True)
class RetrievalResult:
    """What a retrieval returns.

    ``degraded=True`` means the off-chain bytes were unreachable but the
    on-chain metadata is served anyway (``data`` is empty and ``failure``
    says why) — availability degrades before the read fails outright.
    """

    record: dict
    data: bytes
    verified: bool
    degraded: bool = False
    failure: str | None = None

    @property
    def cid(self) -> str:
        return self.record["cid"]


class Client:
    """A data source's (or analyst's) handle on the framework."""

    def __init__(self, framework: Framework, identity: Identity) -> None:
        self.framework = framework
        self.identity = identity
        self.engine = QueryEngine(
            channel=framework.channel,
            cluster=framework.ipfs,
            identity=identity,
        )
        self._detector = SimulatedYolo()
        self._extractor = MetadataExtractor()

    @property
    def source_id(self) -> str:
        return self.identity.name

    # ------------------------------------------------------------------
    # Store path (Figure 1 ①–⑦)
    # ------------------------------------------------------------------

    def submit(
        self,
        data: bytes,
        metadata: dict,
        observation: Observation | None = None,
    ) -> SubmissionReceipt:
        """Submit one data item with its extracted metadata."""
        framework = self.framework
        source_id = self.source_id
        framework.require_registered(source_id)

        with obs_span("client.submit") as root:
            root.set_attr("source_id", source_id)
            root.set_attr("bytes", len(data))

            # ① digital signature over the data (checked by admission).
            with obs_span("submit.sign"):
                data_hash = hashlib.sha256(data).hexdigest()
                signature = self.identity.sign(bytes.fromhex(data_hash))
                if not self.identity.info().public_key.is_valid(
                    bytes.fromhex(data_hash), signature
                ):  # pragma: no cover - defensive
                    raise UntrustedSourceError("submission signature failed self-check")

            # ② admission: trust gate before anything is stored.
            with obs_span("submit.admission"):
                decision = framework.trust.admit(source_id)
                if not decision.admitted:
                    raise UntrustedSourceError(
                        f"source {source_id!r} rejected: {decision.reason}"
                    )
                # Paper §III: discrepancy against trusted sources blocks recording.
                if (
                    framework.config.strict_admission
                    and decision.requires_corroboration
                    and observation is not None
                ):
                    neighbours = framework.trust.cross_validator.neighbours(observation)
                    if neighbours:
                        cross = framework.trust.cross_validate(observation)
                        if cross < framework.config.corroboration_floor:
                            framework.trust.record_validation(
                                source_id, False,
                                valid_votes=0, invalid_votes=len(neighbours),
                                observation=observation,
                            )
                            framework.record_trust_on_chain(source_id)
                            raise UntrustedSourceError(
                                f"source {source_id!r} contradicts {len(neighbours)} trusted "
                                f"observation(s) (cross-validation {cross:.2f} < "
                                f"{framework.config.corroboration_floor}); submission refused"
                            )

            # ③ raw data to IPFS.
            add_result = framework.ipfs.add(data)
            cid = add_result.cid.encode()

            # ④–⑦ metadata + CID through endorsement, ordering (BFT), commit.
            metadata = dict(metadata)
            metadata.setdefault("source_id", source_id)
            metadata.setdefault("data_hash", data_hash)
            result = framework.resilient_invoke(
                self.identity, "data_upload", "add_data", [cid, data_hash, json.dumps(metadata)]
            )
            entry_id = json.loads(result.response)["entry_id"] if result.ok else result.tx_id

            # Provenance trail for the new entry.
            if result.ok:
                with obs_span("submit.provenance"):
                    framework.resilient_invoke(
                        self.identity,
                        "provenance",
                        "record",
                        [entry_id, "captured", source_id, json.dumps({"data_hash": data_hash})],
                    )
                    framework.resilient_invoke(
                        self.identity,
                        "provenance",
                        "record",
                        [
                            entry_id,
                            "stored",
                            source_id,
                            json.dumps({"cid": cid, "block": result.block_number}),
                        ],
                    )

            # Trust update from the consensus outcome.
            with obs_span("submit.trust_update"):
                votes = framework.consensus_votes(result.tx_id)
                accepted = result.ok
                valid_votes = sum(1 for v in votes.values() if v)
                invalid_votes = len(votes) - valid_votes
                if framework.trust.tier(source_id) is not SourceTier.TRUSTED:
                    score = framework.trust.record_validation(
                        source_id,
                        accepted,
                        valid_votes=valid_votes or (1 if accepted else 0),
                        invalid_votes=invalid_votes or (0 if accepted else 1),
                        observation=observation,
                    )
                    framework.record_trust_on_chain(source_id)
                else:
                    score = 1.0
                    if observation is not None:
                        framework.trust.observe_trusted(observation)
                framework.observe_validators(result.tx_id, accepted)

            root.set_attr("entry_id", entry_id)
            root.set_attr("accepted", accepted)

        return SubmissionReceipt(
            entry_id=entry_id,
            cid=cid,
            data_hash=data_hash,
            tx_id=result.tx_id,
            block_number=result.block_number,
            validation_code=result.code,
            accepted=accepted,
            trust_score=score,
        )

    def submit_frame(self, frame: Frame) -> SubmissionReceipt:
        """Vision-pipeline convenience: detect, extract metadata, submit."""
        detections = self._detector.detect(frame)
        record = self._extractor.extract(frame, detections)
        observation = self._extractor.to_observation(record)
        # The frame came from this client's device, whatever camera id the
        # renderer used; attribute it to the submitting source.
        metadata = record.to_dict()
        metadata["source_id"] = self.source_id
        observation = Observation(
            source_id=self.source_id,
            lat=observation.lat,
            lon=observation.lon,
            timestamp=observation.timestamp,
            counts=observation.counts,
        )
        return self.submit(frame.to_bytes(), metadata, observation=observation)

    # ------------------------------------------------------------------
    # Retrieval path (Figure 1 Ⓐ–Ⓓ)
    # ------------------------------------------------------------------

    def retrieve(
        self, entry_id: str, verify: bool = True, allow_degraded: bool = True
    ) -> RetrievalResult:
        """Fetch a record's metadata from the chain and its bytes from IPFS.

        The on-chain ACL (access_control chaincode) is consulted first:
        restricted entries are only served to allowed orgs, and denials are
        written to the immutable access log.

        The off-chain fetch is self-healing: a corrupted replica is
        quarantined and the bytes re-fetched from surviving copies, and if
        the off-chain tier is unreachable entirely the on-chain metadata is
        still served with ``degraded=True`` (set ``allow_degraded=False``
        to fail instead).
        """
        with obs_span("client.retrieve") as root:
            root.set_attr("entry_id", entry_id)
            with obs_span("retrieve.acl"):
                self._enforce_acl(entry_id)
            row = self.engine.get(entry_id, fetch_data=False)
            data, verified, degraded, failure = self._fetch_with_recovery(
                row.record, verify=verify, allow_degraded=allow_degraded
            )
            with obs_span("retrieve.provenance") as sp:
                try:
                    self.framework.resilient_invoke(
                        self.identity,
                        "provenance",
                        "record",
                        [entry_id, "accessed", self.source_id, "{}"],
                    )
                except (FabricError, ResilienceError) as exc:
                    # The read itself succeeded; losing one access-log entry
                    # must not fail it — but it must not vanish silently.
                    sp.set_attr("write_failed", type(exc).__name__)
                    get_registry().counter("provenance_write_failures_total").inc()
            root.set_attr("bytes", len(data or b""))
            if degraded:
                root.set_attr("degraded", True)
            return RetrievalResult(
                record=row.record,
                data=data or b"",
                verified=verified,
                degraded=degraded,
                failure=failure,
            )

    def _fetch_with_recovery(
        self, record: dict, verify: bool, allow_degraded: bool
    ) -> tuple[bytes | None, bool, bool, str | None]:
        """Returns ``(data, verified, degraded, failure)`` for a record.

        ``verified`` is the *proven* outcome: True only when the bytes were
        checked against an on-chain ``data_hash`` — a record with no stored
        hash reads back ``verified=False`` even under ``verify=True``.

        Recovery ladder: a hash mismatch quarantines the corrupted blocks
        cluster-wide and re-fetches from clean replicas; an unreachable
        off-chain tier degrades to metadata-only (when allowed).
        """
        try:
            try:
                data, verified = self.engine.fetch_payload_verified(record, verify=verify)
                return data, verified, False, None
            except (IntegrityError, DagError, InvalidBlockError):
                # IntegrityError: reassembled bytes mismatch the on-chain
                # hash. DagError / InvalidBlockError: a locally stored
                # block failed verification mid-walk. All three mean
                # corruption somewhere in the replica set.
                dropped = self.framework.ipfs.quarantine(CID.parse(record["cid"]))
                if dropped == 0:
                    # No block was corrupt: the on-chain record itself
                    # disagrees with the bytes — refetching cannot help.
                    raise
                get_registry().counter("integrity_refetch_total").inc()
                data, verified = self.engine.fetch_payload_verified(record, verify=verify)
                return data, verified, False, None
        except (StorageError, ResilienceError) as exc:
            if not allow_degraded:
                raise
            get_registry().counter("degraded_reads_total").inc()
            return None, False, True, f"{type(exc).__name__}: {exc}"

    def query(self, text: str, fetch_data: bool = False) -> list[QueryRow]:
        return self.engine.run(text, fetch_data=fetch_data)

    def get_metadata(self, entry_id: str) -> dict:
        return self.engine.get(entry_id).record

    # ------------------------------------------------------------------
    # Access control
    # ------------------------------------------------------------------

    def _enforce_acl(self, entry_id: str) -> None:
        from repro.errors import AccessDeniedError

        raw = self.framework.channel.query(
            self.identity, "access_control", "check_access",
            [entry_id, self.identity.org],
        )
        if not json.loads(raw)["allowed"]:
            self.framework.channel.invoke(
                self.identity, "access_control", "log_access", [entry_id, "denied"]
            )
            raise AccessDeniedError(
                f"org {self.identity.org!r} is not allowed to read entry {entry_id!r}"
            )

    def restrict(self, entry_id: str, allowed_orgs: list[str]) -> dict:
        """Set the entry's ACL (owner-org only after first set)."""
        result = self.framework.channel.invoke(
            self.identity, "access_control", "set_acl",
            [entry_id, json.dumps(allowed_orgs)],
        )
        return json.loads(result.response)

    def access_log(self, entry_id: str) -> list[dict]:
        raw = self.framework.channel.query(
            self.identity, "access_control", "access_log", [entry_id]
        )
        return json.loads(raw)

    # ------------------------------------------------------------------
    # Provenance + trust inspection
    # ------------------------------------------------------------------

    def provenance(self, entry_id: str) -> list[dict]:
        raw = self.framework.channel.query(
            self.identity, "provenance", "lineage", [entry_id]
        )
        return json.loads(raw)

    def verify_provenance(self, entry_id: str) -> dict:
        raw = self.framework.channel.query(
            self.identity, "provenance", "verify", [entry_id]
        )
        return json.loads(raw)

    def trust_score(self, source_id: str | None = None) -> float:
        return self.framework.trust.score(source_id or self.source_id)

    def on_chain_trust(self, source_id: str | None = None) -> dict:
        raw = self.framework.channel.query(
            self.identity, "trust_score", "get_score", [source_id or self.source_id]
        )
        return json.loads(raw)
