"""Batch ingestion: the high-throughput write path.

``Client.submit`` is synchronous — one transaction, one block — which is
right for interactive use and wrong for a camera uploading a day of
footage. :class:`BatchIngestor` pipelines the store path: payloads go to
IPFS immediately, metadata transactions queue into the orderer's batch
(``max_batch_size > 1``), and one flush commits a whole block of entries.
Provenance writes are batched the same way, and trust updates coalesce to
one score write per source per batch rather than one per item.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.core.framework import Framework
from repro.errors import UntrustedSourceError
from repro.fabric import Identity, ValidationCode
from repro.obs.tracer import span as obs_span
from repro.trust import SourceTier
from repro.workloads.traffic import IngestItem


@dataclass(frozen=True)
class IngestReport:
    """Throughput accounting for one batch run."""

    submitted: int
    committed: int
    rejected: int
    blocks: int
    payload_bytes: int
    elapsed_s: float
    entry_ids: tuple[str, ...]

    @property
    def tx_per_s(self) -> float:
        return self.submitted / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def mib_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return (self.payload_bytes / (1 << 20)) / self.elapsed_s


@dataclass
class BatchIngestor:
    """Pipelined multi-item ingestion for one framework."""

    framework: Framework
    record_provenance: bool = True
    _identities: dict[str, Identity] = field(default_factory=dict)

    def register(self, identity: Identity) -> None:
        """Make a source identity available for batch submission."""
        self._identities[identity.name] = identity

    def _identity_for(self, source_id: str) -> Identity:
        try:
            return self._identities[source_id]
        except KeyError:
            raise UntrustedSourceError(
                f"source {source_id!r} has no registered identity in this ingestor"
            ) from None

    def ingest(self, items: list[IngestItem]) -> IngestReport:
        """Submit all items, flush once, and account for the outcome."""
        framework = self.framework
        channel = framework.channel
        start = time.perf_counter()
        payload_bytes = 0
        tx_ids: list[tuple[str, str]] = []  # (tx_id, source_id)
        blocks_before = channel.height()

        with obs_span("ingest.batch") as root:
            root.set_attr("items", len(items))

            for item in items:
                with obs_span("ingest.item") as sp:
                    sp.set_attr("source_id", item.source_id)
                    identity = self._identity_for(item.source_id)
                    decision = framework.trust.admit(item.source_id)
                    if not decision.admitted:
                        raise UntrustedSourceError(
                            f"source {item.source_id!r} rejected: {decision.reason}"
                        )
                    add_result = framework.ipfs.add(item.payload)
                    payload_bytes += len(item.payload)
                    data_hash = hashlib.sha256(item.payload).hexdigest()
                    metadata = dict(item.metadata)
                    metadata.setdefault("source_id", item.source_id)
                    tx_id = channel.invoke_async(
                        identity,
                        "data_upload",
                        "add_data",
                        [add_result.cid.encode(), data_hash, json.dumps(metadata)],
                    )
                    tx_ids.append((tx_id, item.source_id))

            channel.flush()

            committed: list[str] = []
            rejected = 0
            outcomes: dict[str, list[bool]] = {}
            for tx_id, source_id in tx_ids:
                result = channel.result(tx_id)
                ok = result.code is ValidationCode.VALID
                outcomes.setdefault(source_id, []).append(ok)
                if ok:
                    committed.append(json.loads(result.response)["entry_id"])
                else:
                    rejected += 1

            if self.record_provenance and committed:
                with obs_span("ingest.provenance"):
                    for entry_id in committed:
                        # Batched too: async + one flush below.
                        channel.invoke_async(
                            self._identities[tx_ids[0][1]],
                            "provenance",
                            "record",
                            [entry_id, "stored", "batch-ingestor", "{}"],
                        )
                    channel.flush()

            # One coalesced trust update per source.
            with obs_span("ingest.trust_update"):
                for source_id, oks in outcomes.items():
                    if framework.trust.tier(source_id) is SourceTier.TRUSTED:
                        continue
                    for ok in oks:
                        framework.trust.record_validation(
                            source_id, ok,
                            valid_votes=1 if ok else 0, invalid_votes=0 if ok else 1,
                        )
                    framework.record_trust_on_chain(source_id)

            root.set_attr("committed", len(committed))
            root.set_attr("rejected", rejected)

        elapsed = time.perf_counter() - start
        return IngestReport(
            submitted=len(tx_ids),
            committed=len(committed),
            rejected=rejected,
            blocks=channel.height() - blocks_before,
            payload_bytes=payload_bytes,
            elapsed_s=elapsed,
            entry_ids=tuple(committed),
        )
