"""Batch ingestion: the high-throughput write path.

``Client.submit`` is synchronous — one transaction, one block — which is
right for interactive use and wrong for a camera uploading a day of
footage. :class:`BatchIngestor` pipelines the store path: payloads go to
IPFS in parallel (chunking + hashing + replication overlap on a thread
pool), metadata transactions queue into the orderer's batch
(``max_batch_size > 1``) where *one* BFT consensus instance per block
decides them all, and one flush commits a whole block of entries.
Provenance writes are batched the same way — each entry's trail recorded
under the identity of the source that submitted it — and trust updates
coalesce to one score write per source per batch rather than one per item.

Admission is per item: a non-admitted source's items are skipped and
counted in :attr:`IngestReport.rejected` (nothing of theirs is stored
off-chain), and the batch only fails outright when *every* item was
inadmissible.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.core.framework import Framework
from repro.errors import UntrustedSourceError
from repro.fabric import Identity, ValidationCode
from repro.obs.tracer import span as obs_span
from repro.trust import SourceTier
from repro.util.parallel import parallel_map
from repro.workloads.traffic import IngestItem


@dataclass(frozen=True)
class IngestReport:
    """Throughput accounting for one batch run.

    ``submitted`` counts items that reached the ledger as transactions
    (admitted items); ``rejected`` counts both admission skips and
    transactions the consensus refused. ``blocks`` counts only the blocks
    the data transactions landed in — provenance/trust follow-up blocks
    are bookkeeping, not ingest throughput.
    """

    submitted: int
    committed: int
    rejected: int
    blocks: int
    payload_bytes: int
    elapsed_s: float
    entry_ids: tuple[str, ...]
    skipped_sources: tuple[str, ...] = ()

    @property
    def tx_per_s(self) -> float:
        return self.submitted / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def mib_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return (self.payload_bytes / (1 << 20)) / self.elapsed_s


@dataclass
class BatchIngestor:
    """Pipelined multi-item ingestion for one framework."""

    framework: Framework
    record_provenance: bool = True
    # Thread-pool width for the off-chain store phase (None = default).
    io_workers: int | None = None
    _identities: dict[str, Identity] = field(default_factory=dict)

    def register(self, identity: Identity) -> None:
        """Make a source identity available for batch submission."""
        self._identities[identity.name] = identity

    def _identity_for(self, source_id: str) -> Identity:
        try:
            return self._identities[source_id]
        except KeyError:
            raise UntrustedSourceError(
                f"source {source_id!r} has no registered identity in this ingestor"
            ) from None

    def _admit(self, items: list[IngestItem]):
        """Per-item admission: returns ``(admitted, skipped_sources)``.

        A rejected or unknown source skips *its* items only — nothing of
        theirs touches IPFS or the orderer queue, so a bad source can
        neither leak stored payloads nor bleed queued transactions into
        the next block. Raises only when no item at all was admissible.
        """
        admitted: list[tuple[IngestItem, Identity]] = []
        skipped: list[str] = []
        first_reason: str | None = None
        for item in items:
            with obs_span("ingest.item") as sp:
                sp.set_attr("source_id", item.source_id)
                try:
                    identity = self._identity_for(item.source_id)
                except UntrustedSourceError as exc:
                    skipped.append(item.source_id)
                    first_reason = first_reason or str(exc)
                    sp.set_attr("skipped", "no_identity")
                    continue
                decision = self.framework.trust.admit(item.source_id)
                if not decision.admitted:
                    skipped.append(item.source_id)
                    first_reason = first_reason or (
                        f"source {item.source_id!r} rejected: {decision.reason}"
                    )
                    sp.set_attr("skipped", "not_admitted")
                    continue
                admitted.append((item, identity))
        if items and not admitted:
            raise UntrustedSourceError(
                f"no admissible item in batch of {len(items)}: {first_reason}"
            )
        return admitted, skipped

    def ingest(self, items: list[IngestItem]) -> IngestReport:
        """Submit all admissible items, flush once, and account for the outcome."""
        framework = self.framework
        channel = framework.channel
        start = time.perf_counter()
        blocks_before = channel.height()

        with obs_span("ingest.batch") as root:
            root.set_attr("items", len(items))

            admitted, skipped = self._admit(items)

            # Off-chain store: chunk + hash + replicate every payload in
            # parallel — the per-item pipelines are independent, so the
            # batch overlaps instead of serializing.
            with obs_span("ingest.store") as sp:
                payloads = [item.payload for item, _ in admitted]
                payload_bytes = sum(len(p) for p in payloads)
                sp.set_attr("bytes", payload_bytes)
                add_results = framework.ipfs.add_many(
                    payloads, max_workers=self.io_workers
                )
                hashes = parallel_map(
                    lambda p: hashlib.sha256(p).hexdigest(),
                    payloads,
                    max_workers=self.io_workers,
                    queue="ingest.hash",
                )

            # On-chain metadata: endorse + queue into the orderer's batch;
            # one flush drives one consensus instance per cut block.
            tx_meta: list[tuple[str, str, Identity, str, str]] = []
            for (item, identity), add_result, data_hash in zip(
                admitted, add_results, hashes
            ):
                metadata = dict(item.metadata)
                metadata.setdefault("source_id", item.source_id)
                tx_id = channel.invoke_async(
                    identity,
                    "data_upload",
                    "add_data",
                    [add_result.cid.encode(), data_hash, json.dumps(metadata)],
                )
                tx_meta.append(
                    (tx_id, item.source_id, identity, add_result.cid.encode(), data_hash)
                )

            channel.flush()
            # Ingest throughput counts only the blocks the data landed in;
            # provenance/trust follow-ups below cut their own blocks.
            ingest_blocks = channel.height() - blocks_before

            committed: list[tuple[str, str, Identity, str, str, int]] = []
            rejected = len(skipped)
            outcomes: dict[str, list[bool]] = {}
            for tx_id, source_id, identity, cid, data_hash in tx_meta:
                result = channel.result(tx_id)
                ok = result.code is ValidationCode.VALID
                outcomes.setdefault(source_id, []).append(ok)
                if ok:
                    entry_id = json.loads(result.response)["entry_id"]
                    committed.append(
                        (entry_id, source_id, identity, cid, data_hash, result.block_number)
                    )
                else:
                    rejected += 1

            if self.record_provenance and committed:
                with obs_span("ingest.provenance"):
                    # Each entry's trail is recorded under the identity of
                    # the source that submitted it (actor = that source),
                    # mirroring Client.submit's captured → stored trail.
                    # Two waves with a flush between: both events of one
                    # entry extend the same hash chain (read-modify-write
                    # of its head), so batching them into one block would
                    # MVCC-conflict the second event.
                    for entry_id, source_id, identity, cid, data_hash, block in committed:
                        channel.invoke_async(
                            identity,
                            "provenance",
                            "record",
                            [
                                entry_id,
                                "captured",
                                source_id,
                                json.dumps({"data_hash": data_hash}),
                            ],
                        )
                    channel.flush()
                    for entry_id, source_id, identity, cid, data_hash, block in committed:
                        channel.invoke_async(
                            identity,
                            "provenance",
                            "record",
                            [
                                entry_id,
                                "stored",
                                source_id,
                                json.dumps({"cid": cid, "block": block}),
                            ],
                        )
                    channel.flush()

            # One coalesced trust update per source.
            with obs_span("ingest.trust_update"):
                for source_id, oks in outcomes.items():
                    if framework.trust.tier(source_id) is SourceTier.TRUSTED:
                        continue
                    for ok in oks:
                        framework.trust.record_validation(
                            source_id, ok,
                            valid_votes=1 if ok else 0, invalid_votes=0 if ok else 1,
                        )
                    framework.record_trust_on_chain(source_id)

            root.set_attr("committed", len(committed))
            root.set_attr("rejected", rejected)

        elapsed = time.perf_counter() - start
        return IngestReport(
            submitted=len(tx_meta),
            committed=len(committed),
            rejected=rejected,
            blocks=ingest_blocks,
            payload_bytes=payload_bytes,
            elapsed_s=elapsed,
            entry_ids=tuple(entry_id for entry_id, *_ in committed),
            skipped_sources=tuple(skipped),
        )
