"""Evidence bundles: signed, portable exports of query results.

Traffic evidence outlives one deployment: a prosecution or an inter-city
data-sharing agreement needs the raw data, its metadata, *and* its
provenance, packaged so the receiver can verify all of it without access
to the origin network. A bundle is:

* a manifest — the matched on-chain records plus each entry's provenance
  lineage, signed by the exporting identity;
* a CAR archive of every referenced payload.

``import_bundle`` verifies the exporter's signature, loads the CAR
(hash-verifying every block), and checks each entry's bytes against the
on-chain ``data_hash`` captured in the manifest — the same integrity
chain the origin framework enforced, now portable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.client import Client
from repro.crypto.cid import CID
from repro.crypto.keys import PublicKey
from repro.errors import IntegrityError, SignatureError, StorageError
from repro.ipfs.blockstore import Blockstore, MemoryBlockstore
from repro.ipfs.car import export_car, import_car
from repro.ipfs.unixfs import UnixFS
from repro.util.serialization import canonical_json, from_canonical_json
from repro.util.varint import decode_varint, encode_varint

BUNDLE_VERSION = 1


@dataclass(frozen=True)
class BundleEntry:
    record: dict
    provenance: tuple[dict, ...]

    @property
    def entry_id(self) -> str:
        return self.record["entry_id"]

    @property
    def cid(self) -> CID:
        return CID.parse(self.record["cid"])


@dataclass(frozen=True)
class Bundle:
    entries: tuple[BundleEntry, ...]
    exporter: dict  # IdentityInfo.to_dict()
    channel: str
    query_text: str


def export_bundle(client: Client, query_text: str) -> bytes:
    """Export everything matching ``query_text`` as a signed bundle."""
    rows = client.query(query_text, fetch_data=True)
    if not rows:
        raise StorageError(f"query {query_text!r} matched nothing to export")
    # Stage all payload blocks on one node so the CAR export sees them.
    staging = client.framework.ipfs.node()
    roots = []
    entries = []
    for row in rows:
        cid = CID.parse(row.record["cid"])
        staging.cat(cid, providers=client.framework.ipfs.providers_for(cid, staging.peer_id))
        roots.append(cid)
        entries.append(
            {
                "record": row.record,
                "provenance": client.provenance(row.entry_id),
            }
        )
    car = export_car(staging.blockstore, roots)
    manifest = {
        "version": BUNDLE_VERSION,
        "channel": client.framework.channel.name,
        "query": query_text,
        "exporter": client.identity.info().to_dict(),
        "entries": entries,
        "car_sha256": hashlib.sha256(car).hexdigest(),
    }
    manifest_bytes = canonical_json(manifest)
    signature = client.identity.sign(manifest_bytes)
    return (
        encode_varint(len(manifest_bytes))
        + manifest_bytes
        + encode_varint(len(signature))
        + signature
        + car
    )


def import_bundle(
    raw: bytes,
    blockstore: Blockstore | None = None,
    expected_exporter: PublicKey | None = None,
) -> tuple[Bundle, Blockstore]:
    """Verify and unpack a bundle; returns the entries and a blockstore
    holding the (hash-verified) payload blocks."""
    blockstore = blockstore if blockstore is not None else MemoryBlockstore()
    manifest_len, pos = decode_varint(raw)
    manifest_bytes = raw[pos : pos + manifest_len]
    pos += manifest_len
    sig_len, pos = decode_varint(raw, pos)
    signature = raw[pos : pos + sig_len]
    pos += sig_len
    car = raw[pos:]

    manifest = from_canonical_json(manifest_bytes)
    if manifest.get("version") != BUNDLE_VERSION:
        raise StorageError("unsupported bundle version")
    exporter_key = PublicKey.from_hex(manifest["exporter"]["public_key"])
    if expected_exporter is not None and exporter_key != expected_exporter:
        raise SignatureError("bundle exporter is not the expected identity")
    exporter_key.verify(manifest_bytes, signature)

    if hashlib.sha256(car).hexdigest() != manifest["car_sha256"]:
        raise IntegrityError("bundle CAR does not match the signed manifest")
    import_car(blockstore, car)

    fs = UnixFS(blockstore)
    entries = []
    for item in manifest["entries"]:
        record = item["record"]
        data = fs.read_file(CID.parse(record["cid"]))
        actual = hashlib.sha256(data).hexdigest()
        if actual != record["data_hash"]:
            raise IntegrityError(
                f"entry {record['entry_id']}: payload does not match its on-chain hash"
            )
        entries.append(
            BundleEntry(record=record, provenance=tuple(item["provenance"]))
        )
    bundle = Bundle(
        entries=tuple(entries),
        exporter=manifest["exporter"],
        channel=manifest["channel"],
        query_text=manifest["query"],
    )
    return bundle, blockstore
