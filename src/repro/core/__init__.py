"""The framework's public API: :class:`Framework` assembles the whole stack
(Figure 1) and :class:`Client` drives the store and retrieval paths."""

from repro.core.archive import Bundle, BundleEntry, export_bundle, import_bundle
from repro.core.client import Client, RetrievalResult, SubmissionReceipt
from repro.core.framework import Framework, FrameworkConfig
from repro.core.ingest import BatchIngestor, IngestReport

__all__ = [
    "Client",
    "RetrievalResult",
    "SubmissionReceipt",
    "Framework",
    "FrameworkConfig",
    "BatchIngestor",
    "IngestReport",
    "Bundle",
    "BundleEntry",
    "export_bundle",
    "import_bundle",
]
