"""repro — a from-scratch Python reproduction of "A Blockchain-Enabled
Framework for Storage and Retrieval of Social Data" (IPPS 2025).

The package composes an HLF-like permissioned blockchain (`repro.fabric`),
an IPFS-like content-addressed store (`repro.ipfs`), BFT consensus
(`repro.consensus`), a trust engine for untrusted sources (`repro.trust`),
a traffic-vision metadata pipeline (`repro.vision`), and a hybrid
on-chain/off-chain query engine (`repro.query`) behind the high-level API in
`repro.core` (:class:`repro.core.Framework` / :class:`repro.core.Client`).
"""

__version__ = "1.0.0"
