"""Detector evaluation: precision/recall against scene ground truth.

The renderer knows exactly what is in every frame, so detector quality is
measurable, not asserted: per-source-kind precision (detections that
correspond to real vehicles), recall (real vehicles found), classification
accuracy among matched detections, and the class confusion table. These
metrics quantify the Figure 3 story — drone capture costs recall and
classification accuracy, not just confidence — and give trust-threshold
tuning an empirical basis.

Matching is by bounding-box IoU against the frame's truth boxes (greedy,
highest-IoU first), the standard detection-evaluation protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.vision.camera import BBox, Frame
from repro.vision.detector import Detection, SimulatedYolo


def iou(a: tuple[int, int, int, int], b: BBox) -> float:
    """Intersection-over-union of a detection box and a truth box."""
    ax0, ay0, ax1, ay1 = a
    ix0, iy0 = max(ax0, b.x0), max(ay0, b.y0)
    ix1, iy1 = min(ax1, b.x1), min(ay1, b.y1)
    inter = max(0, ix1 - ix0) * max(0, iy1 - iy0)
    if inter == 0:
        return 0.0
    area_a = (ax1 - ax0) * (ay1 - ay0)
    union = area_a + b.area - inter
    return inter / union


@dataclass
class EvalResult:
    """Aggregated detection metrics over a frame set."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    correct_class: int = 0
    confusion: dict[tuple[str, str], int] = field(default_factory=dict)  # (true, predicted)

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def classification_accuracy(self) -> float:
        return self.correct_class / self.true_positives if self.true_positives else 0.0


def evaluate_frame(
    frame: Frame, detections: list[Detection], iou_threshold: float = 0.3
) -> EvalResult:
    """Score one frame's detections against its ground truth."""
    result = EvalResult()
    unmatched_truth = list(frame.truth)
    for det in detections:
        best, best_iou = None, iou_threshold
        for truth in unmatched_truth:
            score = iou(det.bbox, truth)
            if score >= best_iou:
                best, best_iou = truth, score
        if best is None:
            result.false_positives += 1
            continue
        unmatched_truth.remove(best)
        result.true_positives += 1
        true_cls = best.vehicle.vehicle_class
        key = (true_cls, det.vehicle_class)
        result.confusion[key] = result.confusion.get(key, 0) + 1
        if det.vehicle_class == true_cls:
            result.correct_class += 1
    result.false_negatives += len(unmatched_truth)
    return result


def evaluate_frames(
    frames: Iterable[Frame], detector: SimulatedYolo, iou_threshold: float = 0.3
) -> EvalResult:
    """Aggregate :func:`evaluate_frame` across many frames."""
    total = EvalResult()
    for frame in frames:
        partial = evaluate_frame(frame, detector.detect(frame), iou_threshold)
        total.true_positives += partial.true_positives
        total.false_positives += partial.false_positives
        total.false_negatives += partial.false_negatives
        total.correct_class += partial.correct_class
        for key, count in partial.confusion.items():
            total.confusion[key] = total.confusion.get(key, 0) + count
    return total
