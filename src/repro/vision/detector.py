"""Simulated YOLO detector.

The paper runs YOLO over video frames to identify and classify vehicles
with confidence scores (its Figures 2 and 3 are built from those outputs).
We do not need state-of-the-art detection — we need detections whose
*confidence statistics* respond to capture quality the way a real detector's
do. This detector therefore:

* works from the frame's ground-truth boxes (the renderer knows where the
  vehicles are) but *measures the pixels*: the reported color is the mean
  RGB over the box in the actual image, degraded exactly as the image is;
* computes confidence from the physical quality factors — object pixel
  area, blur radius, sensor noise — plus a per-detection stochastic term,
  matching the empirical behaviour that small/blurred/noisy objects score
  lower and wider spread;
* drops detections whose quality falls below a recall threshold and
  misclassifies a fraction of marginal ones, so downstream counts are
  imperfect in the way crowd/drone data is imperfect.

Deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import rng_for
from repro.vision.camera import BBox, Frame
from repro.vision.scene import VEHICLE_CLASSES, VEHICLE_COLORS


@dataclass(frozen=True)
class Detection:
    """One detected object in a frame."""

    vehicle_class: str
    confidence: float
    bbox: tuple[int, int, int, int]
    color_name: str
    color_rgb: tuple[int, int, int]
    true_class: str  # kept for evaluation; a real system wouldn't have it


def _nearest_color(rgb: np.ndarray) -> str:
    names = list(VEHICLE_COLORS)
    palette = np.array([VEHICLE_COLORS[n] for n in names], dtype=np.float32)
    dists = np.linalg.norm(palette - rgb.astype(np.float32), axis=1)
    return names[int(np.argmin(dists))]


class SimulatedYolo:
    """Confidence-calibrated simulated object detector."""

    def __init__(
        self,
        seed: int = 0,
        recall_floor: float = 0.35,
        base_confidence: float = 0.93,
    ) -> None:
        self._rng = rng_for(seed, "detector")
        self.recall_floor = recall_floor
        self.base_confidence = base_confidence

    def _quality(self, frame: Frame, box: BBox) -> float:
        """Image-quality factor in (0, 1] for one object."""
        # Area term: saturates by ~50 px^2; tiny objects hurt most.
        area_term = 1.0 - np.exp(-box.area / 12.0)
        # Blur term: each blur pixel radius costs ~12%.
        blur_term = max(0.25, 1.0 - 0.12 * frame.blur_px)
        # Noise term: sensor noise sigma of 10 costs ~15%.
        noise_term = max(0.5, 1.0 - 0.015 * frame.noise_sigma)
        # Lighting term: contrast loss at night degrades features
        # (environmental factors, paper Figure 3 discussion).
        lighting_term = 0.45 + 0.55 * frame.lighting
        return float(area_term * blur_term * noise_term * lighting_term)

    def detect(self, frame: Frame) -> list[Detection]:
        detections: list[Detection] = []
        for box in frame.truth:
            quality = self._quality(frame, box)
            # Missed detection: probability rises as quality falls.
            if self._rng.random() > (0.55 + 0.45 * quality):
                continue
            confidence = self.base_confidence * quality + float(
                self._rng.normal(0.0, 0.02 + 0.05 * (1.0 - quality))
            )
            confidence = float(np.clip(confidence, 0.05, 0.99))
            if confidence < self.recall_floor:
                continue
            # Misclassification of marginal objects.
            cls = box.vehicle.vehicle_class
            if quality < 0.6 and self._rng.random() < 0.25 * (1.0 - quality):
                others = [c for c in VEHICLE_CLASSES if c != cls]
                cls = str(self._rng.choice(others))
            # Color measured from the actual (degraded) pixels.
            patch = frame.image[box.y0 : box.y1, box.x0 : box.x1]
            mean_rgb = patch.reshape(-1, 3).mean(axis=0)
            detections.append(
                Detection(
                    vehicle_class=cls,
                    confidence=round(confidence, 4),
                    bbox=(box.x0, box.y0, box.x1, box.y1),
                    color_name=_nearest_color(mean_rgb),
                    color_rgb=tuple(int(c) for c in mean_rgb),
                    true_class=box.vehicle.vehicle_class,
                )
            )
        return detections

    def confidence_stats(self, detections: list[Detection]) -> dict:
        if not detections:
            return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
        conf = np.array([d.confidence for d in detections])
        return {
            "n": len(detections),
            "mean": float(conf.mean()),
            "std": float(conf.std()),
            "min": float(conf.min()),
            "max": float(conf.max()),
        }
