"""Vision pipeline substrate: synthetic traffic scenes, static/drone
capture models, a simulated YOLO detector, and Figure-2-style metadata
extraction — the stand-in for the paper's IUDX Bangalore video corpus."""

from repro.vision.camera import BBox, DroneCamera, Frame, StaticCamera
from repro.vision.dataset import N_VIDEOS, TrafficDataset, VideoClip
from repro.vision.detector import Detection, SimulatedYolo
from repro.vision.metadata import MetadataExtractor, MetadataRecord
from repro.vision.eval import EvalResult, evaluate_frame, evaluate_frames
from repro.vision.violations import (
    ViolationDetector,
    ViolationRecord,
    attach_violations,
)
from repro.vision.scene import (
    CLASS_SIZES,
    CLASS_WEIGHTS,
    VEHICLE_CLASSES,
    VEHICLE_COLORS,
    SceneGenerator,
    TrafficScene,
    Vehicle,
)

__all__ = [
    "BBox",
    "DroneCamera",
    "Frame",
    "StaticCamera",
    "N_VIDEOS",
    "TrafficDataset",
    "VideoClip",
    "Detection",
    "SimulatedYolo",
    "MetadataExtractor",
    "MetadataRecord",
    "CLASS_SIZES",
    "CLASS_WEIGHTS",
    "VEHICLE_CLASSES",
    "VEHICLE_COLORS",
    "SceneGenerator",
    "TrafficScene",
    "Vehicle",
    "ViolationDetector",
    "ViolationRecord",
    "attach_violations",
    "EvalResult",
    "evaluate_frame",
    "evaluate_frames",
]
