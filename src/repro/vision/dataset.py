"""IUDX-like dataset generator.

The paper's dataset is "52 traffic videos from static cameras across
Bangalore, sourced from the India Urban Data Exchange (IUDX)", later
contrasted with drone-captured data. This module generates the synthetic
equivalent: 52 seeded camera sites around Bangalore's coordinates, each
producing a short video (a frame sequence over an advancing scene), plus a
matching drone fleet for the Figure 3 comparison. Everything is
reproducible from the dataset seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.util.rng import rng_for
from repro.vision.camera import DroneCamera, Frame, StaticCamera
from repro.vision.scene import SceneGenerator, TrafficScene

N_VIDEOS = 52  # the paper's corpus size


@dataclass(frozen=True)
class VideoClip:
    """One camera's frame sequence with its scene ground truth."""

    video_id: str
    camera_id: str
    source_kind: str
    frames: tuple[Frame, ...]

    def __len__(self) -> int:
        return len(self.frames)


@dataclass
class TrafficDataset:
    """Seeded generator of static-camera and drone clips."""

    seed: int = 42
    n_videos: int = N_VIDEOS
    frames_per_video: int = 10
    frame_dt: float = 0.5
    frame_width: int = 192
    frame_height: int = 108
    _scene_gen: SceneGenerator = field(init=False)

    def __post_init__(self) -> None:
        self._scene_gen = SceneGenerator(seed=self.seed)

    def _clip(self, camera, video_id: str, scene: TrafficScene) -> VideoClip:
        frames = []
        for _ in range(self.frames_per_video):
            frames.append(camera.capture(scene))
            scene = scene.advance(self.frame_dt)
        return VideoClip(
            video_id=video_id,
            camera_id=camera.camera_id,
            source_kind=frames[0].source_kind,
            frames=tuple(frames),
        )

    def static_clip(self, index: int) -> VideoClip:
        """The index-th static-camera video (0 <= index < n_videos)."""
        if not 0 <= index < self.n_videos:
            raise IndexError(f"video index {index} out of range")
        rng = rng_for(self.seed, "dataset", "static", str(index))
        camera = StaticCamera(
            camera_id=f"cam-{index:02d}",
            width=self.frame_width,
            height=self.frame_height,
            seed=int(rng.integers(0, 2**31)),
        )
        # Spread sites around central Bangalore.
        lat = 12.9 + float(rng.uniform(0, 0.15))
        lon = 77.55 + float(rng.uniform(0, 0.12))
        scene = self._scene_gen.scene(f"static-{index}", timestamp=1000.0 * index, lat=lat, lon=lon)
        return self._clip(camera, f"video-static-{index:02d}", scene)

    def drone_clip(self, index: int) -> VideoClip:
        if not 0 <= index < self.n_videos:
            raise IndexError(f"video index {index} out of range")
        rng = rng_for(self.seed, "dataset", "drone", str(index))
        camera = DroneCamera(
            camera_id=f"drone-{index:02d}",
            width=self.frame_width,
            height=self.frame_height,
            seed=int(rng.integers(0, 2**31)),
        )
        lat = 12.9 + float(rng.uniform(0, 0.15))
        lon = 77.55 + float(rng.uniform(0, 0.12))
        scene = self._scene_gen.scene(f"drone-{index}", timestamp=1000.0 * index, lat=lat, lon=lon)
        return self._clip(camera, f"video-drone-{index:02d}", scene)

    def static_clips(self, n: int | None = None) -> Iterator[VideoClip]:
        for i in range(n if n is not None else self.n_videos):
            yield self.static_clip(i)

    def drone_clips(self, n: int | None = None) -> Iterator[VideoClip]:
        for i in range(n if n is not None else self.n_videos):
            yield self.drone_clip(i)
