"""Synthetic traffic scenes: the stand-in for the IUDX Bangalore videos.

The paper's dataset is 52 traffic videos from static cameras across
Bangalore; we cannot ship those, so this module generates seeded synthetic
road scenes with the properties the evaluation actually uses: multiple
vehicle classes with realistic mix ratios, distinct colors, positions along
lanes, and motion over time. A :class:`TrafficScene` is pure ground truth —
cameras (:mod:`repro.vision.camera`) render it into pixel frames, and the
simulated detector recovers annotations from those frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.util.rng import derive_seed, rng_for

# Vehicle mix calibrated to Indian urban traffic (two-wheeler heavy).
VEHICLE_CLASSES = ("car", "two-wheeler", "truck", "bus", "auto-rickshaw")
CLASS_WEIGHTS = (0.38, 0.34, 0.10, 0.06, 0.12)

# Nominal (width, height) of each class in scene units (meters).
CLASS_SIZES = {
    "car": (4.2, 1.8),
    "two-wheeler": (1.9, 0.8),
    "truck": (8.5, 2.5),
    "bus": (11.0, 2.6),
    "auto-rickshaw": (2.7, 1.4),
}

# Common vehicle paint colors (RGB), sampled per vehicle.
VEHICLE_COLORS = {
    "white": (235, 235, 235),
    "silver": (190, 190, 195),
    "black": (30, 30, 32),
    "red": (190, 40, 40),
    "blue": (40, 70, 180),
    "yellow": (230, 200, 40),
    "green": (40, 140, 60),
}
COLOR_WEIGHTS = (0.30, 0.22, 0.18, 0.12, 0.10, 0.05, 0.03)


@dataclass(frozen=True)
class Vehicle:
    """Ground-truth state of one vehicle in the scene."""

    vehicle_id: int
    vehicle_class: str
    color_name: str
    rgb: tuple[int, int, int]
    x: float  # meters along the road
    lane: int
    speed: float  # m/s

    @property
    def size(self) -> tuple[float, float]:
        return CLASS_SIZES[self.vehicle_class]


@dataclass(frozen=True)
class TrafficScene:
    """One instant of a road segment."""

    scene_id: str
    road_length: float
    n_lanes: int
    vehicles: tuple[Vehicle, ...]
    timestamp: float
    # Where this road is on the map (center point).
    lat: float = 12.9716
    lon: float = 77.5946

    def advance(self, dt: float) -> "TrafficScene":
        """Move every vehicle forward; vehicles wrap around the segment
        (a stationary camera sees a stationary flow distribution)."""
        moved = tuple(
            replace(v, x=(v.x + v.speed * dt) % self.road_length)
            for v in self.vehicles
        )
        return replace(self, vehicles=moved, timestamp=self.timestamp + dt)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.vehicles:
            out[v.vehicle_class] = out.get(v.vehicle_class, 0) + 1
        return out


@dataclass
class SceneGenerator:
    """Seeded factory of traffic scenes.

    Density is vehicles per 100 m per lane; Bangalore junction footage sits
    around 2-5 in the daytime clips the paper uses.
    """

    seed: int = 0
    road_length: float = 120.0
    n_lanes: int = 3
    density: float = 3.0
    _counter: int = field(default=0, init=False)

    def scene(self, scene_id: str, timestamp: float = 0.0, lat: float | None = None, lon: float | None = None) -> TrafficScene:
        rng = rng_for(self.seed, "scene", scene_id)
        expected = self.density * (self.road_length / 100.0) * self.n_lanes
        n_vehicles = int(rng.poisson(expected))
        vehicles = []
        for i in range(n_vehicles):
            cls = str(rng.choice(VEHICLE_CLASSES, p=CLASS_WEIGHTS))
            color_name = str(
                rng.choice(list(VEHICLE_COLORS), p=COLOR_WEIGHTS)
            )
            vehicles.append(
                Vehicle(
                    vehicle_id=i,
                    vehicle_class=cls,
                    color_name=color_name,
                    rgb=VEHICLE_COLORS[color_name],
                    x=float(rng.uniform(0, self.road_length)),
                    lane=int(rng.integers(0, self.n_lanes)),
                    speed=float(rng.uniform(2.0, 14.0)),
                )
            )
        return TrafficScene(
            scene_id=scene_id,
            road_length=self.road_length,
            n_lanes=self.n_lanes,
            vehicles=tuple(vehicles),
            timestamp=timestamp,
            # Stable per-scene jitter (Python's hash() is salted per process).
            lat=lat if lat is not None else 12.9716 + (derive_seed(0, scene_id) % 100) * 1e-4,
            lon=lon if lon is not None else 77.5946 + (derive_seed(1, scene_id) % 97) * 1e-4,
        )
