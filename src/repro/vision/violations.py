"""Traffic violation detection from captured footage.

The paper's application layer records "metadata (e.g., timestamps,
locations, vehicle types, violations) … on the blockchain" and motivates
the whole system with traffic enforcement. This module produces those
violation records from video clips:

* **speeding** — vehicle speed estimated from bounding-box displacement
  between consecutive frames (center shift × ground-sampling distance ÷
  frame gap). The estimate inherits the capture's imperfections: drone
  jitter and altitude changes perturb the measured displacement, so drone
  estimates are noisier than static-camera ones — enforcement-grade
  evidence quality differs by source, as the paper's Figure 3 discussion
  implies.
* **restricted-class** — a vehicle class present in a zone that bans it
  (e.g. trucks during daytime hours), decided from the detected class.

Violations attach to the frame's metadata record (see
:func:`attach_violations`) and are indexed on-chain by the Data Upload
chaincode for "all speeding events on camera X" queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vision.camera import Frame
from repro.vision.dataset import VideoClip

KMH_PER_MS = 3.6


@dataclass(frozen=True)
class ViolationRecord:
    """One detected violation, ready for on-chain metadata."""

    violation_type: str  # "speeding" | "restricted-class"
    vehicle_class: str
    frame_id: str
    measured: float  # measured speed (km/h) or 0 for class violations
    limit: float     # the limit that was exceeded
    confidence: float

    def to_dict(self) -> dict:
        return {
            "violation_type": self.violation_type,
            "vehicle_class": self.vehicle_class,
            "frame_id": self.frame_id,
            "measured": round(self.measured, 2),
            "limit": self.limit,
            "confidence": round(self.confidence, 4),
        }


@dataclass
class ViolationDetector:
    """Detects violations over a clip's frame sequence."""

    speed_limit_kmh: float = 40.0
    restricted_classes: frozenset[str] = field(default_factory=frozenset)
    # Speed estimates within this margin of the limit are not charged —
    # measurement noise must not generate tickets.
    enforcement_margin_kmh: float = 5.0

    def detect_clip(self, clip: VideoClip) -> list[ViolationRecord]:
        """All violations across the clip, frame-pair by frame-pair."""
        out: list[ViolationRecord] = []
        seen_restricted: set[int] = set()
        for prev, curr in zip(clip.frames, clip.frames[1:]):
            out.extend(self._speeding(prev, curr))
        for frame in clip.frames:
            out.extend(self._restricted(frame, seen_restricted))
        return out

    # -- speeding -----------------------------------------------------------

    def _speeding(self, prev: Frame, curr: Frame) -> list[ViolationRecord]:
        dt = curr.timestamp - prev.timestamp
        if dt <= 0:
            return []
        prev_boxes = {b.vehicle.vehicle_id: b for b in prev.truth}
        out = []
        for box in curr.truth:
            earlier = prev_boxes.get(box.vehicle.vehicle_id)
            if earlier is None:
                continue  # entered the frame; no displacement baseline
            # Measured displacement of the bbox center, in meters. Each
            # frame's own GSD applies — a drone that climbed between frames
            # biases the estimate, which is the point.
            cx_prev = (earlier.x0 + earlier.x1) / 2 * prev.meters_per_px
            cx_curr = (box.x0 + box.x1) / 2 * curr.meters_per_px
            displacement = abs(cx_curr - cx_prev)
            if displacement > 60.0:  # wrap-around of the looped road segment
                continue
            speed_kmh = displacement / dt * KMH_PER_MS
            if speed_kmh < self.speed_limit_kmh + self.enforcement_margin_kmh:
                continue
            out.append(
                ViolationRecord(
                    violation_type="speeding",
                    vehicle_class=box.vehicle.vehicle_class,
                    frame_id=curr.frame_id,
                    measured=speed_kmh,
                    limit=self.speed_limit_kmh,
                    confidence=self._evidence_confidence(curr),
                )
            )
        return out

    # -- restricted classes -----------------------------------------------------

    def _restricted(self, frame: Frame, seen: set[int]) -> list[ViolationRecord]:
        out = []
        for box in frame.truth:
            if box.vehicle.vehicle_class not in self.restricted_classes:
                continue
            if box.vehicle.vehicle_id in seen:
                continue  # one citation per vehicle per clip
            seen.add(box.vehicle.vehicle_id)
            out.append(
                ViolationRecord(
                    violation_type="restricted-class",
                    vehicle_class=box.vehicle.vehicle_class,
                    frame_id=frame.frame_id,
                    measured=0.0,
                    limit=0.0,
                    confidence=self._evidence_confidence(frame),
                )
            )
        return out

    @staticmethod
    def _evidence_confidence(frame: Frame) -> float:
        """How much an enforcement action can lean on this capture."""
        blur_penalty = 0.10 * frame.blur_px
        noise_penalty = 0.01 * frame.noise_sigma
        return max(0.2, min(0.99, 0.97 - blur_penalty - noise_penalty))


def attach_violations(metadata: dict, violations: list[ViolationRecord], frame_id: str) -> dict:
    """Return a copy of ``metadata`` carrying this frame's violations."""
    mine = [v.to_dict() for v in violations if v.frame_id == frame_id]
    out = dict(metadata)
    out["violations"] = mine
    return out
