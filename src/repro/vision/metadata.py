"""Metadata extraction (paper Figure 2 / Figure 4).

Turns a frame plus its detections into the on-chain metadata record the
paper's Figure 2 illustrates: camera id, frame id, timestamp, location
coordinates, and per-vehicle class/color/confidence entries with aggregate
counts. Figure 4 times this extraction against the serialized record size;
the cost here genuinely varies with detection count, coordinate precision,
and JSON encoding — the same reasons the paper found extraction time "not
strictly linear with file size".
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass

from repro.vision.camera import Frame
from repro.vision.detector import Detection


@dataclass(frozen=True)
class MetadataRecord:
    """The extracted record; ``to_json`` is the on-chain form."""

    camera_id: str
    frame_id: str
    source_kind: str
    timestamp: float
    lat: float
    lon: float
    detections: tuple[dict, ...]
    counts: dict
    data_hash: str  # sha-256 of the raw frame bytes (integrity anchor)
    extraction_ms: float

    def to_dict(self) -> dict:
        return {
            "camera_id": self.camera_id,
            "frame_id": self.frame_id,
            "source_id": self.camera_id,
            "source_kind": self.source_kind,
            "timestamp": self.timestamp,
            "location": {"lat": round(self.lat, 6), "lon": round(self.lon, 6)},
            "detections": list(self.detections),
            "counts": self.counts,
            "data_hash": self.data_hash,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def size_bytes(self) -> int:
        return len(self.to_json().encode())


class MetadataExtractor:
    """Extracts Figure-2-style records from frames."""

    def extract(self, frame: Frame, detections: list[Detection]) -> MetadataRecord:
        start = time.perf_counter()
        data_hash = hashlib.sha256(frame.to_bytes()).hexdigest()
        det_records = tuple(
            {
                "vehicle_class": d.vehicle_class,
                "confidence": d.confidence,
                "color": d.color_name,
                "bbox": list(d.bbox),
            }
            for d in detections
        )
        counts: dict[str, int] = {}
        for d in detections:
            counts[d.vehicle_class] = counts.get(d.vehicle_class, 0) + 1
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return MetadataRecord(
            camera_id=frame.camera_id,
            frame_id=frame.frame_id,
            source_kind=frame.source_kind,
            timestamp=frame.timestamp,
            lat=frame.lat,
            lon=frame.lon,
            detections=det_records,
            counts=counts,
            data_hash=data_hash,
            extraction_ms=elapsed_ms,
        )

    def to_observation(self, record: MetadataRecord):
        """Bridge into the trust engine's cross-validation space."""
        from repro.trust.crossval import Observation

        return Observation(
            source_id=record.camera_id,
            lat=record.lat,
            lon=record.lon,
            timestamp=record.timestamp,
            counts=dict(record.counts),
        )
