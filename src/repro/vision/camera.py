"""Capture models: static roadside cameras versus drones.

Figure 3 of the paper compares detection-confidence distributions between
static-camera and drone-captured footage and attributes the drone's lower,
noisier scores to "motion blur, altitude changes, and environmental
factors". These capture models reproduce exactly those causes:

* :class:`StaticCamera` — fixed viewpoint, stable ground sampling distance,
  small constant sensor noise, negligible blur.
* :class:`DroneCamera` — altitude follows a slow random walk (changing the
  pixels-per-meter scale), platform motion adds a per-frame blur kernel,
  and gusts add jitter to the framing.

Rendering is real image synthesis on NumPy arrays — vehicles become colored
rectangles over a road background, blur is an actual separable box filter,
noise is sampled per pixel — so the downstream detector and the metadata
timing benches (Figures 2 and 4) operate on genuine pixel data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import rng_for
from repro.vision.scene import TrafficScene, Vehicle

ROAD_GRAY = 90
SHOULDER_GREEN = (60, 110, 60)
LANE_MARK = 200


@dataclass(frozen=True)
class BBox:
    """Pixel-space bounding box (half-open) with its ground-truth vehicle."""

    x0: int
    y0: int
    x1: int
    y1: int
    vehicle: Vehicle

    @property
    def area(self) -> int:
        return max(0, self.x1 - self.x0) * max(0, self.y1 - self.y0)


@dataclass(frozen=True)
class Frame:
    """A rendered capture: pixels + ground truth + capture conditions."""

    camera_id: str
    frame_id: str
    image: np.ndarray  # HxWx3 uint8
    truth: tuple[BBox, ...]
    timestamp: float
    lat: float
    lon: float
    blur_px: float        # effective blur kernel radius applied
    noise_sigma: float    # sensor noise std-dev
    meters_per_px: float  # ground sampling distance
    source_kind: str      # "static" | "drone"
    lighting: float = 1.0  # 1.0 = full daylight, ~0.3 = night

    def to_bytes(self) -> bytes:
        """Raw pixel payload (what gets stored in IPFS)."""
        return self.image.tobytes()


def _box_blur(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur via cumulative sums — O(pixels), no Python loops."""
    if radius <= 0:
        return image
    out = image.astype(np.float32)
    k = 2 * radius + 1
    for axis in (0, 1):
        padded = np.concatenate(
            [
                np.repeat(out.take([0], axis=axis), radius, axis=axis),
                out,
                np.repeat(out.take([-1], axis=axis), radius, axis=axis),
            ],
            axis=axis,
        )
        csum = np.cumsum(padded, axis=axis, dtype=np.float32)
        lead = csum.take(range(k - 1, padded.shape[axis]), axis=axis)
        lag = np.concatenate(
            [
                np.zeros_like(csum.take([0], axis=axis)),
                csum.take(range(0, padded.shape[axis] - k), axis=axis),
            ],
            axis=axis,
        )
        out = (lead - lag) / k
    return np.clip(out, 0, 255).astype(np.uint8)


class _BaseCamera:
    def __init__(
        self,
        camera_id: str,
        width: int = 192,
        height: int = 108,
        seed: int = 0,
    ) -> None:
        self.camera_id = camera_id
        self.width = width
        self.height = height
        self._rng = rng_for(seed, "camera", camera_id)
        self._frame_counter = 0

    def _render(
        self,
        scene: TrafficScene,
        meters_per_px: float,
        offset_px: tuple[float, float],
        blur_radius: int,
        noise_sigma: float,
        source_kind: str,
        lighting: float = 1.0,
    ) -> Frame:
        img = np.empty((self.height, self.width, 3), dtype=np.uint8)
        img[:] = SHOULDER_GREEN
        # Road band across the middle; lanes stacked vertically.
        lane_h_m = 3.5
        road_h_px = max(6, int(scene.n_lanes * lane_h_m / meters_per_px))
        road_top = (self.height - road_h_px) // 2
        img[road_top : road_top + road_h_px, :] = ROAD_GRAY
        # Lane markings.
        for lane in range(1, scene.n_lanes):
            y = road_top + int(lane * lane_h_m / meters_per_px)
            if 0 <= y < self.height:
                img[y, ::8] = LANE_MARK

        truth: list[BBox] = []
        for v in scene.vehicles:
            w_m, h_m = v.size
            x0 = int(v.x / meters_per_px + offset_px[0])
            y0 = road_top + int((v.lane * lane_h_m + (lane_h_m - h_m) / 2) / meters_per_px + offset_px[1])
            x1 = x0 + max(1, int(w_m / meters_per_px))
            y1 = y0 + max(1, int(h_m / meters_per_px))
            cx0, cy0 = max(0, x0), max(0, y0)
            cx1, cy1 = min(self.width, x1), min(self.height, y1)
            if cx1 <= cx0 or cy1 <= cy0:
                continue  # out of frame
            img[cy0:cy1, cx0:cx1] = v.rgb
            truth.append(BBox(x0=cx0, y0=cy0, x1=cx1, y1=cy1, vehicle=v))

        if lighting < 1.0:
            # Low light: contrast collapses toward dark gray, and the sensor
            # gains up, amplifying noise (modeled below via the sigma boost).
            img = (img.astype(np.float32) * lighting).astype(np.uint8)
            noise_sigma = noise_sigma * (1.0 + 2.0 * (1.0 - lighting))
        img = _box_blur(img, blur_radius)
        if noise_sigma > 0:
            noise = self._rng.normal(0.0, noise_sigma, size=img.shape)
            img = np.clip(img.astype(np.float32) + noise, 0, 255).astype(np.uint8)

        self._frame_counter += 1
        return Frame(
            camera_id=self.camera_id,
            frame_id=f"{self.camera_id}-f{self._frame_counter:06d}",
            image=img,
            truth=tuple(truth),
            timestamp=scene.timestamp,
            lat=scene.lat,
            lon=scene.lon,
            blur_px=float(blur_radius),
            noise_sigma=float(noise_sigma),
            meters_per_px=meters_per_px,
            source_kind=source_kind,
            lighting=float(lighting),
        )


class StaticCamera(_BaseCamera):
    """Pole-mounted camera: constant geometry, low noise, no motion blur."""

    def __init__(
        self,
        camera_id: str,
        meters_per_px: float = 0.25,
        noise_sigma: float = 2.0,
        lighting: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(camera_id, **kwargs)
        self.meters_per_px = meters_per_px
        self.noise_sigma = noise_sigma
        if not 0.05 <= lighting <= 1.0:
            raise ValueError("lighting must be in [0.05, 1.0]")
        self.lighting = lighting

    def capture(self, scene: TrafficScene) -> Frame:
        return self._render(
            scene,
            meters_per_px=self.meters_per_px,
            offset_px=(0.0, 0.0),
            blur_radius=0,
            noise_sigma=self.noise_sigma,
            source_kind="static",
            lighting=self.lighting,
        )


class DroneCamera(_BaseCamera):
    """Drone: altitude random-walk, speed-dependent motion blur, gust jitter.

    Altitude maps to ground sampling distance (higher → fewer pixels per
    vehicle); platform speed maps to a blur radius; gusts shift the framing
    a few pixels per frame. All three are the degradations the paper blames
    for the drone curve in Figure 3.
    """

    def __init__(
        self,
        camera_id: str,
        base_altitude_m: float = 60.0,
        altitude_sigma_m: float = 6.0,
        max_speed_ms: float = 8.0,
        noise_sigma: float = 5.0,
        lighting: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(camera_id, **kwargs)
        self.base_altitude_m = base_altitude_m
        self.altitude_sigma_m = altitude_sigma_m
        self.max_speed_ms = max_speed_ms
        self.noise_sigma = noise_sigma
        if not 0.05 <= lighting <= 1.0:
            raise ValueError("lighting must be in [0.05, 1.0]")
        self.lighting = lighting
        self._altitude = base_altitude_m

    def capture(self, scene: TrafficScene) -> Frame:
        # Altitude random walk, mean-reverting toward base.
        self._altitude += float(
            self._rng.normal(0.15 * (self.base_altitude_m - self._altitude), self.altitude_sigma_m)
        )
        self._altitude = float(np.clip(self._altitude, 25.0, 140.0))
        # GSD grows linearly with altitude (pinhole geometry).
        meters_per_px = 0.25 * (self._altitude / 60.0)
        speed = float(self._rng.uniform(0.0, self.max_speed_ms))
        blur_radius = int(round(speed / 3.0))  # ~1 px blur per 3 m/s
        jitter = self._rng.normal(0.0, 2.0, size=2)
        return self._render(
            scene,
            meters_per_px=meters_per_px,
            offset_px=(float(jitter[0]), float(jitter[1])),
            blur_radius=blur_radius,
            noise_sigma=self.noise_sigma,
            source_kind="drone",
            lighting=self.lighting,
        )
