"""Data generation for every figure in the paper's evaluation (§IV).

Each ``figN_*`` function produces the numbers behind the corresponding
figure; the ``benchmarks/bench_figN_*.py`` files time the underlying
operations with pytest-benchmark and render these series as tables.

The paper has no numbered tables; Figures 2–6 are the complete set of
evaluation artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import Client, Framework, FrameworkConfig
from repro.crypto.cid import CID
from repro.trust import SourceTier
from repro.vision import (
    MetadataExtractor,
    SimulatedYolo,
    TrafficDataset,
)
from repro.workloads.filesizes import DEFAULT_SIZES, payload


# ---------------------------------------------------------------------------
# Figure 2: sample metadata record
# ---------------------------------------------------------------------------


def fig2_sample_record(seed: int = 7) -> dict:
    """One extracted metadata record, as the paper's Figure 2 illustrates."""
    dataset = TrafficDataset(seed=seed, frames_per_video=1, n_videos=1)
    frame = dataset.static_clip(0).frames[0]
    detections = SimulatedYolo(seed=seed).detect(frame)
    return MetadataExtractor().extract(frame, detections).to_dict()


# ---------------------------------------------------------------------------
# Figure 3: confidence scores, static vs drone
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfidenceSeries:
    kind: str
    confidences: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.confidences)) if self.confidences else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.confidences)) if self.confidences else 0.0


def fig3_confidence(
    n_videos: int = 12,
    frames_per_video: int = 4,
    seed: int = 7,
    include_night: bool = False,
) -> dict[str, ConfidenceSeries]:
    """Per-detection confidences for static and drone capture of the
    synthetic corpus. Expected shape: static mean > drone mean, static std
    < drone std (the paper's stability claim). With ``include_night`` the
    environmental-factor series (lighting 0.3) are added."""
    dataset = TrafficDataset(seed=seed, frames_per_video=frames_per_video, n_videos=n_videos)
    detector = SimulatedYolo(seed=seed)
    series = {}
    for kind, clips in (
        ("static", dataset.static_clips(n_videos)),
        ("drone", dataset.drone_clips(n_videos)),
    ):
        confs: list[float] = []
        for clip in clips:
            for frame in clip.frames:
                confs += [d.confidence for d in detector.detect(frame)]
        series[kind] = ConfidenceSeries(kind=kind, confidences=tuple(confs))
    if include_night:
        series.update(_fig3_night_series(n_videos, frames_per_video, seed, detector))
    return series


def _fig3_night_series(
    n_videos: int, frames_per_video: int, seed: int, detector: SimulatedYolo
) -> dict[str, ConfidenceSeries]:
    from repro.util.rng import rng_for
    from repro.vision import DroneCamera, SceneGenerator, StaticCamera

    gen = SceneGenerator(seed=seed)
    out = {}
    for kind, make_camera in (
        ("static-night", lambda i, s: StaticCamera(f"ncam-{i}", lighting=0.3, seed=s)),
        ("drone-night", lambda i, s: DroneCamera(f"ndrone-{i}", lighting=0.3, seed=s)),
    ):
        confs: list[float] = []
        for i in range(n_videos):
            camera = make_camera(i, int(rng_for(seed, "night", kind, str(i)).integers(0, 2**31)))
            scene = gen.scene(f"night-{kind}-{i}", timestamp=1000.0 * i)
            for _ in range(frames_per_video):
                confs += [d.confidence for d in detector.detect(camera.capture(scene))]
                scene = scene.advance(0.5)
        out[kind] = ConfidenceSeries(kind=kind, confidences=tuple(confs))
    return out


# ---------------------------------------------------------------------------
# Figure 4: metadata extraction time vs record size
# ---------------------------------------------------------------------------


def fig4_extraction_scatter(n_frames: int = 60, seed: int = 7) -> list[tuple[int, float]]:
    """(record size bytes, extraction seconds) per frame — the scatter of
    Figure 4. Sizes cluster small (most records < 1 KB) and time is not a
    strict function of size (it tracks detection count and encoding)."""
    dataset = TrafficDataset(
        seed=seed, frames_per_video=3, n_videos=max(1, n_frames // 3)
    )
    detector = SimulatedYolo(seed=seed)
    extractor = MetadataExtractor()
    points: list[tuple[int, float]] = []
    for clip in dataset.static_clips(max(1, n_frames // 3)):
        for frame in clip.frames:
            detections = detector.detect(frame)
            start = time.perf_counter()
            record = extractor.extract(frame, detections)
            elapsed = time.perf_counter() - start
            points.append((record.size_bytes(), elapsed))
            if len(points) >= n_frames:
                return points
    return points


# ---------------------------------------------------------------------------
# Figures 5 and 6: storage / retrieval time vs file size,
# with and without blockchain overhead
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HybridTiming:
    size: int
    ipfs_only_s: float
    with_blockchain_s: float

    @property
    def overhead_s(self) -> float:
        return self.with_blockchain_s - self.ipfs_only_s


def _storage_framework(chunk_size: int = 64 * 1024) -> Framework:
    return Framework(
        FrameworkConfig(consensus="bft", n_ipfs_nodes=2, chunk_size=chunk_size)
    )


def fig5_storage_times(
    sizes=DEFAULT_SIZES, repeats: int = 3, seed: int = 0, framework: Framework | None = None
) -> list[HybridTiming]:
    """Store files of each size to IPFS alone, and through the full store
    path (IPFS + metadata transaction through BFT ordering + commit)."""
    framework = framework or _storage_framework()
    client = Client(framework, framework.register_source("bench-cam", tier=SourceTier.TRUSTED))
    out = []
    for size in sizes:
        ipfs_samples, chain_samples = [], []
        for r in range(repeats):
            data_a = payload(size, seed=seed, label=f"fig5-ipfs-{r}")
            start = time.perf_counter()
            framework.ipfs.add(data_a)
            ipfs_samples.append(time.perf_counter() - start)

            data_b = payload(size, seed=seed, label=f"fig5-chain-{r}")
            start = time.perf_counter()
            client.submit(data_b, {"timestamp": float(size + r), "detections": []})
            chain_samples.append(time.perf_counter() - start)
        out.append(
            HybridTiming(
                size=size,
                ipfs_only_s=float(np.median(ipfs_samples)),
                with_blockchain_s=float(np.median(chain_samples)),
            )
        )
    return out


def fig6_retrieval_times(
    sizes=DEFAULT_SIZES, repeats: int = 3, seed: int = 1, framework: Framework | None = None
) -> list[HybridTiming]:
    """Retrieve files of each size by bare CID from IPFS, and through the
    full retrieval path (metadata from the ledger + IPFS fetch + hash
    verification). Reads never touch consensus — the paper's no-gas-cost
    observation — so the overhead stays near-constant."""
    framework = framework or _storage_framework()
    client = Client(framework, framework.register_source("bench-ret", tier=SourceTier.TRUSTED))
    out = []
    for size in sizes:
        data = payload(size, seed=seed, label="fig6")
        receipt = client.submit(data, {"timestamp": float(size), "detections": []})
        cid = CID.parse(receipt.cid)
        reader = framework.ipfs  # direct IPFS path

        ipfs_samples, chain_samples = [], []
        for _ in range(repeats):
            start = time.perf_counter()
            fetched = reader.cat(cid)
            ipfs_samples.append(time.perf_counter() - start)
            assert fetched == data

            start = time.perf_counter()
            row = client.engine.get(receipt.entry_id, fetch_data=True, verify=True)
            chain_samples.append(time.perf_counter() - start)
            assert row.data == data
        out.append(
            HybridTiming(
                size=size,
                ipfs_only_s=float(np.median(ipfs_samples)),
                with_blockchain_s=float(np.median(chain_samples)),
            )
        )
    return out
