"""Benchmark harness: timers, table rendering, and per-figure data
generation for the paper's evaluation (Figures 2–6)."""

from repro.bench.figures import (
    ConfidenceSeries,
    HybridTiming,
    fig2_sample_record,
    fig3_confidence,
    fig4_extraction_scatter,
    fig5_storage_times,
    fig6_retrieval_times,
)
from repro.bench.report import (
    emit,
    emit_json,
    format_table,
    human_size,
    results_dir,
    series_stats,
)
from repro.bench.timer import Timing, measure

__all__ = [
    "results_dir",
    "ConfidenceSeries",
    "HybridTiming",
    "fig2_sample_record",
    "fig3_confidence",
    "fig4_extraction_scatter",
    "fig5_storage_times",
    "fig6_retrieval_times",
    "emit",
    "emit_json",
    "format_table",
    "human_size",
    "series_stats",
    "Timing",
    "measure",
]
