"""Text rendering of benchmark series: the rows/series each figure reports.

Every figure bench both prints its table and writes it under
``benchmarks/results/`` so a run leaves regeneration artifacts on disk —
a human-readable ``<name>.txt`` and, via :func:`emit_json`, a
machine-readable ``BENCH_<name>.json`` with summary statistics per series
for downstream tooling (regression tracking, plotting).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Mapping, Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def results_dir() -> Path:
    """Where bench artifacts land: ``$REPRO_BENCH_DIR`` or the repo default.

    The override lets a CI job (or `repro bench-diff` workflows generally)
    write a *fresh* run to a scratch directory and compare it against the
    checked-in baselines without touching them.
    """
    override = os.environ.get("REPRO_BENCH_DIR")
    return Path(override) if override else RESULTS_DIR


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def emit(name: str, text: str) -> Path:
    """Print a table and persist it to benchmarks/results/<name>.txt."""
    print("\n" + text + "\n")
    out = results_dir()
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def series_stats(values: Sequence[float]) -> dict:
    """Summary statistics for one series of measurements."""
    vals = sorted(float(v) for v in values)
    n = len(vals)
    if n == 0:
        return {"n": 0, "mean": None, "std": None, "median": None, "min": None, "max": None}
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    mid = n // 2
    median = vals[mid] if n % 2 else (vals[mid - 1] + vals[mid]) / 2
    return {
        "n": n,
        "mean": mean,
        "std": math.sqrt(var),
        "median": median,
        "min": vals[0],
        "max": vals[-1],
    }


def emit_json(
    name: str,
    series: Mapping[str, Sequence[float]],
    meta: Mapping[str, object] | None = None,
    seed: int | None = None,
) -> Path:
    """Persist benchmark series to ``benchmarks/results/BENCH_<name>.json``.

    ``series`` maps a series name (e.g. ``"storage_1MiB_ipfs_only_s"``) to
    its raw measurements; each gets mean/std/median summary statistics so
    downstream tooling never re-derives them. The document is the v2 BENCH
    envelope (:mod:`repro.obs.benchtrend`): schema version, ``seed``, and a
    config fingerprint, so `repro bench-diff` can compare runs. Set
    ``REPRO_BENCH_HISTORY=1`` to also append the envelope to the
    append-only history store under ``benchmarks/results/history/``.
    """
    from repro.obs.benchtrend import make_envelope, record_history

    doc = make_envelope(
        name,
        {
            key: {**series_stats(vals), "values": [float(v) for v in vals]}
            for key, vals in series.items()
        },
        meta=meta,
        seed=seed,
    )
    out = results_dir()
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    if os.environ.get("REPRO_BENCH_HISTORY"):
        record_history(doc, out)
    return path


def human_size(n_bytes: int) -> str:
    if n_bytes >= 1 << 20:
        return f"{n_bytes / (1 << 20):.0f} MiB"
    if n_bytes >= 1 << 10:
        return f"{n_bytes / (1 << 10):.0f} KiB"
    return f"{n_bytes} B"
