"""Text rendering of benchmark series: the rows/series each figure reports.

Every figure bench both prints its table and writes it under
``benchmarks/results/`` so a run leaves regeneration artifacts on disk.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * (len(widths) - 1))]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)


def emit(name: str, text: str) -> Path:
    """Print a table and persist it to benchmarks/results/<name>.txt."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def human_size(n_bytes: int) -> str:
    if n_bytes >= 1 << 20:
        return f"{n_bytes / (1 << 20):.0f} MiB"
    if n_bytes >= 1 << 10:
        return f"{n_bytes / (1 << 10):.0f} KiB"
    return f"{n_bytes} B"
