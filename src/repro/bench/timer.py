"""Timing utilities for the figure-regeneration harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Timing:
    """Summary statistics of repeated timed runs (seconds)."""

    samples: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples))

    @property
    def median(self) -> float:
        return float(np.median(self.samples))

    @property
    def minimum(self) -> float:
        return float(np.min(self.samples))


def measure(fn: Callable[[], object], repeat: int = 5, warmup: int = 1) -> Timing:
    """Time ``fn`` ``repeat`` times after ``warmup`` discarded runs."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Timing(samples=tuple(samples))
