"""Endorsement-divergence sanitizer (SAN301).

The linter catches the *spellable* determinism bugs; this catches the rest.
After a peer endorses a proposal, the sanitizer re-simulates the same
proposal on a second, fresh stub against the same world state and diffs the
two outcomes. A deterministic chaincode must produce byte-identical
read/write sets, the same response string, and the same success flag — any
difference is nondeterminism that would (with one endorser per org) slip
straight past :meth:`Channel.assemble`'s cross-endorser digest comparison
and corrupt the ledger's trust story.

Simulation never mutates the live state (writes buffer in the stub), so the
re-run is side-effect-free and safe on a live peer.
"""

from __future__ import annotations

from .rules import Finding


def _rw_summary(rwset) -> str:
    return (
        f"{len(rwset.reads)} reads/{len(rwset.writes)} writes, "
        f"digest {rwset.digest()[:16]}"
    )


def check_endorsement(peer, proposal, response) -> list[Finding]:
    """Re-simulate *proposal* on *peer* and diff against *response*."""
    rwset2, response2, success2 = peer.resimulate(proposal)
    location = f"chaincode:{proposal.chaincode}"
    findings: list[Finding] = []

    if success2 != response.success:
        findings.append(
            Finding.for_rule(
                "SAN301", location, 0, 0,
                f"tx {proposal.tx_id[:16]} fn {proposal.fn!r} on {peer.name}: "
                f"success flag diverged on re-simulation "
                f"({response.success} vs {success2})",
            )
        )
        return findings

    if response.rwset.digest() != rwset2.digest():
        first_w = {w.key: (w.value, w.is_delete) for w in response.rwset.writes}
        second_w = {w.key: (w.value, w.is_delete) for w in rwset2.writes}
        diverged = sorted(
            set(first_w) ^ set(second_w)
            | {k for k in set(first_w) & set(second_w) if first_w[k] != second_w[k]}
        )
        detail = f"diverging write keys: {diverged[:5]}" if diverged else (
            "write sets identical; read sets diverged"
        )
        findings.append(
            Finding.for_rule(
                "SAN301", location, 0, 0,
                f"tx {proposal.tx_id[:16]} fn {proposal.fn!r} on {peer.name}: "
                f"rwset diverged on re-simulation "
                f"({_rw_summary(response.rwset)} vs {_rw_summary(rwset2)}; {detail})",
            )
        )
    elif response2 != response.response:
        findings.append(
            Finding.for_rule(
                "SAN301", location, 0, 0,
                f"tx {proposal.tx_id[:16]} fn {proposal.fn!r} on {peer.name}: "
                f"response diverged on re-simulation "
                f"({response.response[:60]!r} vs {response2[:60]!r})",
            )
        )
    return findings
