"""Lock-order race detector (SAN401) and shared-write sanitizer (SAN402).

:class:`TrackedLock` wraps a real ``threading.Lock``/``RLock`` and records,
in a process-wide acquisition graph, every edge *held-lock → acquired-lock*.
A cycle in that graph means two code paths take the same pair of locks in
opposite orders — a deadlock that will strike under the right interleaving
even if every test run happens to survive. Because edges persist after
release, the detector catches the inversion even when the two paths never
overlap in time: the ordering bug is structural, not probabilistic.

:class:`GuardedShared` wraps a shared container and a guard lock; any
mutating call made by a thread *not* holding the guard is reported as
SAN402. This is the dynamic counterpart of the HYG204 lint rule, for
structures whose sharing the linter cannot see (e.g. captures passed into
``parallel_map`` workers).

Both detectors *record* findings instead of raising, so a chaos scenario or
test run completes and the sanitizer report lists every violation at once.
``make_lock`` is the factory the rest of the codebase uses: it returns a
plain ``threading.Lock`` unless a registry is active (sanitize mode) or the
cost-center profiler is enabled (:class:`TimedLock` contention telemetry) —
with both off, the instrumented path costs nothing.
"""

from __future__ import annotations

import sys
import threading

from repro.obs.prof import get_profiler

from .rules import Finding

_MUTATING_NAMES = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "remove", "discard", "insert", "sort",
})


def _call_site() -> tuple[str, int]:
    """First stack frame outside this module — where the user code acted."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:
        return ("<unknown>", 0)
    return (frame.f_code.co_filename, frame.f_lineno)


class LockRegistry:
    """Acquisition graph + held-lock stacks shared by all tracked locks."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()  # raw on purpose: guards the detector itself
        self._edges: dict[str, set[str]] = {}
        self._edge_sites: dict[tuple[str, str], tuple[str, int]] = {}
        self._held = threading.local()
        self._findings: list[Finding] = []
        self._reported_cycles: set[tuple[str, ...]] = set()

    # -- held stacks -------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def holding(self, name: str) -> bool:
        return name in self._stack()

    # -- graph -------------------------------------------------------------

    def on_acquire(self, name: str) -> None:
        stack = self._stack()
        site = _call_site()
        with self._mutex:
            for held in stack:
                if held == name:
                    continue  # re-entrant acquire of the same RLock
                self._edges.setdefault(held, set()).add(name)
                self._edge_sites.setdefault((held, name), site)
                self._check_cycle(held, name)
        stack.append(name)

    def on_release(self, name: str) -> None:
        stack = self._stack()
        # Release in LIFO discipline is the common case, but don't require it.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                break

    def _check_cycle(self, src: str, dst: str) -> None:
        """After adding src→dst, a dst⇒src path closes a cycle."""
        path = self._find_path(dst, src)
        if path is None:
            return
        cycle = tuple(sorted(set(path + [dst])))
        if cycle in self._reported_cycles:
            return
        self._reported_cycles.add(cycle)
        here = self._edge_sites.get((src, dst), ("<unknown>", 0))
        other = self._edge_sites.get((path[0], path[1]) if len(path) > 1 else (dst, src),
                                     ("<unknown>", 0))
        self._findings.append(
            Finding.for_rule(
                "SAN401", here[0], here[1], 0,
                f"lock-order cycle: {' -> '.join(path + [dst])} "
                f"(opposite order seen at {other[0]}:{other[1]})",
            )
        )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """BFS over the acquisition graph; returns start..goal inclusive."""
        if start == goal:
            return [start]
        frontier = [[start]]
        seen = {start}
        while frontier:
            path = frontier.pop(0)
            for nxt in sorted(self._edges.get(path[-1], ())):
                if nxt == goal:
                    return path + [goal]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(path + [nxt])
        return None

    # -- shared-write checks ----------------------------------------------

    def on_unguarded_write(self, shared_name: str, guard_name: str, op: str) -> None:
        path, line = _call_site()
        with self._mutex:
            self._findings.append(
                Finding.for_rule(
                    "SAN402", path, line, 0,
                    f"{op}() on shared {shared_name!r} without holding {guard_name!r}",
                )
            )

    # -- results -----------------------------------------------------------

    def findings(self) -> list[Finding]:
        with self._mutex:
            return list(self._findings)

    def edges(self) -> dict[str, set[str]]:
        with self._mutex:
            return {k: set(v) for k, v in self._edges.items()}


class TrackedLock:
    """Drop-in ``Lock``/``RLock`` that reports acquisitions to a registry."""

    def __init__(self, name: str, registry: LockRegistry, *, reentrant: bool = False,
                 inner=None) -> None:
        self.name = name
        self._registry = registry
        # `inner` lets instrumentation wrappers compose in either order:
        # TimedLock(TrackedLock(...)) or TrackedLock(inner=TimedLock(...)).
        if inner is not None:
            self._inner = inner
        else:
            self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:  # reprolint: disable=HYG201
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._registry.on_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._registry.on_release(self.name)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        return self._registry.holding(self.name)

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


class TimedLock:
    """Lock wrapper reporting acquire-wait and hold time to the profiler.

    Wraps either a plain ``threading`` lock or a :class:`TrackedLock`, so
    contention telemetry composes with the lock-order sanitizer. Created
    by :func:`make_lock` when the cost-center profiler is enabled; each
    acquire charges its wait to the profiler's ``lock.wait`` center and
    (with a registry attached) the ``lock_wait_seconds_total{name}`` /
    ``lock_hold_seconds_total{name}`` metric families — contention is
    visible outside sanitize mode, not only when SAN401 is hunting.

    The profiler is re-checked at acquire/release time: toggling it
    mid-hold skips that interval's sample instead of corrupting state
    (the per-thread hold stack only pops what it pushed).
    """

    def __init__(self, name: str, inner) -> None:
        self.name = name
        self._inner = inner
        self._holds = threading.local()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:  # reprolint: disable=HYG201
        profiler = get_profiler()
        if profiler is None:
            return self._inner.acquire(blocking, timeout)
        start = profiler.clock()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            profiler.record_lock_wait(self.name, profiler.clock() - start)
            stack = getattr(self._holds, "stack", None)
            if stack is None:
                stack = self._holds.stack = []
            stack.append(profiler.clock())
        return acquired

    def release(self) -> None:
        profiler = get_profiler()
        stack = getattr(self._holds, "stack", None)
        start = stack.pop() if stack else None
        if profiler is not None and start is not None:
            profiler.record_lock_hold(self.name, profiler.clock() - start)
        self._inner.release()

    def __enter__(self) -> "TimedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        inner = self._inner
        if hasattr(inner, "held_by_current_thread"):
            return inner.held_by_current_thread()
        return bool(getattr(self._holds, "stack", None))

    def __repr__(self) -> str:
        return f"TimedLock({self.name!r}, {self._inner!r})"


class GuardedShared:
    """Proxy for a shared container whose mutations require a guard lock."""

    def __init__(self, obj, guard, name: str, registry: LockRegistry) -> None:
        # ``guard`` may be a TrackedLock or any wrapper around one; both the
        # user-facing ``name`` and ``held_by_current_thread`` are preserved
        # by every wrapper layer.
        self._obj = obj
        self._guard = guard
        self._name = name
        self._registry = registry

    def _check(self, op: str) -> None:
        if not self._guard.held_by_current_thread():
            self._registry.on_unguarded_write(self._name, self._guard.name, op)

    # Mutating dunders (dunder lookups bypass __getattr__).
    def __setitem__(self, key, value) -> None:
        self._check("__setitem__")
        self._obj[key] = value

    def __delitem__(self, key) -> None:
        self._check("__delitem__")
        del self._obj[key]

    # Read-only dunders.
    def __getitem__(self, key):
        return self._obj[key]

    def __len__(self) -> int:
        return len(self._obj)

    def __iter__(self):
        return iter(self._obj)

    def __contains__(self, item) -> bool:
        return item in self._obj

    def __getattr__(self, item):
        attr = getattr(self._obj, item)
        if item in _MUTATING_NAMES and callable(attr):
            def checked(*args, **kwargs):
                self._check(item)
                return attr(*args, **kwargs)
            return checked
        return attr

    def __repr__(self) -> str:
        return f"GuardedShared({self._name!r}, {self._obj!r})"


# ---------------------------------------------------------------------------
# Process-wide activation (used by the runtime sanitizer harness)
# ---------------------------------------------------------------------------

_ACTIVE: LockRegistry | None = None


def activate(registry: LockRegistry) -> None:
    """Route subsequently created ``make_lock`` locks through *registry*."""
    global _ACTIVE
    _ACTIVE = registry


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_registry() -> LockRegistry | None:
    return _ACTIVE


def make_lock(name: str, *, reentrant: bool = False):
    """Factory for locks that become instrumented when anyone is watching.

    Sanitize mode (an active :class:`LockRegistry`) gets a
    :class:`TrackedLock`; an enabled cost-center profiler additionally
    wraps the lock in :class:`TimedLock` for wait/hold telemetry. With
    both off this returns a plain ``threading`` lock, so production paths
    pay nothing for the instrumentation hook.
    """
    if _ACTIVE is not None:
        lock = TrackedLock(name, _ACTIVE, reentrant=reentrant)
    else:
        lock = threading.RLock() if reentrant else threading.Lock()
    if get_profiler() is not None:
        return TimedLock(name, lock)
    return lock


def unwrap_tracked(lock) -> TrackedLock | None:
    """The :class:`TrackedLock` inside a wrapper chain, whichever order the
    wrappers were composed in (``TimedLock(TrackedLock(...))`` and
    ``TrackedLock(inner=TimedLock(...))`` both resolve), or ``None`` when
    the chain bottoms out on a plain ``threading`` lock."""
    cur = lock
    for _ in range(8):  # wrapper chains are shallow; bound against cycles
        if isinstance(cur, TrackedLock):
            return cur
        cur = getattr(cur, "_inner", None)
        if cur is None:
            return None
    return None


def lock_name(lock) -> str | None:
    """User-facing name of an instrumented lock (survives wrapping)."""
    name = getattr(lock, "name", None)
    if isinstance(name, str):
        return name
    tracked = unwrap_tracked(lock)
    return tracked.name if tracked is not None else None


def guard_shared(obj, guard, name: str):
    """Wrap *obj* so unguarded mutations are reported (no-op when inactive
    or when *guard* is an uninstrumented plain lock)."""
    tracked = unwrap_tracked(guard)
    if _ACTIVE is not None and tracked is not None:
        return GuardedShared(obj, guard, name, _ACTIVE)
    return obj
