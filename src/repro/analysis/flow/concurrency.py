"""FLOW6xx — static lock-order and shared-state analysis.

The runtime sanitizers (SAN401/SAN402) only see the interleavings a run
happens to execute. This pass extracts the *static* lock structure from the
same primitives — ``make_lock`` / ``threading.Lock()`` definitions,
``with lock:`` regions, ``guard_shared`` registrations — and checks every
code path the call graph can reach:

* **FLOW601** — lock-order cycles. Acquiring L2 while holding L1 adds the
  edge L1→L2; acquisitions made *transitively* (a called function takes a
  lock of its own) contribute edges too. Any cycle in the resulting graph
  is a deadlock that needs only the right interleaving.
* **FLOW602** — unguarded writes to thread-shared fields. A field written
  with no lock held, inside a function reachable from a thread-entry edge
  (``parallel_map`` worker, ``Thread`` target, executor submit), and
  touched by more than one function, is a data race candidate.
* **FLOW603** — blocking while holding a lock. A bare ``future.result()``,
  queue wait, ``time.sleep`` or network call made (directly or through a
  callee) inside a critical section serializes every contender behind the
  slow operation.

Held-lock sets are propagated interprocedurally as the *intersection over
call sites* of the caller's effective held set — the set a function can
rely on being held on **every** entry. The under-approximation direction
is deliberate: it can miss an edge, never invent one, so FLOW601 findings
are structural facts, not artifacts of the analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import FunctionInfo, Program, Resolver, _dotted_name

# Lock identity: ("field", owner_class_qualname, attr) for instance locks,
# ("global", module, var) for module-level locks, ("local", fn_qual, var)
# for function-local / parameter locks.
LockKey = tuple

_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock"})
_MAKE_LOCK = "make_lock"
_LOCKISH_MARKERS = ("lock", "mutex")
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})
# Receivers whose `.get(...)`/`.join()` is a genuine wait, not a dict/str op.
_QUEUE_HINTS = ("queue",)
_THREAD_HINTS = ("thread", "worker", "proc")
_BLOCKING_EXTERNALS = frozenset({"time.sleep"})
_BLOCKING_EXTERNAL_PREFIXES = ("requests.", "socket.", "urllib.", "http.client.")
_PARALLEL_BARRIERS = frozenset({"repro.util.parallel.parallel_map"})
_MAX_TRACE = 12


def _lockish(name: str) -> bool:
    low = name.lower()
    return any(marker in low for marker in _LOCKISH_MARKERS)


@dataclass(frozen=True)
class LockDef:
    key: LockKey
    name: str          # user-facing name (make_lock arg, else qualified attr)
    path: str
    line: int


@dataclass(frozen=True)
class Acquire:
    key: LockKey
    line: int
    col: int
    held_before: tuple[LockKey, ...]


@dataclass(frozen=True)
class CallFact:
    target: str | None             # resolved program-function qualname
    line: int
    col: int
    held: tuple[LockKey, ...]
    blocking: str | None           # description when the call itself blocks


@dataclass(frozen=True)
class WriteFact:
    attr: str
    line: int
    col: int
    held: tuple[LockKey, ...]


@dataclass
class FuncFacts:
    acquires: list[Acquire] = field(default_factory=list)
    calls: list[CallFact] = field(default_factory=list)
    writes: list[WriteFact] = field(default_factory=list)
    fields_accessed: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class ConcurrencyFinding:
    rule_id: str
    path: str
    line: int
    col: int
    message: str
    trace: tuple[str, ...]


# ---------------------------------------------------------------------------
# Lock definition index
# ---------------------------------------------------------------------------


class LockIndex:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.defs: dict[LockKey, LockDef] = {}

    # -- registration ------------------------------------------------------

    def _lock_ctor_name(self, call: ast.expr, aliases: dict[str, str]) -> str | None:
        """``make_lock("x")`` → "x"; ``threading.Lock()`` → "" (auto-named);
        ``field(default_factory=…)`` unwraps to its factory. None = not a
        lock constructor."""
        if not isinstance(call, ast.Call):
            return None
        dotted = _dotted_name(call.func, aliases)
        if dotted is None:
            return None
        if dotted in _LOCK_CTORS:
            return ""
        if dotted == _MAKE_LOCK or dotted.endswith(f".{_MAKE_LOCK}"):
            if call.args and isinstance(call.args[0], ast.Constant) \
                    and isinstance(call.args[0].value, str):
                return call.args[0].value
            return ""
        if dotted == "dataclasses.field" or dotted == "field":
            for kw in call.keywords:
                if kw.arg != "default_factory":
                    continue
                factory = kw.value
                if isinstance(factory, ast.Lambda):
                    return self._lock_ctor_name(factory.body, aliases)
                fdotted = _dotted_name(factory, aliases)
                if fdotted in _LOCK_CTORS:
                    return ""
        return None

    def _register(self, key: LockKey, name: str, path: str, line: int) -> None:
        if not name:
            # Auto-name from the key: "Class.attr" / "module.var".
            owner = key[1].rsplit(".", 1)[-1]
            name = f"{owner}.{key[2]}"
        self.defs.setdefault(key, LockDef(key=key, name=name, path=path, line=line))

    def collect(self) -> None:
        program = self.program
        for module in program.modules.values():
            aliases = module.aliases
            for node in module.tree.body:
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    self._scan_assign(node, aliases, module.path,
                                      scope=("global", module.name))
                elif isinstance(node, ast.ClassDef):
                    cq = f"{module.name}.{node.name}"
                    for item in node.body:
                        if isinstance(item, (ast.Assign, ast.AnnAssign)):
                            self._scan_assign(item, aliases, module.path,
                                              scope=("classbody", cq))
        for fn in program.functions.values():
            aliases = program.modules[fn.module].aliases
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    self._scan_fn_assign(fn, stmt, aliases)

    def _scan_assign(
        self, node: ast.Assign | ast.AnnAssign, aliases: dict[str, str],
        path: str, scope: tuple[str, str],
    ) -> None:
        value = node.value
        if value is None:
            return
        name = self._lock_ctor_name(value, aliases)
        if name is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                kind, owner = scope
                key: LockKey = (
                    ("global", owner, target.id) if kind == "global"
                    else ("field", owner, target.id)
                )
                self._register(key, name, path, node.lineno)

    def _scan_fn_assign(
        self, fn: FunctionInfo, node: ast.Assign | ast.AnnAssign,
        aliases: dict[str, str],
    ) -> None:
        value = node.value
        if value is None:
            return
        name = self._lock_ctor_name(value, aliases)
        if name is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
                    and target.value.id in ("self", "cls") and fn.class_qualname:
                self._register(("field", fn.class_qualname, target.attr),
                               name, fn.path, node.lineno)
            elif isinstance(target, ast.Name):
                self._register(("local", fn.qualname, target.id),
                               name, fn.path, node.lineno)

    # -- lookup ------------------------------------------------------------

    def field_key(self, class_qualname: str | None, attr: str) -> LockKey | None:
        """Find a field lock on the class or a declared base."""
        if class_qualname is None:
            return None
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            cq = queue.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            if ("field", cq, attr) in self.defs:
                return ("field", cq, attr)
            info = self.program.classes.get(cq)
            if info is not None:
                queue.extend(info.bases)
        return None

    def resolve_use(self, fn: FunctionInfo, node: ast.expr) -> LockKey | None:
        """Lock key of a ``with``-statement context expression, or None."""
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                key = self.field_key(fn.class_qualname, node.attr)
                if key is not None:
                    return key
                if _lockish(node.attr) and fn.class_qualname is not None:
                    key = ("field", fn.class_qualname, node.attr)
                    self._register(key, "", fn.path, node.lineno)
                    return key
                return None
            # obj.lock — identity keyed by attribute name alone (see docs:
            # the analyzer cannot type arbitrary receivers).
            if _lockish(node.attr):
                key = ("attr", "*", node.attr)
                self._register(key, node.attr, fn.path, node.lineno)
                return key
            return None
        if isinstance(node, ast.Name):
            key = ("local", fn.qualname, node.id)
            if key in self.defs:
                return key
            gkey = ("global", fn.module, node.id)
            if gkey in self.defs:
                return gkey
            # An imported lock keeps the identity of its defining module, so
            # two modules acquiring the same global lock share one node in
            # the acquisition graph.
            alias = self.program.modules[fn.module].aliases.get(node.id)
            if alias and "." in alias:
                mod, _, var = alias.rpartition(".")
                akey = ("global", mod, var)
                if akey in self.defs:
                    return akey
            if _lockish(node.id):
                self._register(key, node.id, fn.path, node.lineno)
                return key
        return None

    def display(self, key: LockKey) -> str:
        hit = self.defs.get(key)
        if hit is not None:
            return hit.name
        return ".".join(str(part) for part in key[1:])


# ---------------------------------------------------------------------------
# Per-function fact extraction
# ---------------------------------------------------------------------------


class _FactCollector:
    def __init__(self, program: Program, locks: LockIndex, fn: FunctionInfo) -> None:
        self.program = program
        self.locks = locks
        self.fn = fn
        self.resolver = Resolver(program, fn)
        self.facts = FuncFacts()

    def run(self) -> FuncFacts:
        self._walk(self.fn.node.body, ())
        return self.facts

    # -- statements with held-set threading --------------------------------

    def _walk(self, stmts: list[ast.stmt], held: tuple[LockKey, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    self._visit_expr(item.context_expr, inner)
                    key = self.locks.resolve_use(self.fn, item.context_expr)
                    if key is not None and key not in inner:
                        self.facts.acquires.append(Acquire(
                            key=key, line=item.context_expr.lineno,
                            col=item.context_expr.col_offset, held_before=inner,
                        ))
                        inner = inner + (key,)
                self._walk(stmt.body, inner)
                continue
            if isinstance(stmt, ast.If):
                self._visit_expr(stmt.test, held)
                self._walk(stmt.body, held)
                self._walk(stmt.orelse, held)
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._visit_expr(stmt.iter, held)
                self._note_write_target(stmt.target, held)
                self._walk(stmt.body, held)
                self._walk(stmt.orelse, held)
                continue
            if isinstance(stmt, ast.While):
                self._visit_expr(stmt.test, held)
                self._walk(stmt.body, held)
                self._walk(stmt.orelse, held)
                continue
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, held)
                for handler in stmt.handlers:
                    self._walk(handler.body, held)
                self._walk(stmt.orelse, held)
                self._walk(stmt.finalbody, held)
                continue
            # Flat statement: record writes, then sweep expressions.
            if isinstance(stmt, ast.Assign):
                aliases = self.resolver.aliases
                is_lock_def = self.locks._lock_ctor_name(stmt.value, aliases) is not None
                for target in stmt.targets:
                    if not is_lock_def:
                        self._note_write_target(target, held)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if stmt.value is not None or isinstance(stmt, ast.AugAssign):
                    is_lock_def = isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                        and self.locks._lock_ctor_name(stmt.value, self.resolver.aliases) is not None
                    if not is_lock_def:
                        self._note_write_target(stmt.target, held)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._visit_expr(child, held)

    def _note_write_target(self, target: ast.expr, held: tuple[LockKey, ...]) -> None:
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) \
                and target.value.id in ("self", "cls"):
            self.facts.fields_accessed.add(target.attr)
            self.facts.writes.append(WriteFact(
                attr=target.attr, line=target.lineno, col=target.col_offset, held=held,
            ))
        elif isinstance(target, ast.Subscript):
            # self.d[k] = v mutates the container field.
            self._note_write_target(target.value, held)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._note_write_target(elt, held)

    # -- expressions -------------------------------------------------------

    def _visit_expr(self, node: ast.expr, held: tuple[LockKey, ...]) -> None:
        stack: list[ast.AST] = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
                continue
            if isinstance(cur, ast.Attribute) and isinstance(cur.value, ast.Name) \
                    and cur.value.id in ("self", "cls"):
                self.facts.fields_accessed.add(cur.attr)
            if isinstance(cur, ast.Call):
                self._note_call(cur, held)
            stack.extend(ast.iter_child_nodes(cur))

    def _note_call(self, call: ast.Call, held: tuple[LockKey, ...]) -> None:
        callee = self.resolver.resolve_callable(call.func)
        target = callee.target if callee is not None and callee.kind == "func" else None
        blocking = self._blocking_desc(call, callee)
        self.facts.calls.append(CallFact(
            target=target, line=call.lineno, col=call.col_offset,
            held=held, blocking=blocking,
        ))

    def _blocking_desc(self, call: ast.Call, callee) -> str | None:
        if callee is not None and callee.kind == "external":
            name = callee.target
            if name in _BLOCKING_EXTERNALS:
                return f"{name}()"
            if any(name.startswith(p) for p in _BLOCKING_EXTERNAL_PREFIXES):
                return f"{name}() [network I/O]"
        if callee is not None and callee.kind == "func" \
                and callee.target in _PARALLEL_BARRIERS:
            return "parallel_map() [pool barrier]"
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = ""
            if isinstance(func.value, ast.Name):
                recv = func.value.id
            elif isinstance(func.value, ast.Attribute):
                recv = func.value.attr
            low = recv.lower()
            if func.attr == "result" and not call.args and not call.keywords:
                return f"{recv or '<future>'}.result() [future wait]"
            if func.attr == "get" and any(h in low for h in _QUEUE_HINTS):
                return f"{recv}.get() [queue wait]"
            if func.attr == "join" and any(h in low for h in _THREAD_HINTS):
                return f"{recv}.join() [thread wait]"
        return None


# ---------------------------------------------------------------------------
# Interprocedural driver
# ---------------------------------------------------------------------------


class ConcurrencyAnalysis:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.locks = LockIndex(program)
        self.facts: dict[str, FuncFacts] = {}
        self.entry_held: dict[str, frozenset] = {}

    def run(self) -> list[ConcurrencyFinding]:
        self.locks.collect()
        for qual, fn in self.program.functions.items():
            self.facts[qual] = _FactCollector(self.program, self.locks, fn).run()
        self._fix_entry_held()
        findings: list[ConcurrencyFinding] = []
        findings.extend(self._lock_order_findings())
        findings.extend(self._unguarded_write_findings())
        findings.extend(self._blocking_findings())
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id, f.message))
        return findings

    # -- held propagation --------------------------------------------------

    def _fix_entry_held(self) -> None:
        """entry_held[f] = locks held on *every* path into f (least fixpoint,
        starting from ∅ — under-approximates, never invents a held lock).
        Thread-entry edges contribute ∅: a fresh thread holds nothing."""
        self.entry_held = {q: frozenset() for q in self.program.functions}
        for _ in range(len(self.program.functions) + 1):
            changed = False
            incoming: dict[str, list[frozenset]] = {}
            for caller, facts in self.facts.items():
                base = self.entry_held[caller]
                for cf in facts.calls:
                    if cf.target is None or cf.target not in self.facts:
                        continue
                    incoming.setdefault(cf.target, []).append(
                        base | frozenset(cf.held)
                    )
            for target, threaded in (
                (t, th) for outs in self.program.edges.values() for t, th in outs
            ):
                if threaded and target in self.facts:
                    incoming.setdefault(target, []).append(frozenset())
            for qual in self.program.functions:
                sets = incoming.get(qual)
                new = frozenset.intersection(*sets) if sets else frozenset()
                if new != self.entry_held[qual]:
                    self.entry_held[qual] = new
                    changed = True
            if not changed:
                break

    def _eff(self, qual: str, held: tuple[LockKey, ...]) -> frozenset:
        return self.entry_held.get(qual, frozenset()) | frozenset(held)

    # -- FLOW601 -----------------------------------------------------------

    def _transitive_acquires(self) -> dict[str, dict[LockKey, tuple]]:
        """qual -> {lock acquired inside f or its callees: witness steps}."""
        acq: dict[str, dict[LockKey, tuple]] = {q: {} for q in self.facts}
        for qual, facts in self.facts.items():
            fn = self.program.functions[qual]
            for a in facts.acquires:
                step = (f"{fn.path}:{a.line}: {fn.name}() acquires "
                        f"{self.locks.display(a.key)!r}",)
                acq[qual].setdefault(a.key, step)
        for _ in range(len(self.facts) + 1):
            changed = False
            for qual, facts in self.facts.items():
                fn = self.program.functions[qual]
                for cf in facts.calls:
                    if cf.target is None or cf.target not in acq:
                        continue
                    for key, steps in acq[cf.target].items():
                        if key in acq[qual] or len(steps) >= _MAX_TRACE:
                            continue
                        callee_name = self.program.functions[cf.target].name
                        acq[qual][key] = (
                            f"{fn.path}:{cf.line}: {fn.name}() calls "
                            f"{callee_name}()",
                        ) + steps
                        changed = True
            if not changed:
                break
        return acq

    def _lock_order_findings(self) -> list[ConcurrencyFinding]:
        acq = self._transitive_acquires()
        # (k1, k2) -> (path, line, witness steps)
        edges: dict[tuple[LockKey, LockKey], tuple[str, int, tuple]] = {}

        def add_edge(k1: LockKey, k2: LockKey, path: str, line: int, steps: tuple) -> None:
            if k1 == k2:
                return
            if (k1, k2) not in edges:
                edges[(k1, k2)] = (path, line, steps)

        for qual, facts in self.facts.items():
            fn = self.program.functions[qual]
            for a in facts.acquires:
                eff = self._eff(qual, a.held_before)
                for h in eff:
                    add_edge(h, a.key, fn.path, a.line, (
                        f"{fn.path}:{a.line}: {fn.name}() acquires "
                        f"{self.locks.display(a.key)!r} while holding "
                        f"{self.locks.display(h)!r}",
                    ))
            for cf in facts.calls:
                if cf.target is None or cf.target not in acq:
                    continue
                eff = self._eff(qual, cf.held)
                if not eff:
                    continue
                callee_name = self.program.functions[cf.target].name
                for key, steps in acq[cf.target].items():
                    if key in eff:
                        continue
                    for h in eff:
                        add_edge(h, key, fn.path, cf.line, (
                            f"{fn.path}:{cf.line}: {fn.name}() calls "
                            f"{callee_name}() while holding "
                            f"{self.locks.display(h)!r}",
                        ) + steps)

        # Cycle detection over the static acquisition graph.
        graph: dict[LockKey, list[LockKey]] = {}
        for (k1, k2) in edges:
            graph.setdefault(k1, []).append(k2)
        findings: list[ConcurrencyFinding] = []
        reported: set[tuple] = set()
        for start in sorted(graph, key=str):
            path = self._find_cycle(graph, start)
            if path is None:
                continue
            canon = tuple(sorted(str(k) for k in set(path)))
            if canon in reported:
                continue
            reported.add(canon)
            names = [self.locks.display(k) for k in path]
            trace: list[str] = []
            for i in range(len(path)):
                k1, k2 = path[i], path[(i + 1) % len(path)]
                hit = edges.get((k1, k2))
                if hit is not None:
                    trace.extend(hit[2])
            anchor = edges[(path[0], path[1 % len(path)])]
            findings.append(ConcurrencyFinding(
                rule_id="FLOW601", path=anchor[0], line=anchor[1], col=0,
                message=("lock-order cycle: "
                         + " -> ".join(names + [names[0]])),
                trace=tuple(trace[:_MAX_TRACE]),
            ))
        return findings

    @staticmethod
    def _find_cycle(graph: dict, start: LockKey) -> list | None:
        """Shortest cycle through *start* (BFS back to start), or None."""
        frontier = [[start]]
        seen = {start}
        while frontier:
            path = frontier.pop(0)
            for nxt in sorted(graph.get(path[-1], ()), key=str):
                if nxt == start:
                    return path
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(path + [nxt])
        return None

    # -- FLOW602 -----------------------------------------------------------

    def _thread_reachable(self) -> dict[str, tuple[str, ...]]:
        """qual -> witness chain from a thread-entry edge to the function."""
        out: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for caller, outs in self.program.edges.items():
            cfn = self.program.functions.get(caller)
            for target, threaded in outs:
                if threaded and target in self.program.functions and target not in out:
                    tfn = self.program.functions[target]
                    where = f"{cfn.path}" if cfn is not None else "?"
                    out[target] = (
                        f"{where}: {tfn.name}() runs on a spawned thread "
                        f"(dispatched from {cfn.name + '()' if cfn else '?'})",
                    )
                    queue.append(target)
        while queue:
            qual = queue.pop(0)
            chain = out[qual]
            fn = self.program.functions[qual]
            for target, threaded in self.program.edges.get(qual, ()):
                if target in out or target not in self.program.functions:
                    continue
                if len(chain) >= _MAX_TRACE:
                    continue
                tfn = self.program.functions[target]
                out[target] = chain + (
                    f"{fn.path}: {fn.name}() calls {tfn.name}()",
                )
                queue.append(target)
        return out

    def _field_access_census(self) -> dict[tuple[str, str], set[str]]:
        """(class, attr) -> functions touching the field."""
        census: dict[tuple[str, str], set[str]] = {}
        for qual, facts in self.facts.items():
            fn = self.program.functions[qual]
            if fn.class_qualname is None:
                continue
            for attr in facts.fields_accessed:
                census.setdefault((fn.class_qualname, attr), set()).add(qual)
        return census

    def _unguarded_write_findings(self) -> list[ConcurrencyFinding]:
        reachable = self._thread_reachable()
        census = self._field_access_census()
        findings: list[ConcurrencyFinding] = []
        seen: set[tuple] = set()
        for qual, chain in reachable.items():
            fn = self.program.functions[qual]
            if fn.name in _INIT_METHODS or fn.class_qualname is None:
                continue
            facts = self.facts[qual]
            for w in facts.writes:
                if _lockish(w.attr) or w.attr.startswith("__"):
                    continue
                if self._eff(qual, w.held):
                    continue
                if self.locks.field_key(fn.class_qualname, w.attr) is not None:
                    continue
                sharers = census.get((fn.class_qualname, w.attr), set())
                if len(sharers) < 2:
                    continue  # touched by one function only: no sharing evidence
                dedup = (qual, w.attr)
                if dedup in seen:
                    continue
                seen.add(dedup)
                others = sorted(
                    self.program.functions[s].name for s in sharers if s != qual
                )
                findings.append(ConcurrencyFinding(
                    rule_id="FLOW602", path=fn.path, line=w.line, col=w.col,
                    message=(f"self.{w.attr} written in {fn.name}() with no lock "
                             f"held, on a thread-reachable path"),
                    trace=chain + (
                        f"{fn.path}:{w.line}: unguarded write to self.{w.attr}",
                        f"also touched by: {', '.join(o + '()' for o in others[:4])}",
                    ),
                ))
        return findings

    # -- FLOW603 -----------------------------------------------------------

    def _blocking_summaries(self) -> dict[str, tuple[str, tuple[str, ...]]]:
        """qual -> (description, witness) for functions that (transitively)
        block, *ignoring* blocking that happens under the callee's own lock
        discipline decisions — any block inside counts."""
        blk: dict[str, tuple[str, tuple[str, ...]]] = {}
        for qual, facts in self.facts.items():
            fn = self.program.functions[qual]
            for cf in facts.calls:
                if cf.blocking is not None and qual not in blk:
                    blk[qual] = (cf.blocking, (
                        f"{fn.path}:{cf.line}: {fn.name}() blocks on {cf.blocking}",
                    ))
        for _ in range(len(self.facts) + 1):
            changed = False
            for qual, facts in self.facts.items():
                if qual in blk:
                    continue
                fn = self.program.functions[qual]
                for cf in facts.calls:
                    if cf.target is None or cf.target not in blk:
                        continue
                    desc, steps = blk[cf.target]
                    if len(steps) >= _MAX_TRACE:
                        continue
                    callee_name = self.program.functions[cf.target].name
                    blk[qual] = (desc, (
                        f"{fn.path}:{cf.line}: {fn.name}() calls {callee_name}()",
                    ) + steps)
                    changed = True
                    break
            if not changed:
                break
        return blk

    def _blocking_findings(self) -> list[ConcurrencyFinding]:
        blk = self._blocking_summaries()
        findings: list[ConcurrencyFinding] = []
        seen: set[tuple] = set()
        for qual, facts in self.facts.items():
            fn = self.program.functions[qual]
            for cf in facts.calls:
                eff = self._eff(qual, cf.held)
                if not eff:
                    continue
                if cf.blocking is not None and not cf.held:
                    # Lock inherited from every caller, not taken here: the
                    # callers' transitive findings anchor at the acquire
                    # site, which is where the fix belongs — reporting here
                    # too would double-count the same hold.
                    continue
                locks_held = ", ".join(
                    sorted(repr(self.locks.display(h)) for h in eff)
                )
                if cf.blocking is not None:
                    key = (qual, cf.line, cf.blocking)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(ConcurrencyFinding(
                        rule_id="FLOW603", path=fn.path, line=cf.line, col=cf.col,
                        message=(f"blocking {cf.blocking} in {fn.name}() while "
                                 f"holding {locks_held}"),
                        trace=(
                            f"{fn.path}:{cf.line}: {fn.name}() blocks on "
                            f"{cf.blocking} holding {locks_held}",
                        ),
                    ))
                elif cf.target is not None and cf.target in blk:
                    desc, steps = blk[cf.target]
                    callee_name = self.program.functions[cf.target].name
                    key = (qual, cf.line, desc)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(ConcurrencyFinding(
                        rule_id="FLOW603", path=fn.path, line=cf.line, col=cf.col,
                        message=(f"call to {callee_name}() in {fn.name}() blocks "
                                 f"on {desc} while holding {locks_held}"),
                        trace=(
                            f"{fn.path}:{cf.line}: {fn.name}() calls "
                            f"{callee_name}() holding {locks_held}",
                        ) + steps,
                    ))
        return findings


def analyze_concurrency(program: Program) -> list[ConcurrencyFinding]:
    return ConcurrencyAnalysis(program).run()
