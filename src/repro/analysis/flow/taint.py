"""FLOW5xx — interprocedural nondeterminism taint analysis.

Proves (up to the precision of the call graph) that no ambient
nondeterminism can reach a consensus-critical byte stream. **Sources** are
the same ambient reads reprolint's DET1xx rules flag locally — wall clock,
RNG, uuid, environment — plus two order hazards: values enumerated out of a
``set`` and float-formatted strings. **Sinks** are the places where bytes
become consensus-visible: canonical JSON, the block/tx codec, digest and
Merkle construction, chaincode state writes, and PBFT message fields.

The analysis is summary-based and runs to a fixed point over the call
graph. For every function it computes:

* ``ret``        — taint kinds its return value may carry (with a witness
                   trace back to the source);
* ``param_ret``  — which parameters flow through to the return value;
* ``param_sink`` — which parameters reach a sink inside the function (or
                   transitively through its callees).

That is exactly the machinery needed to catch the cross-function leaks the
AST-local rules structurally cannot: a helper in ``util/`` returning
``time.time()`` is caught *three calls away* when its value finally lands
in an endorsement digest, with the full source → … → sink chain reported.

**Sanitizers** kill taint: ``sorted``/``min``/``max`` erase set-order
taint (the order becomes defined), and aggregations like ``len``/``sum``
erase all taint (the value no longer depends on the ambient read's
*value*... ``len`` does; ``sum`` keeps value taint). Seeded RNG
(``repro.util.rng``) is deterministic by construction and is never a
source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..linter import (
    CLOCK_CALLS,
    ENV_ATTRS,
    ENV_CALLS,
    RANDOM_CALLS,
    RANDOM_ROOTS,
    UUID_CALLS,
    _is_float_format_spec,
    _printf_has_float,
)
from .callgraph import FunctionInfo, Program, Resolver, _dotted_name

# -- taint kinds ------------------------------------------------------------

CLOCK = "clock"
RANDOM = "random"
UUID = "uuid"
ENV = "env"
SETORDER = "setorder"
FLOATFMT = "floatfmt"

KIND_RULES = {
    CLOCK: "FLOW501",
    RANDOM: "FLOW502",
    UUID: "FLOW503",
    ENV: "FLOW504",
    SETORDER: "FLOW505",
    FLOATFMT: "FLOW506",
}
REAL_KINDS = tuple(KIND_RULES)

# -- sink tables ------------------------------------------------------------

# Program functions (by qualname) whose every argument is consensus-visible.
SINK_QUALNAMES = {
    "repro.util.serialization.canonical_json": "canonical_json",
    "repro.crypto.hashing.digest": "crypto.digest",
    "repro.crypto.hashing.hexdigest": "crypto.hexdigest",
    "repro.crypto.hashing.digest_many": "crypto.digest_many",
    "repro.crypto.merkle.merkle_root": "merkle_root",
    "repro.crypto.merkle.MerkleTree.__init__": "MerkleTree",
    "repro.storage.codec.tx_to_doc": "codec.tx_to_doc",
    "repro.storage.codec.block_to_doc": "codec.block_to_doc",
    "repro.storage.codec.proposal_to_doc": "codec.proposal_to_doc",
    "repro.storage.codec.rwset_to_doc": "codec.rwset_to_doc",
}
# PBFT message constructors: fields enter every replica's decision state.
PBFT_MESSAGE_CLASSES = (
    "repro.consensus.messages.ClientRequest",
    "repro.consensus.messages.PrePrepare",
    "repro.consensus.messages.Prepare",
    "repro.consensus.messages.Commit",
    "repro.consensus.messages.Checkpoint",
    "repro.consensus.messages.ViewChange",
    "repro.consensus.messages.NewView",
)
# External dotted call targets that are sinks wherever they appear.
SINK_EXTERNAL_PREFIXES = ("hashlib.",)
# Attribute-call names that are chaincode state-write sinks even when the
# receiver cannot be resolved (every stub flavour shares these names).
SINK_METHOD_NAMES = frozenset({"put_state", "put_private_data", "set_event"})
# Function *names* that are sinks wherever they live — these names are the
# framework's own conventions, so a module outside the qualname table (a
# test fixture, a future refactor) still gets sink treatment.
SINK_SHORT_NAMES = frozenset({"canonical_json", "merkle_root"})

# -- sanitizers / propagation tables ---------------------------------------

# Calls whose result is order-defined: kills SETORDER, keeps value taints.
ORDER_SANITIZERS = frozenset({"sorted", "min", "max"})
# Calls whose result no longer depends on the input *values*.
VALUE_SANITIZERS = frozenset({"len", "bool", "id", "isinstance", "hasattr"})
# Builtins that pass taint straight through argument -> result.
PASSTHROUGH = frozenset({
    "str", "int", "float", "bytes", "bytearray", "abs", "round", "repr",
    "list", "tuple", "dict", "format", "hex", "oct",
})
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
# Clock-family functions that are *pure converters* when given an explicit
# time argument (``time.gmtime(ts)``), and clock reads only when called
# with no more than N positional args (``time.gmtime()`` reads the clock).
CLOCK_CONVERTER_MIN_ARGS = {
    "time.gmtime": 1,
    "time.localtime": 1,
    "time.strftime": 2,          # strftime(fmt) formats *current* time
    "time.ctime": 1,
    "time.asctime": 1,
    "datetime.datetime.fromtimestamp": 1,
    "datetime.datetime.utcfromtimestamp": 1,
    "datetime.date.fromtimestamp": 1,
}

_MAX_TRACE = 12
_MAX_PASSES = 12


@dataclass(frozen=True)
class Taint:
    """One taint fact: a kind plus the witness chain that produced it."""

    kind: object                  # one of REAL_KINDS, or ("param", i)
    trace: tuple[str, ...] = ()

    def extend(self, step: str) -> "Taint":
        if len(self.trace) >= _MAX_TRACE:
            return self
        return Taint(self.kind, self.trace + (step,))


@dataclass(frozen=True)
class SinkHit:
    """A path from a function parameter into a sink."""

    sink: str                     # display name of the sink
    trace: tuple[str, ...]        # steps from the parameter to the sink


@dataclass
class Summary:
    ret: dict[str, tuple[str, ...]] = field(default_factory=dict)   # kind -> trace
    param_ret: set[int] = field(default_factory=set)
    param_sink: dict[int, tuple[SinkHit, ...]] = field(default_factory=dict)

    def signature(self) -> tuple:
        return (
            tuple(sorted((k, v) for k, v in self.ret.items())),
            tuple(sorted(self.param_ret)),
            tuple(sorted((i, hits) for i, hits in self.param_sink.items())),
        )


@dataclass(frozen=True)
class TaintFinding:
    rule_id: str
    path: str
    line: int
    col: int
    sink: str
    kind: str
    trace: tuple[str, ...]


def _loc(fn: FunctionInfo, node: ast.AST) -> str:
    return f"{fn.path}:{getattr(node, 'lineno', fn.line)}"


class _FunctionTaint(ast.NodeVisitor):
    """One intraprocedural pass; call effects come from global summaries."""

    def __init__(
        self,
        analysis: "TaintAnalysis",
        fn: FunctionInfo,
        emit: bool = False,
    ) -> None:
        self.analysis = analysis
        self.program = analysis.program
        self.fn = fn
        self.resolver = Resolver(self.program, fn)
        self.emit = emit
        # var name -> set[Taint]; params seeded with pseudo-kinds.
        self.env: dict[str, set[Taint]] = {}
        self.set_vars: set[str] = set()
        self.ret: set[Taint] = set()
        self.param_sink: dict[int, set[SinkHit]] = {}
        for i, p in enumerate(fn.params):
            self.env[p] = {Taint(("param", i))}

    # -- expression taint --------------------------------------------------

    def taint_of(self, node: ast.expr) -> set[Taint]:
        if isinstance(node, ast.Name):
            taints = set(self.env.get(node.id, ()))
            return taints
        if isinstance(node, ast.Attribute):
            # self.field reads pick up class-field taint.
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
                and self.fn.class_qualname is not None
            ):
                got = self.analysis.field_taint_of(self.fn.class_qualname, node.attr)
                if got:
                    return {
                        Taint(kind, trace).extend(
                            f"{_loc(self.fn, node)}: read of field "
                            f"self.{node.attr} in {self.fn.name}()"
                        )
                        for kind, trace in got.items()
                    }
                return set()
            dotted = _dotted_name(node, self.resolver.aliases)
            if dotted in ENV_ATTRS:
                return {Taint(ENV, (f"{_loc(self.fn, node)}: read of {dotted}",))}
            return set()
        if isinstance(node, ast.Call):
            return self.call_taint(node)
        if isinstance(node, ast.BinOp):
            out = self.taint_of(node.left) | self.taint_of(node.right)
            if (
                isinstance(node.op, ast.Mod)
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and _printf_has_float(node.left.value)
            ):
                out.add(Taint(
                    FLOATFMT,
                    (f"{_loc(self.fn, node)}: printf-style float formatting",),
                ))
            return out
        if isinstance(node, (ast.BoolOp,)):
            out: set[Taint] = set()
            for v in node.values:
                out |= self.taint_of(v)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) | self.taint_of(node.orelse)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for item in node.elts:
                out |= self.taint_of(item)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for k in node.keys:
                if k is not None:
                    out |= self.taint_of(k)
            for v in node.values:
                out |= self.taint_of(v)
            return out
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value)
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.JoinedStr):
            out = set()
            for part in node.values:
                out |= self.taint_of(part)
            return out
        if isinstance(node, ast.FormattedValue):
            out = self.taint_of(node.value)
            if node.format_spec is not None:
                for part in ast.walk(node.format_spec):
                    if (
                        isinstance(part, ast.Constant)
                        and isinstance(part.value, str)
                        and _is_float_format_spec(part.value)
                    ):
                        out = out | {Taint(
                            FLOATFMT,
                            (f"{_loc(self.fn, node)}: float format spec "
                             f"{part.value!r} in f-string",),
                        )}
                        break
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = set()
            for gen in node.generators:
                out |= self._iter_taint(gen.iter, node)
            out |= self.taint_of(node.elt)
            return out
        if isinstance(node, ast.DictComp):
            out = set()
            for gen in node.generators:
                out |= self._iter_taint(gen.iter, node)
            out |= self.taint_of(node.key) | self.taint_of(node.value)
            return out
        if isinstance(node, ast.Compare):
            return set()  # a bool comparison result: value taint collapses
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        return set()

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in self.set_vars:
            return True
        if isinstance(node, ast.Call):
            callee = self.resolver.resolve_callable(node.func)
            if callee is not None and callee.kind == "external" \
                    and callee.target in SET_CONSTRUCTORS:
                return True
        return False

    def _iter_taint(self, iter_node: ast.expr, at: ast.AST) -> set[Taint]:
        """Taint contributed by enumerating *iter_node* (set order hazard)."""
        out = self.taint_of(iter_node)
        if self._is_set_expr(iter_node):
            out = out | {Taint(
                SETORDER,
                (f"{_loc(self.fn, at)}: enumeration of a set "
                 f"(hash order) in {self.fn.name}()",),
            )}
        return out

    # -- calls -------------------------------------------------------------

    def _arg_exprs(self, call: ast.Call) -> list[tuple[int, ast.expr]]:
        """Positional args with their callee-parameter indexes; keywords get
        index -1 (still sink-checked, never param-mapped)."""
        out = [(i, a) for i, a in enumerate(call.args)]
        out.extend((-1, kw.value) for kw in call.keywords)
        return out

    def call_taint(self, call: ast.Call) -> set[Taint]:
        callee = self.resolver.resolve_callable(call.func)
        arg_taints: dict[int, set[Taint]] = {}
        all_arg_taint: set[Taint] = set()
        for idx, expr in self._arg_exprs(call):
            t = self.taint_of(expr)
            if t:
                arg_taints[idx] = t
                all_arg_taint |= t

        result: set[Taint] = set()
        site = _loc(self.fn, call)

        if callee is not None and callee.kind == "external":
            name = callee.target
            short = name.rsplit(".", 1)[-1]
            need = CLOCK_CONVERTER_MIN_ARGS.get(name)
            if need is not None and len(call.args) >= need:
                # Explicit time argument: a pure conversion, not a read.
                return set(all_arg_taint)
            if name in CLOCK_CALLS or need is not None:
                return {Taint(CLOCK, (f"{site}: call to {name}() [wall clock]",))}
            if (
                name.startswith(RANDOM_ROOTS)
                or name in RANDOM_CALLS
                or name in ("random", "secrets")
            ):
                return {Taint(RANDOM, (f"{site}: call to {name}() [rng]",))}
            if name in UUID_CALLS:
                return {Taint(UUID, (f"{site}: call to {name}() [uuid]",))}
            if name in ENV_CALLS:
                return {Taint(ENV, (f"{site}: call to {name}() [environment]",))}
            if short in ORDER_SANITIZERS or name in ORDER_SANITIZERS:
                return {t for t in all_arg_taint if t.kind != SETORDER}
            if short in VALUE_SANITIZERS or name in VALUE_SANITIZERS:
                return set()
            if short in SET_CONSTRUCTORS:
                return all_arg_taint  # set-typedness tracked by _is_set_expr
            if short in PASSTHROUGH or name in PASSTHROUGH:
                result = set(all_arg_taint)
                if short in ("list", "tuple") and call.args \
                        and self._is_set_expr(call.args[0]):
                    result.add(Taint(
                        SETORDER,
                        (f"{site}: {short}() over a set (hash order)",),
                    ))
                return result
            if any(name.startswith(p) for p in SINK_EXTERNAL_PREFIXES):
                self._check_sink(call, f"{short}", arg_taints)
                return set()
            # Unknown external: be conservative about pass-through so a
            # tainted value laundered through e.g. `copy.deepcopy` survives.
            return set(all_arg_taint)

        if callee is not None and callee.kind == "func":
            target = callee.target
            self._apply_callee_sinks(call, target, arg_taints)
            summary = self.analysis.summaries.get(target)
            if summary is not None:
                cname = self.program.functions[target].name
                for kind, trace in summary.ret.items():
                    result.add(Taint(kind, trace).extend(
                        f"{site}: {self.fn.name}() receives tainted return "
                        f"of {cname}()"
                    ))
                for i in summary.param_ret:
                    for t in arg_taints.get(i, ()):
                        result.add(t.extend(
                            f"{site}: value passes through {cname}()"
                        ))
            return result

        # Unresolved call: method sinks by name, then conservative merge.
        if isinstance(call.func, ast.Attribute) and call.func.attr in SINK_METHOD_NAMES:
            self._check_sink(call, call.func.attr, arg_taints)
            return set()
        return set(all_arg_taint)

    def _apply_callee_sinks(
        self, call: ast.Call, target: str, arg_taints: dict[int, set[Taint]]
    ) -> None:
        """Sink checks for a resolved program callee: intrinsic sink tables
        plus the callee's computed param→sink summary."""
        sink_name = self.analysis.sink_name(target)
        if sink_name is not None:
            self._check_sink(call, sink_name, arg_taints)
        psink = self.analysis.param_sinks(target)
        if not psink:
            return
        site = _loc(self.fn, call)
        cname = self.program.functions[target].name
        for i, hits in psink.items():
            for t in arg_taints.get(i, ()):
                for hit in hits:
                    chain = t.trace + (
                        f"{site}: {self.fn.name}() passes tainted value into "
                        f"{cname}()",
                    ) + hit.trace
                    self._record_sink_flow(call, hit.sink, t.kind, chain)

    def _check_sink(
        self, call: ast.Call, sink_name: str, arg_taints: dict[int, set[Taint]]
    ) -> None:
        site = _loc(self.fn, call)
        for taints in arg_taints.values():
            for t in taints:
                chain = t.trace + (
                    f"{site}: tainted value reaches {sink_name}() [sink]",
                )
                self._record_sink_flow(call, sink_name, t.kind, chain)

    def _record_sink_flow(
        self, call: ast.Call, sink_name: str, kind: object, chain: tuple[str, ...]
    ) -> None:
        if isinstance(kind, tuple) and kind and kind[0] == "param":
            # Taint came from one of our own parameters: contribute to this
            # function's param->sink summary instead of a finding.
            self.param_sink.setdefault(kind[1], set()).add(
                SinkHit(sink=sink_name, trace=chain)
            )
            return
        if self.emit and isinstance(kind, str):
            self.analysis.findings.append(TaintFinding(
                rule_id=KIND_RULES[kind],
                path=self.fn.path,
                line=call.lineno,
                col=call.col_offset,
                sink=sink_name,
                kind=kind,
                trace=chain,
            ))

    # -- statements --------------------------------------------------------

    def _assign_name(self, name: str, taints: set[Taint], is_set: bool) -> None:
        if taints:
            self.env[name] = set(taints)
        else:
            self.env.pop(name, None)
        if is_set:
            self.set_vars.add(name)
        else:
            self.set_vars.discard(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        taints = self.taint_of(node.value)
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            self._bind_target(target, taints, is_set, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind_target(
                node.target, self.taint_of(node.value),
                self._is_set_expr(node.value), node,
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        add = self.taint_of(node.value)
        if isinstance(node.target, ast.Name):
            if add:
                self.env.setdefault(node.target.id, set()).update(add)
        elif isinstance(node.target, ast.Attribute):
            self._bind_field(node.target, add, node)
        self.generic_visit(node)

    def _bind_target(
        self, target: ast.expr, taints: set[Taint], is_set: bool, at: ast.AST
    ) -> None:
        if isinstance(target, ast.Name):
            self._assign_name(target.id, taints, is_set)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, taints, False, at)
        elif isinstance(target, ast.Attribute):
            self._bind_field(target, taints, at)
        elif isinstance(target, ast.Subscript):
            # d[k] = tainted -> the container is tainted.
            if isinstance(target.value, ast.Name) and taints:
                self.env.setdefault(target.value.id, set()).update(taints)

    def _bind_field(self, target: ast.Attribute, taints: set[Taint], at: ast.AST) -> None:
        if (
            isinstance(target.value, ast.Name)
            and target.value.id in ("self", "cls")
            and self.fn.class_qualname is not None
        ):
            real = {t for t in taints if isinstance(t.kind, str)}
            if real:
                self.analysis.taint_field(
                    self.fn.class_qualname, target.attr,
                    {
                        t.kind: t.trace + (
                            f"{_loc(self.fn, at)}: stored into field "
                            f"self.{target.attr} by {self.fn.name}()",
                        )
                        for t in real
                    },
                )

    def visit_For(self, node: ast.For) -> None:
        taints = self._iter_taint(node.iter, node)
        self._bind_target(node.target, taints, False, node)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.ret |= self.taint_of(node.value)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # Evaluate for sink effects even when the result is discarded.
        self.taint_of(node.value)
        self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        # Do not descend into nested defs — they are separate functions.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            self.visit(child)

    def run(self) -> Summary:
        for stmt in self.fn.node.body:
            self.visit(stmt)
        summary = Summary()
        for t in self.ret:
            if isinstance(t.kind, str):
                prev = summary.ret.get(t.kind)
                if prev is None or len(t.trace) < len(prev):
                    summary.ret[t.kind] = t.trace
            elif isinstance(t.kind, tuple) and t.kind[0] == "param":
                summary.param_ret.add(t.kind[1])
        for i, hits in self.param_sink.items():
            summary.param_sink[i] = tuple(sorted(hits, key=lambda h: (h.sink, h.trace)))
        return summary


class TaintAnalysis:
    """Fixed-point driver over the program's functions."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: dict[str, Summary] = {}
        self.field_taints: dict[tuple[str, str], dict[str, tuple[str, ...]]] = {}
        self.findings: list[TaintFinding] = []
        self._fields_dirty = False

    # -- shared state ------------------------------------------------------

    def sink_name(self, qualname: str) -> str | None:
        if qualname in SINK_QUALNAMES:
            return SINK_QUALNAMES[qualname]
        for cls in PBFT_MESSAGE_CLASSES:
            if qualname == cls or qualname == f"{cls}.__init__":
                return cls.rsplit(".", 1)[-1]
        short = qualname.rsplit(".", 1)[-1]
        if short in SINK_METHOD_NAMES or short in SINK_SHORT_NAMES:
            return short
        return None

    def param_sinks(self, qualname: str) -> dict[int, tuple[SinkHit, ...]]:
        summary = self.summaries.get(qualname)
        return summary.param_sink if summary is not None else {}

    def field_taint_of(self, class_qualname: str, attr: str) -> dict[str, tuple[str, ...]]:
        # Walk declared bases so a field tainted in a parent class is seen
        # through subclass reads.
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            cq = queue.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            got = self.field_taints.get((cq, attr))
            if got:
                return got
            info = self.program.classes.get(cq)
            if info is not None:
                queue.extend(info.bases)
        return {}

    def taint_field(
        self, class_qualname: str, attr: str, kinds: dict[str, tuple[str, ...]]
    ) -> None:
        slot = self.field_taints.setdefault((class_qualname, attr), {})
        for kind, trace in kinds.items():
            if kind not in slot:
                slot[kind] = trace
                self._fields_dirty = True

    # -- driver ------------------------------------------------------------

    def run(self) -> list[TaintFinding]:
        order = sorted(self.program.functions)
        # Fixed point: summaries + field taints.
        for _ in range(_MAX_PASSES):
            changed = False
            self._fields_dirty = False
            for qual in order:
                fn = self.program.functions[qual]
                summary = _FunctionTaint(self, fn, emit=False).run()
                prev = self.summaries.get(qual)
                if prev is None or prev.signature() != summary.signature():
                    self.summaries[qual] = summary
                    changed = True
            if not changed and not self._fields_dirty:
                break
        # Emission pass with converged summaries.
        self.findings = []
        for qual in order:
            _FunctionTaint(self, self.program.functions[qual], emit=True).run()
        # Deduplicate: one finding per (rule, site, sink) with the shortest
        # witness chain.
        best: dict[tuple, TaintFinding] = {}
        for f in self.findings:
            key = (f.rule_id, f.path, f.line, f.col, f.sink)
            old = best.get(key)
            if old is None or len(f.trace) < len(old.trace):
                best[key] = f
        out = sorted(
            best.values(), key=lambda f: (f.path, f.line, f.col, f.rule_id, f.sink)
        )
        return out


def analyze_taint(program: Program) -> list[TaintFinding]:
    return TaintAnalysis(program).run()
