"""Whole-program call graph with alias-aware name resolution.

The flow analyzer's three passes (taint, lock order, shared-write) share one
view of the program, built here in two phases:

1. **Index** — every module under the scan roots is parsed (through the
   shared AST cache) and its imports, classes, functions, and methods are
   registered under *qualified names* (``repro.util.clock.WallClock.now``).
   Relative imports resolve against the module's package; ``import x as y``
   and ``from x import f as g`` aliases resolve exactly as in the linter.
2. **Resolve** — every call site in every function body is resolved to
   either a program function (an intra-program edge), an external dotted
   name (``time.time`` — matched against source/sink tables), or left
   unresolved. Method calls resolve through the receiver when it is
   ``self``/``cls`` (walking the declared base-class chain) and otherwise
   through a *unique-method* index: an attribute call whose name names
   exactly one method in the whole program resolves to it; ambiguous names
   stay unresolved rather than guessing.

Thread-entry edges are first-class: ``parallel_map(fn, …)``,
``Thread(target=fn)``, and ``executor.submit(fn, …)``/``pool.map(fn, …)``
record an edge *caller → fn* marked ``thread=True``, so downstream passes
know which functions execute off the caller's thread.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError

from ..astcache import parse_module

# Receiver names that mark `.submit(fn)` / `.map(fn)` as a pool dispatch.
_POOL_HINTS = ("pool", "executor", "workers")
# Method names too generic to resolve through the unique-method index even
# when the program happens to define exactly one: these collide with
# builtin container/stdlib APIs constantly.
_GENERIC_METHODS = frozenset({
    "get", "put", "add", "append", "update", "pop", "items", "keys",
    "values", "copy", "clear", "run", "close", "read", "write", "send",
    "now", "result", "submit", "join", "start", "stop", "name", "next",
})


@dataclass(frozen=True)
class Callee:
    """Resolved target of one call site."""

    kind: str        # "func" (program function) | "external" (dotted name)
    target: str      # qualname or external dotted path
    line: int
    col: int


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function body, after resolution."""

    node: ast.Call
    callee: Callee | None          # None = unresolved
    thread_targets: list[str] = field(default_factory=list)  # qualnames run on other threads


@dataclass
class FunctionInfo:
    """One function or method registered in the program index."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None     # enclosing class, for methods
    params: list[str]              # positional parameter names (self included)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    qualname: str
    module: str
    bases: list[str]               # resolved dotted base names (best effort)
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass
class ModuleInfo:
    name: str
    path: str
    source: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)


class Program:
    """The resolved whole-program index the flow passes consume."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.method_index: dict[str, list[str]] = {}
        # caller qualname -> [(callee qualname, thread?)]
        self.edges: dict[str, list[tuple[str, bool]]] = {}

    # -- lookups -----------------------------------------------------------

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def callers_of(self, qualname: str) -> list[str]:
        return sorted(
            caller for caller, outs in self.edges.items()
            if any(target == qualname for target, _ in outs)
        )

    def thread_entries(self) -> list[str]:
        """Functions that run on a spawned thread (pool task / Thread target)."""
        entries = set()
        for outs in self.edges.values():
            for target, threaded in outs:
                if threaded:
                    entries.add(target)
        return sorted(entries)

    def resolve_method(self, class_qualname: str, method: str) -> str | None:
        """Look up *method* on a class, walking declared bases."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            cq = queue.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            info = self.classes.get(cq)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def to_dict(self) -> dict:
        """JSON view for ``repro flowcheck --callgraph-out``."""
        return {
            "modules": sorted(self.modules),
            "functions": {
                q: {
                    "path": f.path,
                    "line": f.line,
                    "class": f.class_qualname,
                }
                for q, f in sorted(self.functions.items())
            },
            "edges": sorted(
                [caller, target, "thread" if threaded else "call"]
                for caller, outs in self.edges.items()
                for target, threaded in outs
            ),
            "thread_entries": self.thread_entries(),
        }


# ---------------------------------------------------------------------------
# Phase 1: index
# ---------------------------------------------------------------------------


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for *path* under scan root *root*.

    ``src/repro/x/y.py`` scanned as root ``src/repro`` becomes ``repro.x.y``:
    names are taken relative to the root's parent, so intra-package imports
    (``from repro.util import …``) resolve against the same namespace the
    interpreter would use with ``PYTHONPATH=src``.
    """
    try:
        rel = path.resolve().relative_to(root.resolve().parent)
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def _collect_aliases(
    body: list[ast.stmt], module: str, *, is_package: bool = False
) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    aliases[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: level 1 = this package, 2 = parent, …
                # For a plain module, its package is one component up; a
                # package __init__ *is* its package, so strip one less.
                strip = node.level if not is_package else node.level - 1
                base_parts = module.split(".")
                base_parts = base_parts[: len(base_parts) - strip] if strip else base_parts
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
        elif isinstance(node, ast.If):
            # `if TYPE_CHECKING:` / version guards hide imports the runtime
            # still semantically depends on — index both branches.
            aliases.update(_collect_aliases(node.body, module, is_package=is_package))
            aliases.update(_collect_aliases(node.orelse, module, is_package=is_package))
    return aliases


def _dotted_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _index_function(
    program: Program,
    module: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualprefix: str,
    class_qualname: str | None,
) -> None:
    qualname = f"{qualprefix}.{node.name}"
    params = [a.arg for a in node.args.posonlyargs + node.args.args]
    info = FunctionInfo(
        qualname=qualname,
        module=module.name,
        path=module.path,
        node=node,
        class_qualname=class_qualname,
        params=params,
    )
    program.functions[qualname] = info
    if class_qualname is not None:
        program.classes[class_qualname].methods.setdefault(node.name, qualname)
        program.method_index.setdefault(node.name, []).append(qualname)
    # Nested defs become their own functions under `<qual>.<locals>`;
    # the walk stops at def/class boundaries so deeper nesting indexes
    # under its own parent.
    for child in _direct_child_defs(node):
        _index_function(program, module, child, f"{qualname}.<locals>", class_qualname)


def _direct_child_defs(parent: ast.AST) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Defs in *parent*'s body that are not inside another def/class."""
    found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    stack: list[ast.AST] = [
        child for child in ast.iter_child_nodes(parent)
    ]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(node)
            continue
        if isinstance(node, ast.ClassDef):
            continue
        stack.extend(ast.iter_child_nodes(node))
    found.sort(key=lambda n: (n.lineno, n.col_offset))
    return found


def _index_module(program: Program, module: ModuleInfo, *, is_package: bool = False) -> None:
    program.modules[module.name] = module
    module.aliases = _collect_aliases(
        module.tree.body, module.name, is_package=is_package
    )
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _index_function(program, module, node, module.name, None)
        elif isinstance(node, ast.ClassDef):
            class_qualname = f"{module.name}.{node.name}"
            bases = []
            for base in node.bases:
                dotted = _dotted_name(base, module.aliases)
                if dotted is not None:
                    # A bare base name refers to a class in this module.
                    if "." not in dotted and f"{module.name}.{dotted}" != class_qualname:
                        dotted = f"{module.name}.{dotted}"
                    bases.append(dotted)
            program.classes[class_qualname] = ClassInfo(
                qualname=class_qualname, module=module.name, bases=bases
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _index_function(program, module, item, class_qualname, class_qualname)


# ---------------------------------------------------------------------------
# Phase 2: resolve calls
# ---------------------------------------------------------------------------


class Resolver:
    """Resolves names inside one function body to program/external targets."""

    def __init__(self, program: Program, fn: FunctionInfo) -> None:
        self.program = program
        self.fn = fn
        self.module = program.modules[fn.module]
        self.aliases = self.module.aliases

    def _expand(self, dotted: str) -> str:
        """Apply the module alias map to the chain's root segment."""
        root, _, rest = dotted.partition(".")
        root = self.aliases.get(root, root)
        return f"{root}.{rest}" if rest else root

    def resolve_dotted(self, dotted: str) -> Callee | None:
        """Map an alias-expanded dotted path onto the program index."""
        program = self.program
        # Exact function (module.func or module.Class.method via import).
        if dotted in program.functions:
            return Callee("func", dotted, 0, 0)
        # Class constructor -> its __init__ (or the class itself when the
        # class has no explicit __init__; passes treat that as opaque).
        if dotted in program.classes:
            init = program.resolve_method(dotted, "__init__")
            return Callee("func", init, 0, 0) if init else Callee("external", dotted, 0, 0)
        # module.Class.method spelled through an imported module object.
        head, _, attr = dotted.rpartition(".")
        if head in program.classes:
            target = program.resolve_method(head, attr)
            if target is not None:
                return Callee("func", target, 0, 0)
        return None

    def resolve_callable(self, node: ast.expr) -> Callee | None:
        """Resolve a call target / function reference expression."""
        program, fn = self.program, self.fn
        line = getattr(node, "lineno", fn.line)
        col = getattr(node, "col_offset", 0)

        if isinstance(node, ast.Name):
            expanded = self.aliases.get(node.id, node.id)
            if "." not in expanded:
                # Nested function defined in this (or an enclosing) function.
                scope = fn.qualname
                while scope:
                    nested = f"{scope}.<locals>.{expanded}"
                    if nested in program.functions:
                        return Callee("func", nested, line, col)
                    scope = scope.rsplit(".<locals>.", 1)[0] if ".<locals>." in scope else ""
                # Module-level function or class in this module.
                local = f"{fn.module}.{expanded}"
                hit = self.resolve_dotted(local)
                if hit is not None:
                    return Callee(hit.kind, hit.target, line, col)
                return Callee("external", expanded, line, col)
            hit = self.resolve_dotted(expanded)
            if hit is not None:
                return Callee(hit.kind, hit.target, line, col)
            return Callee("external", expanded, line, col)

        if isinstance(node, ast.Attribute):
            # self.method / cls.method: walk the declared class hierarchy.
            recv = node.value
            if isinstance(recv, ast.Name) and recv.id in ("self", "cls") \
                    and fn.class_qualname is not None:
                target = program.resolve_method(fn.class_qualname, node.attr)
                if target is not None:
                    return Callee("func", target, line, col)
                return None  # unknown attribute on self: field or inherited-external
            dotted = _dotted_name(node, self.aliases)
            if dotted is not None:
                expanded = self._expand(dotted)
                hit = self.resolve_dotted(expanded)
                if hit is not None:
                    return Callee(hit.kind, hit.target, line, col)
                # The chain is external only when its root is an *imported*
                # name (``time.time``, ``os.environ.get``). A bare local
                # variable receiver falls through to the method index.
                base = node
                while isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in self.aliases:
                    return Callee("external", expanded, line, col)
            # obj.method(): unique-method fallback.
            candidates = program.method_index.get(node.attr, [])
            if len(candidates) == 1 and node.attr not in _GENERIC_METHODS:
                return Callee("func", candidates[0], line, col)
            return None
        return None


_THREAD_FACTORIES = {
    "threading.Thread": "target",
    "threading.Timer": None,       # positional arg 1
}
_POOL_METHODS = frozenset({"submit", "map"})
_PARALLEL_MAP = ("repro.util.parallel.parallel_map", "parallel_map")


def _thread_targets(resolver: Resolver, call: ast.Call, callee: Callee | None) -> list[str]:
    """Function qualnames this call hands to another thread."""
    refs: list[ast.expr] = []
    if callee is not None and callee.kind == "external":
        if callee.target in _THREAD_FACTORIES:
            for kw in call.keywords:
                if kw.arg == "target":
                    refs.append(kw.value)
            if callee.target == "threading.Timer" and len(call.args) >= 2:
                refs.append(call.args[1])
    target_name = callee.target if callee is not None else ""
    func = call.func
    # parallel_map is recognized by name even when the receiver can't be
    # resolved (`self.pool.parallel_map(fn, …)`) — the name is specific
    # enough that a syntactic match beats losing the thread edge.
    syntactic_pm = (isinstance(func, ast.Name) and func.id == "parallel_map") or (
        isinstance(func, ast.Attribute) and func.attr == "parallel_map"
    )
    if call.args and (
        syntactic_pm
        or target_name in _PARALLEL_MAP
        or target_name.endswith(".parallel_map")
    ):
        refs.append(call.args[0])
    if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
        recv = func.value
        recv_name = ""
        if isinstance(recv, ast.Name):
            recv_name = recv.id
        elif isinstance(recv, ast.Attribute):
            recv_name = recv.attr
        if any(hint in recv_name.lower() for hint in _POOL_HINTS):
            if call.args:
                refs.append(call.args[0])
    targets = []
    for ref in refs:
        if isinstance(ref, ast.Lambda):
            # `parallel_map(lambda x: self.fetch(x), …)` — every function the
            # lambda body calls runs on the worker thread.
            for inner in ast.walk(ref.body):
                if isinstance(inner, ast.Call):
                    resolved = resolver.resolve_callable(inner.func)
                    if resolved is not None and resolved.kind == "func":
                        targets.append(resolved.target)
            continue
        resolved = resolver.resolve_callable(ref)
        if resolved is not None and resolved.kind == "func":
            targets.append(resolved.target)
    return targets


def _own_statements(fn: FunctionInfo) -> list[ast.AST]:
    """All AST nodes of a function body, excluding nested def bodies
    (nested defs are separate functions in the index)."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(fn.node.body)
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)
    return out


def _resolve_calls(program: Program) -> None:
    for fn in program.functions.values():
        resolver = Resolver(program, fn)
        sites: list[CallSite] = []
        for node in _own_statements(fn):
            if not isinstance(node, ast.Call):
                continue
            callee = resolver.resolve_callable(node.func)
            threads = _thread_targets(resolver, node, callee)
            sites.append(CallSite(node=node, callee=callee, thread_targets=threads))
            outs = program.edges.setdefault(fn.qualname, [])
            if callee is not None and callee.kind == "func":
                outs.append((callee.target, False))
            for t in threads:
                outs.append((t, True))
        # Deterministic order for downstream traversals.
        sites.sort(key=lambda s: (s.node.lineno, s.node.col_offset))
        fn.calls = sites
    for outs in program.edges.values():
        outs.sort()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _display_path(path: Path) -> str:
    import os

    try:
        return path.resolve().relative_to(Path(os.getcwd()).resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def build_program(paths: list[str | Path]) -> Program:
    """Parse and index every ``.py`` file under the given roots."""
    program = Program()
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            files = sorted(root.rglob("*.py"))
        elif root.is_file():
            files = [root]
        else:
            raise AnalysisError(f"flow target does not exist: {root}")
        base = root if root.is_dir() else root.parent
        for file in files:
            parsed = parse_module(file, display_path=_display_path(file))
            name = module_name_for(file, base)
            if name in program.modules:
                continue
            _index_module(
                program,
                ModuleInfo(
                    name=name, path=parsed.path, source=parsed.source, tree=parsed.tree
                ),
                is_package=file.name == "__init__.py",
            )
    _resolve_calls(program)
    return program
