"""Front door of the flow analyzer: build → analyze → filter → report.

``analyze_paths`` is what the ``repro flowcheck`` CLI and the flow-gate CI
job call: it builds the whole-program index once (through the shared AST
cache), runs the taint and concurrency passes over it, converts raw pass
output into :class:`~repro.analysis.rules.FlowFinding` records, applies the
same pragma machinery the linter uses (``# reprolint: disable=FLOW501``
suppresses a finding whose *anchor line* carries the pragma;
``disable-file`` suppresses for the whole module), and returns findings in
a deterministic order — sorted by path, line, column, rule — so baseline
diffs never churn from traversal order.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from ..rules import FlowFinding, parse_pragmas
from .callgraph import Program, build_program
from .concurrency import analyze_concurrency
from .taint import analyze_taint


@dataclass
class FlowReport:
    """Findings plus the program view they were computed from."""

    findings: list[FlowFinding]
    program: Program
    stats: dict = field(default_factory=dict)


def _source_for(program: Program, path: str) -> str | None:
    for module in program.modules.values():
        if module.path == path:
            return module.source
    try:
        return Path(path).read_text(encoding="utf-8")
    except OSError:
        return None


_TRACE_LOC_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+): ")


def _apply_pragmas(program: Program, findings: list[FlowFinding]) -> list[FlowFinding]:
    """Drop findings suppressed at the sink (finding anchor) *or* at the
    source — a pragma on the first step of the witness chain kills every
    downstream finding that chain feeds, so one annotation at the origin
    suppresses the flow instead of decorating every sink."""
    pragma_cache: dict[str, object] = {}

    def pragmas_for(path: str):
        if path not in pragma_cache:
            source = _source_for(program, path)
            pragma_cache[path] = parse_pragmas(source) if source is not None else None
        return pragma_cache[path]

    kept: list[FlowFinding] = []
    for f in findings:
        pragmas = pragmas_for(f.path)
        if pragmas is not None and not pragmas.allows(f.rule_id, f.line):
            continue
        if f.trace:
            loc = _TRACE_LOC_RE.match(f.trace[0])
            if loc is not None:
                src_pragmas = pragmas_for(loc.group("path"))
                if src_pragmas is not None and not src_pragmas.allows(
                    f.rule_id, int(loc.group("line"))
                ):
                    continue
        kept.append(f)
    return kept


def analyze_program(program: Program) -> FlowReport:
    """Run both flow passes over an already-built program index."""
    findings: list[FlowFinding] = []

    taint = analyze_taint(program)
    for t in taint:
        findings.append(FlowFinding.for_rule(
            t.rule_id, t.path, t.line, t.col,
            f"{t.kind} value flows into {t.sink}()",
            trace=t.trace,
        ))

    conc = analyze_concurrency(program)
    for c in conc:
        findings.append(FlowFinding.for_rule(
            c.rule_id, c.path, c.line, c.col, c.message, trace=c.trace,
        ))

    findings = _apply_pragmas(program, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id, f.message))
    stats = {
        "modules": len(program.modules),
        "functions": len(program.functions),
        "call_edges": sum(len(v) for v in program.edges.values()),
        "thread_entries": len(program.thread_entries()),
        "taint_findings": len(taint),
        "concurrency_findings": len(conc),
        "suppressed": len(taint) + len(conc) - len(findings),
    }
    return FlowReport(findings=findings, program=program, stats=stats)


def analyze_paths(paths: list[str]) -> FlowReport:
    """Build the program index for *paths* and analyze it."""
    return analyze_program(build_program(list(paths)))
