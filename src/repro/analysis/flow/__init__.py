"""Interprocedural flow analysis: nondeterminism taint + static lock checks.

Three passes over one whole-program index (see :mod:`.callgraph`):

* :mod:`.taint` — FLOW501–506, nondeterminism sources reaching
  consensus-critical sinks through any number of calls;
* :mod:`.concurrency` — FLOW601–603, static lock-order cycles, unguarded
  thread-shared writes, blocking under a lock;
* :mod:`.engine` — orchestration, pragma filtering, deterministic output.
"""

from .callgraph import Program, build_program
from .concurrency import analyze_concurrency
from .engine import FlowReport, analyze_paths, analyze_program
from .taint import analyze_taint

__all__ = [
    "Program",
    "build_program",
    "analyze_paths",
    "analyze_program",
    "analyze_taint",
    "analyze_concurrency",
    "FlowReport",
]
