"""Ledger invariant checker (SAN302–SAN305).

Live mode (:func:`check_block_commit`, called by the sanitizer after every
block a peer commits) re-verifies, *independently of the append path's own
validation*, that the committed chain still satisfies the paper's integrity
invariants:

* **SAN302** — every block's ``previous_hash`` equals the preceding
  header's hash (the hash chain is unbroken from the checkpoint forward);
* **SAN303** — every block's ``data_hash`` equals the recomputed Merkle
  root of its transaction envelopes;
* **SAN305** — replaying the write sets of all VALID transactions from the
  checkpoint reproduces the live world state byte for byte.

(The height-monotonicity check, SAN304, lives in the sanitizer itself
because it needs per-peer commit history across calls.)

Offline mode (:func:`check_store`) audits a finished chain the same way but
additionally *pinpoints* a tampered block: on a Merkle-root mismatch it
re-verifies each transaction's endorsement signatures over
:func:`~repro.fabric.peer.endorsement_payload` — the altered transaction is
the one whose endorsers no longer verify, and the finding names the block
number, tx index, and tx id.
"""

from __future__ import annotations

import hashlib

from repro.errors import IdentityError, SignatureError
from repro.util.serialization import canonical_json

from .rules import Finding


def _replay_writes(store) -> dict[str, bytes]:
    """World state implied by the chain: VALID txs' writes, in order."""
    from repro.fabric.tx import ValidationCode

    replayed: dict[str, bytes] = {}
    for block in store.blocks():
        codes = block.validation_codes or tuple(
            ValidationCode.VALID for _ in block.transactions
        )
        for tx, code in zip(block.transactions, codes):
            if code is not ValidationCode.VALID:
                continue
            for write in tx.rwset.writes:
                if write.is_delete:
                    replayed.pop(write.key, None)
                else:
                    replayed[write.key] = write.value
    return replayed


def state_digest(items: dict[str, bytes]) -> str:
    return hashlib.sha256(
        canonical_json({k: v.hex() for k, v in sorted(items.items())})
    ).hexdigest()


def _check_links_and_roots(store, location: str) -> list[Finding]:
    findings: list[Finding] = []
    from repro.crypto.merkle import merkle_root

    prev = store.base_prev_hash
    for block in store.blocks():
        if block.header.previous_hash != prev:
            findings.append(
                Finding.for_rule(
                    "SAN302", location, block.number, 0,
                    f"block {block.number}: previous_hash "
                    f"{block.header.previous_hash[:16]}… does not match prior "
                    f"header hash {prev[:16]}…",
                )
            )
        recomputed = merkle_root(
            [tx.envelope_bytes() for tx in block.transactions]
        ).hex()
        if recomputed != block.header.data_hash:
            findings.append(
                Finding.for_rule(
                    "SAN303", location, block.number, 0,
                    f"block {block.number}: recomputed Merkle root "
                    f"{recomputed[:16]}… != header data_hash "
                    f"{block.header.data_hash[:16]}…"
                    + _pinpoint_tampered_tx(block),
                )
            )
        prev = block.header.hash()
    return findings


def _pinpoint_tampered_tx(block) -> str:
    """Name the altered tx: its endorsement signatures no longer verify."""
    from repro.fabric.peer import endorsement_payload

    suspects: list[str] = []
    for tx_num, tx in enumerate(block.transactions):
        if not tx.endorsements:
            continue
        payload = endorsement_payload(tx)
        any_valid = False
        for endorsement in tx.endorsements:
            try:
                endorsement.endorser.public_key.verify(payload, endorsement.signature)
                any_valid = True
                break
            except (SignatureError, IdentityError):
                continue
        if not any_valid:
            suspects.append(f"tx {tx_num} ({tx.tx_id[:16]})")
    if suspects:
        return f"; tampered: {', '.join(suspects)}"
    return "; no single tx implicated (header-level tamper)"


def _check_replay(store, world, location: str) -> list[Finding]:
    if store.base_height != 0:
        return []  # checkpointed store: pre-snapshot writes are not replayable
    replayed = _replay_writes(store)
    live = dict(world.range("", ""))
    if replayed == live:
        return []
    missing = sorted(set(replayed) - set(live))
    extra = sorted(set(live) - set(replayed))
    changed = sorted(
        k for k in set(replayed) & set(live) if replayed[k] != live[k]
    )
    detail = []
    if missing:
        detail.append(f"missing from live state: {missing[:3]}")
    if extra:
        detail.append(f"unexplained live keys: {extra[:3]}")
    if changed:
        detail.append(f"value mismatch: {changed[:3]}")
    return [
        Finding.for_rule(
            "SAN305", location, store.height, 0,
            f"replay digest {state_digest(replayed)[:16]}… != live state "
            f"digest {state_digest(live)[:16]}… ({'; '.join(detail)})",
        )
    ]


def check_block_commit(peer, block) -> list[Finding]:
    """Per-commit invariant pass over *peer*'s chain (live sanitizer)."""
    location = f"ledger:{peer.name}"
    findings = _check_links_and_roots(peer.ledger, location)
    findings.extend(_check_replay(peer.ledger, peer.world, location))
    return findings


def check_store(store, world=None, location: str = "ledger") -> list[Finding]:
    """Offline audit of a finished chain (and optionally its world state)."""
    findings: list[Finding] = []
    expected = store.base_height
    for block in store.blocks():
        if block.number != expected:
            findings.append(
                Finding.for_rule(
                    "SAN304", location, block.number, 0,
                    f"block numbered {block.number} where {expected} expected",
                )
            )
        expected += 1
    findings.extend(_check_links_and_roots(store, location))
    if world is not None:
        findings.extend(_check_replay(store, world, location))
    return findings
