"""``reprolint`` — AST-based determinism and hygiene analyzer.

Two rule families (catalogue in :mod:`repro.analysis.rules`):

* **DET1xx** fire only in *chaincode modules* — files under a
  ``chaincodes/`` directory or defining a ``Chaincode`` subclass. Chaincode
  is simulated independently by every endorser, so any ambient input (wall
  clock, RNG, environment, uuid, hash order) or non-canonical encoding
  diverges the rwsets and voids the endorsement-policy comparison.
* **HYG2xx** fire everywhere — concurrency and error-handling hygiene for
  the threaded paths added around ``util.parallel``.

The analyzer is purely syntactic: imports are resolved through their
aliases (``import numpy.random as nr`` still trips DET102) but no types are
inferred, so the rules aim at the unambiguous spellings of each bug class
and accept ``# reprolint: disable=RULE`` pragmas for the rest.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path

from repro.errors import AnalysisError

from .rules import Finding, parse_pragmas

# Dotted call targets that read ambient state, per rule. Public: the flow
# analyzer (repro.analysis.flow.taint) seeds its taint sources from these
# same tables, so a spelling added here is caught both locally (DET1xx in
# chaincode) and interprocedurally (FLOW5xx into any consensus sink).
CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.thread_time", "time.thread_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns", "time.localtime",
    "time.gmtime", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
RANDOM_ROOTS = ("random.", "secrets.", "numpy.random.")
RANDOM_CALLS = frozenset({"os.urandom"})
ENV_CALLS = frozenset({"os.getenv", "os.environb.get"})
ENV_ATTRS = frozenset({"os.environ", "os.environb"})
UUID_CALLS = frozenset({"uuid.uuid1", "uuid.uuid3", "uuid.uuid4", "uuid.uuid5"})

# Backwards-compatible private aliases (internal call sites below).
_CLOCK_CALLS = CLOCK_CALLS
_RANDOM_ROOTS = RANDOM_ROOTS
_ENV_CALLS = ENV_CALLS
_ENV_ATTRS = ENV_ATTRS
_UUID_CALLS = UUID_CALLS
_SET_CONSTRUCTORS = {"set", "frozenset"}
_MUTATING_METHODS = {
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "remove", "discard", "insert", "sort",
}
_CONTAINER_CONSTRUCTORS = {
    "dict", "list", "set", "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque", "defaultdict", "OrderedDict",
    "Counter", "deque",
}

# Float presentation types in a format spec / printf string.
_FLOAT_SPEC_CHARS = "feEgG%"


def _is_float_format_spec(spec: str) -> bool:
    spec = spec.strip()
    return bool(spec) and spec[-1] in _FLOAT_SPEC_CHARS


def _printf_has_float(fmt: str) -> bool:
    i = 0
    while True:
        i = fmt.find("%", i)
        if i < 0 or i + 1 >= len(fmt):
            return False
        j = i + 1
        while j < len(fmt) and fmt[j] in "-+ #0123456789.*":
            j += 1
        if j < len(fmt) and fmt[j] in "feEgG":
            return True
        i = j + 1


class _Scope:
    """One function (or module) body: tracked locals and globals."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.global_names: set[str] = set()


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, chaincode: bool) -> None:
        self.path = path
        self.chaincode = chaincode
        self.findings: list[Finding] = []
        self.aliases: dict[str, str] = {}
        self.module_containers: set[str] = set()
        self.scopes: list[_Scope] = [_Scope()]
        self._lock_depth = 0  # nesting depth of `with <lock>:` blocks

    # -- helpers ----------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding.for_rule(
                rule_id, self.path,
                getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
                message,
            )
        )

    def _dotted(self, node: ast.expr) -> str | None:
        """Resolve an attribute/name chain to its aliased dotted origin."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def _in_function(self) -> bool:
        return len(self.scopes) > 1

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- scopes ------------------------------------------------------------

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._check_mutable_defaults(node)
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        # Writes lexically inside `with <lock>:` are what HYG204's fix hint
        # asks for — don't flag them.
        locks = sum(1 for item in node.items if self._looks_like_lock(item.context_expr))
        self._lock_depth += locks
        self.generic_visit(node)
        self._lock_depth -= locks

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Global(self, node: ast.Global) -> None:
        self.scopes[-1].global_names.update(node.names)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        is_container = self._is_container_value(node.value)
        is_set = self._is_set_value(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if not self._in_function() and is_container:
                    self.module_containers.add(target.id)
                if is_set:
                    self.scopes[-1].set_names.add(target.id)
                elif target.id in self.scopes[-1].set_names:
                    self.scopes[-1].set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            isinstance(node.target, ast.Name)
            and node.value is not None
            and not self._in_function()
            and self._is_container_value(node.value)
        ):
            self.module_containers.add(node.target.id)
        self.generic_visit(node)

    def _is_container_value(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            dotted = self._dotted(value.func)
            return dotted in _CONTAINER_CONSTRUCTORS
        return False

    def _is_set_value(self, value: ast.expr) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            dotted = self._dotted(value.func)
            return dotted in _SET_CONSTRUCTORS
        return False

    # -- DET: calls into ambient state ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if self.chaincode and dotted is not None:
            if dotted in _CLOCK_CALLS:
                self._emit("DET101", node, f"call to {dotted}() reads the wall clock")
            elif (
                dotted.startswith(_RANDOM_ROOTS)
                or dotted in ("random", "secrets")
                or dotted in RANDOM_CALLS
            ):
                self._emit("DET102", node, f"call to {dotted}() is a nondeterministic source")
            elif dotted in _ENV_CALLS:
                self._emit("DET103", node, f"call to {dotted}() reads the process environment")
            elif dotted in _UUID_CALLS:
                self._emit("DET104", node, f"call to {dotted}() generates a per-process uuid")
            elif dotted == "json.dumps" and not self._has_sort_keys(node):
                self._emit(
                    "DET105", node,
                    "json.dumps without sort_keys=True produces order-dependent bytes",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and self._looks_like_lock(node.func.value)
            and not self._is_try_lock(node)
        ):
            self._emit(
                "HYG201", node,
                "explicit lock.acquire(); the matching release() can be skipped "
                "by an exception",
            )
        if self.chaincode:
            self._check_format_call(node)
        self.generic_visit(node)

    @staticmethod
    def _has_sort_keys(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "sort_keys":
                return not (isinstance(kw.value, ast.Constant) and kw.value.value is False)
            if kw.arg is None:  # **kwargs: give the benefit of the doubt
                return True
        return False

    @staticmethod
    def _looks_like_lock(node: ast.expr) -> bool:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        return name is not None and "lock" in name.lower()

    @staticmethod
    def _is_try_lock(node: ast.Call) -> bool:
        if node.args and isinstance(node.args[0], ast.Constant) and node.args[0].value is False:
            return True
        for kw in node.keywords:
            if kw.arg == "blocking" and isinstance(kw.value, ast.Constant) and kw.value.value is False:
                return True
        return False

    def _check_format_call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, str)
        ):
            fmt = node.func.value.value
            for seg in fmt.split("{")[1:]:
                field = seg.split("}")[0]
                if ":" in field and _is_float_format_spec(field.rsplit(":", 1)[1]):
                    self._emit(
                        "DET107", node,
                        f"float presentation format {field.rsplit(':', 1)[1]!r} in state value",
                    )
                    break

    # -- DET103: os.environ attribute access ------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.chaincode:
            dotted = self._dotted(node)
            if dotted in _ENV_ATTRS:
                self._emit("DET103", node, f"{dotted} read in chaincode")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.ctx, (ast.Store, ast.Del))
            and isinstance(node.value, ast.Name)
            and node.value.id in self.module_containers
            and self._in_function()
            and node.value.id not in self.scopes[-1].global_names
            and self._lock_depth == 0
        ):
            self._emit(
                "HYG204", node,
                f"write to module-level container {node.value.id!r} inside a function",
            )
        self.generic_visit(node)

    # -- DET106: iteration over sets --------------------------------------

    def _check_iter(self, iter_node: ast.expr, node: ast.AST) -> None:
        if not self.chaincode:
            return
        if self._is_set_value(iter_node):
            self._emit("DET106", node, "iteration over a set literal (hash order)")
        elif (
            isinstance(iter_node, ast.Name)
            and iter_node.id in self.scopes[-1].set_names
        ):
            self._emit(
                "DET106", node,
                f"iteration over set {iter_node.id!r} (hash order)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self._check_iter(comp.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- DET107: float formatting -----------------------------------------

    def visit_FormattedValue(self, node: ast.FormattedValue) -> None:
        if self.chaincode and node.format_spec is not None:
            for part in ast.walk(node.format_spec):
                if (
                    isinstance(part, ast.Constant)
                    and isinstance(part.value, str)
                    and _is_float_format_spec(part.value)
                ):
                    self._emit(
                        "DET107", node,
                        f"float presentation format {part.value!r} in f-string",
                    )
                    break
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            self.chaincode
            and isinstance(node.op, ast.Mod)
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
            and _printf_has_float(node.left.value)
        ):
            self._emit("DET107", node, "printf-style float formatting in state value")
        self.generic_visit(node)

    # -- HYG202: swallowed exceptions -------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or (
            isinstance(node.type, ast.Name) and node.type.id in ("Exception", "BaseException")
        )
        body_is_noop = all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in node.body
        )
        if broad and body_is_noop:
            self._emit(
                "HYG202", node,
                "broad except with an empty body swallows the error",
            )
        self.generic_visit(node)

    # -- HYG203: mutable default arguments --------------------------------

    def _check_mutable_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(default, ast.Call)
                and self._dotted(default.func) in _CONTAINER_CONSTRUCTORS
            ):
                self._emit(
                    "HYG203", default,
                    f"mutable default argument in {node.name}()",
                )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def is_chaincode_module(path: str, tree: ast.Module) -> bool:
    """A module whose code runs inside endorsement simulation."""
    posix = Path(path).as_posix()
    if "/chaincodes/" in posix or posix.startswith("chaincodes/"):
        return True
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
                if base_name == "Chaincode":
                    return True
    return False


def lint_source(
    source: str, path: str = "<string>", *, chaincode: bool | None = None,
    tree: ast.Module | None = None,
) -> list[Finding]:
    """Lint one module's source text; returns pragma-filtered findings.

    A pre-parsed ``tree`` (from :mod:`repro.analysis.astcache`) skips the
    parse; the caller guarantees it matches ``source``.
    """
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    if chaincode is None:
        chaincode = is_chaincode_module(path, tree)
    visitor = _Visitor(path, chaincode)
    visitor.visit(tree)
    pragmas = parse_pragmas(source)
    findings = [f for f in visitor.findings if pragmas.allows(f.rule_id, f.line)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _display_path(path: Path) -> str:
    """Stable repo-relative posix path so baselines survive checkout moves."""
    try:
        rel = path.resolve().relative_to(Path(os.getcwd()).resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: str | Path, *, chaincode: bool | None = None) -> list[Finding]:
    from .astcache import parse_module

    p = Path(path)
    parsed = parse_module(p, display_path=_display_path(p))
    return lint_source(
        parsed.source, parsed.path, chaincode=chaincode, tree=parsed.tree
    )


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise AnalysisError(f"lint target does not exist: {p}")
    return files


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
