"""Sanitizer harness: mode parsing, peer hooks, and the run report.

Sanitizers are opt-in (they re-simulate every endorsement and re-audit the
chain on every commit, so they cost real time) and are enabled per run with
a mode spec — from the ``REPRO_SANITIZE`` environment variable, the
``FrameworkConfig.sanitize`` field, or the ``--sanitize`` CLI flag::

    REPRO_SANITIZE=all                 # every sanitizer
    REPRO_SANITIZE=divergence,ledger   # just those two
    repro chaos run standard --sanitize locks

Modes: ``divergence`` (SAN301), ``ledger`` (SAN302–SAN305), ``locks``
(SAN401/SAN402), ``consensus`` (SAN306), ``recovery`` (SAN307), ``index``
(SAN308/SAN309).

:func:`install_sanitizers` wires a :class:`Sanitizer` into a channel; the
peers call back after each endorsement/commit. Findings accumulate instead
of raising, so one run reports every violation; :meth:`Sanitizer.finalize`
adds the end-of-run checks (consensus log consistency, lock-graph cycles)
and publishes the :class:`SanitizerReport` for the CLI/CI gate.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.errors import AnalysisError

from . import divergence, invariants, lockcheck
from .rules import Finding

MODES = ("divergence", "ledger", "locks", "consensus", "recovery", "index")


def parse_modes(spec: str) -> frozenset[str]:
    """Parse a mode spec: empty/off → none; ``all``/``1``/``on`` → all."""
    spec = (spec or "").strip().lower()
    if spec in ("", "0", "off", "none"):
        return frozenset()
    if spec in ("1", "all", "on", "true"):
        return frozenset(MODES)
    modes = frozenset(part.strip() for part in spec.split(",") if part.strip())
    unknown = modes - frozenset(MODES)
    if unknown:
        raise AnalysisError(
            f"unknown sanitizer mode(s) {sorted(unknown)}; valid: {', '.join(MODES)}"
        )
    return modes


def enabled_modes(spec: str = "") -> frozenset[str]:
    """Modes from an explicit spec plus the ``REPRO_SANITIZE`` environment."""
    return parse_modes(spec) | parse_modes(os.environ.get("REPRO_SANITIZE", ""))


@dataclass
class SanitizerReport:
    """Everything one sanitized run observed."""

    modes: tuple[str, ...]
    checks: dict[str, int]  # checks executed, per mode
    findings: list[Finding]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "modes": list(self.modes),
            "checks": dict(sorted(self.checks.items())),
            "findings": [f.to_dict() for f in self.findings],
            "ok": self.ok,
        }

    def render(self) -> str:
        lines = [
            f"sanitizers: {', '.join(self.modes) or '(none)'}",
            "checks: "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(self.checks.items()))
                or "none"
            ),
        ]
        if self.findings:
            lines.append(f"{len(self.findings)} finding(s):")
            lines.extend("  " + f.render() for f in self.findings)
        else:
            lines.append("no findings")
        return "\n".join(lines)


class Sanitizer:
    """Live checker attached to a channel's peers for one run."""

    def __init__(self, modes: frozenset[str]) -> None:
        self.modes = frozenset(modes)
        self.channel = None
        self.lock_registry = (
            lockcheck.LockRegistry() if "locks" in self.modes else None
        )
        self._mutex = threading.Lock()
        self._findings: list[Finding] = []
        self._checks = {mode: 0 for mode in sorted(self.modes)}
        self._expected_heights: dict[str, int] = {}
        self._finalized = False

    # -- hooks (called by Peer) -------------------------------------------

    def check_endorsement(self, peer, proposal, response) -> None:
        if "divergence" not in self.modes:
            return
        found = divergence.check_endorsement(peer, proposal, response)
        with self._mutex:
            self._checks["divergence"] += 1
            self._findings.extend(found)

    def check_commit(self, peer, block) -> None:
        found: list[Finding] = []
        if "ledger" in self.modes:
            found.extend(invariants.check_block_commit(peer, block))
            with self._mutex:
                expected = self._expected_heights.get(peer.name)
                if expected is not None and block.number != expected:
                    found.append(
                        Finding.for_rule(
                            "SAN304", f"ledger:{peer.name}", block.number, 0,
                            f"{peer.name} committed block {block.number} "
                            f"where {expected} was expected next",
                        )
                    )
                self._expected_heights[peer.name] = block.number + 1
        if "index" in self.modes:
            found.extend(self._check_index(peer, block.number))
        with self._mutex:
            if "ledger" in self.modes:
                self._checks["ledger"] += 1
            if "index" in self.modes:
                self._checks["index"] += 1
            self._findings.extend(found)

    def _check_index(self, peer, at: int) -> list[Finding]:
        """SAN308: the peer's block-incremental index must equal an index
        rebuilt from scratch out of its world state at the same height.

        Skipped when tombstones exist — deleted records are invisible to
        the world state, so a from-scratch rebuild legitimately differs
        (see :meth:`repro.index.PeerIndex.from_world`).
        """
        index = getattr(peer, "index", None)
        if index is None or index.tombstones:
            return []
        if index.height != peer.ledger.height:
            return [
                Finding.for_rule(
                    "SAN308", f"index:{peer.name}", at, 0,
                    f"{peer.name}'s index is at height {index.height} but "
                    f"its ledger is at {peer.ledger.height}",
                )
            ]
        from repro.index import PeerIndex

        rebuilt = PeerIndex.from_world(
            peer.world,
            peer.ledger.height,
            trusted_threshold=index.trusted_threshold,
            min_threshold=index.min_threshold,
        )
        if rebuilt.root() != index.root():
            return [
                Finding.for_rule(
                    "SAN308", f"index:{peer.name}", at, 0,
                    f"{peer.name}'s incremental index root "
                    f"{index.root()[:16]}… disagrees with a from-scratch "
                    f"rebuild {rebuilt.root()[:16]}… at height "
                    f"{peer.ledger.height}",
                )
            ]
        return []

    # -- query parity (called by repro.query.executor) ----------------------

    def check_query_parity(self, description: str, indexed: list, scanned: list) -> None:
        """SAN309: the index route and the chaincode scan route must return
        byte-identical answers for the same query."""
        if "index" not in self.modes:
            return
        from repro.util.serialization import canonical_json

        found: list[Finding] = []
        if canonical_json(indexed) != canonical_json(scanned):
            found.append(
                Finding.for_rule(
                    "SAN309", "query", 0, 0,
                    f"indexed answer ({len(indexed)} rows) diverges from "
                    f"scan answer ({len(scanned)} rows) for {description}",
                )
            )
        with self._mutex:
            self._checks["index"] += 1
            self._findings.extend(found)

    # -- recovery (called by repro.storage.persistence) --------------------

    def note_recovery(self, peer_name: str, resume_height: int) -> None:
        """A peer was wiped and is about to re-commit from *resume_height*:
        reset the SAN304 height expectation so checkpoint-based replay is
        not flagged as a height regression."""
        with self._mutex:
            self._expected_heights[peer_name] = resume_height

    def check_recovery(self, peer, channel) -> None:
        """SAN307: a recovered peer must be indistinguishable from an honest
        one — ``state_digest`` parity with every online peer at the same
        height, and a clean full-chain ``audit_chain()``."""
        if "recovery" not in self.modes:
            return
        from repro.fabric.snapshot import state_digest
        from repro.obs.explorer import LedgerExplorer

        found: list[Finding] = []
        digest = state_digest(peer.world)
        height = peer.ledger.height
        for other in channel.peers.values():
            if other is peer or not other.online or other.ledger.height != height:
                continue
            if state_digest(other.world) != digest:
                found.append(
                    Finding.for_rule(
                        "SAN307", f"recovery:{peer.name}", height, 0,
                        f"recovered peer {peer.name} diverges from "
                        f"{other.name} at height {height} "
                        f"({digest[:16]}… != {state_digest(other.world)[:16]}…)",
                    )
                )
                break
        audit = LedgerExplorer(channel).audit_chain(offchain=False)
        if not audit.ok:
            first = audit.findings[0]
            found.append(
                Finding.for_rule(
                    "SAN307", f"recovery:{peer.name}", height, 0,
                    f"audit_chain failed after recovery of {peer.name}: "
                    f"{first.check}: {first.detail}",
                )
            )
        if "index" in self.modes:
            # A recovered peer's rebuilt/restored index must also agree
            # with a from-scratch rebuild of its recovered world state.
            found.extend(self._check_index(peer, height))
        with self._mutex:
            self._checks["recovery"] += 1
            if "index" in self.modes:
                self._checks["index"] += 1
            self._findings.extend(found)

    # -- end of run --------------------------------------------------------

    def _check_consensus(self) -> list[Finding]:
        cluster = getattr(getattr(self.channel, "orderer", None), "cluster", None)
        if cluster is None:
            return []
        with self._mutex:
            self._checks["consensus"] += 1
        if cluster.log_prefix_consistent():
            return []
        return [
            Finding.for_rule(
                "SAN306", "consensus", 0, 0,
                "honest validators' decided logs are not prefix-consistent",
            )
        ]

    def finalize(self) -> SanitizerReport:
        """Run the end-of-run checks and publish the report (idempotent)."""
        if not self._finalized:
            extra: list[Finding] = []
            if "consensus" in self.modes:
                extra.extend(self._check_consensus())
            if self.lock_registry is not None:
                with self._mutex:
                    self._checks["locks"] += 1
                extra.extend(self.lock_registry.findings())
                if lockcheck.active_registry() is self.lock_registry:
                    lockcheck.deactivate()
            with self._mutex:
                self._findings.extend(extra)
                self._finalized = True
        report = self.report()
        _publish(report)
        return report

    def report(self) -> SanitizerReport:
        with self._mutex:
            findings = list(self._findings)
            checks = dict(self._checks)
        if self.lock_registry is not None and not self._finalized:
            findings.extend(self.lock_registry.findings())
        return SanitizerReport(
            modes=tuple(sorted(self.modes)),
            checks=checks,
            findings=findings,
        )


# ---------------------------------------------------------------------------
# Installation + last-report plumbing
# ---------------------------------------------------------------------------

_LAST_REPORT: SanitizerReport | None = None
_ACTIVE: Sanitizer | None = None


def _publish(report: SanitizerReport) -> None:
    global _LAST_REPORT
    _LAST_REPORT = report


def last_report() -> SanitizerReport | None:
    """The report of the most recently finalized sanitized run, if any.

    This is how the CLI reaches the sanitizer of a Framework built deep
    inside a chaos scenario it never held a reference to.
    """
    return _LAST_REPORT


def active_sanitizer() -> Sanitizer | None:
    return _ACTIVE


def install_sanitizers(channel, spec: str = "") -> Sanitizer | None:
    """Attach sanitizers to *channel* per the combined mode spec.

    Returns the installed :class:`Sanitizer`, or ``None`` when no mode is
    enabled (the common case: zero overhead, nothing attached).
    """
    global _ACTIVE
    modes = enabled_modes(spec)
    if not modes:
        return None
    sanitizer = Sanitizer(modes)
    sanitizer.channel = channel
    channel.sanitizer = sanitizer
    for peer in channel.peers.values():
        peer.sanitizer = sanitizer
    if sanitizer.lock_registry is not None:
        lockcheck.activate(sanitizer.lock_registry)
    _ACTIVE = sanitizer
    return sanitizer
