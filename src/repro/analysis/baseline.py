"""Baseline workflow for the lint CI gate.

A baseline is the set of findings a repository has *accepted* (grandfathered
tech debt). The gate fails only on findings absent from the baseline, so new
code is held to the rules while old findings can be burned down
incrementally. The shipped baseline for this repo is empty — ``src/repro``
lints clean — but the mechanism is what lets the gate be adopted on day one
of any future rule without a flag day.

Finding identity is ``(rule_id, path, message)`` — deliberately excluding
line/column so unrelated edits above a grandfathered finding don't
un-baseline it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import AnalysisError

from .rules import Finding

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Load accepted finding keys; a missing file means an empty baseline."""
    p = Path(path)
    if not p.exists():
        return set()
    try:
        raw = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot read baseline {p}: {exc}") from exc
    if not isinstance(raw, dict) or "findings" not in raw:
        raise AnalysisError(f"baseline {p} is not a reprolint baseline file")
    keys: set[tuple[str, str, str]] = set()
    for entry in raw["findings"]:
        keys.add((entry["rule_id"], entry["path"], entry["message"]))
    return keys


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Record the current findings as accepted (``--update-baseline``).

    Output is canonical: entries are deduplicated by identity key (two
    findings at different lines can share one key) and sorted by
    (path, rule, message), so the written file is byte-identical no matter
    what order the analyzer traversed the tree in.
    """
    unique = {f.key(): f for f in findings}
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(
            (
                {"rule_id": f.rule_id, "path": f.path, "message": f.message}
                for f in unique.values()
            ),
            key=lambda e: (e["path"], e["rule_id"], e["message"]),
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def diff_baseline(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> list[Finding]:
    """Findings not covered by the baseline — what the CI gate fails on."""
    return [f for f in findings if f.key() not in baseline]
