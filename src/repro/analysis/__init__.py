"""repro.analysis — determinism linter, flow analyzer, runtime sanitizers.

Four cooperating layers keep the framework's trust story machine-checked:

* :mod:`repro.analysis.linter` — ``reprolint``, an AST analyzer with
  determinism rules for chaincode modules (DET1xx) and repo-wide
  concurrency/error-handling hygiene rules (HYG2xx);
* :mod:`repro.analysis.flow` — ``repro flowcheck``, whole-program
  interprocedural analysis: nondeterminism taint reaching
  consensus-critical sinks (FLOW5xx) and static lock-order / shared-state
  checks (FLOW6xx) over an alias-resolved call graph;
* :mod:`repro.analysis.runtime` (+ :mod:`divergence`, :mod:`invariants`,
  :mod:`lockcheck`) — sanitizers (SAN3xx/SAN4xx) toggled by
  ``REPRO_SANITIZE``/``--sanitize`` that re-simulate endorsements, audit
  ledger invariants at every commit, and detect lock-order inversions;
* :mod:`repro.analysis.baseline` — the accepted-findings baselines the
  ``lint-gate`` and ``flow-gate`` CI jobs diff against.

Both static layers parse through :mod:`repro.analysis.astcache`, so one
process (or one CI cache directory) parses each module once.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and workflows.
"""

from .baseline import diff_baseline, load_baseline, write_baseline
from .flow import analyze_paths as flow_analyze_paths
from .flow import build_program
from .invariants import check_store
from .linter import lint_file, lint_paths, lint_source
from .lockcheck import (
    GuardedShared,
    LockRegistry,
    TimedLock,
    TrackedLock,
    guard_shared,
    lock_name,
    make_lock,
    unwrap_tracked,
)
from .rules import (
    RULES,
    Finding,
    FlowFinding,
    Pragmas,
    Rule,
    get_rule,
    parse_pragmas,
)
from .runtime import (
    Sanitizer,
    SanitizerReport,
    enabled_modes,
    install_sanitizers,
    last_report,
    parse_modes,
)

__all__ = [
    "RULES",
    "Finding",
    "FlowFinding",
    "GuardedShared",
    "LockRegistry",
    "Pragmas",
    "Rule",
    "Sanitizer",
    "SanitizerReport",
    "TimedLock",
    "TrackedLock",
    "build_program",
    "check_store",
    "diff_baseline",
    "enabled_modes",
    "flow_analyze_paths",
    "get_rule",
    "guard_shared",
    "install_sanitizers",
    "last_report",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "lock_name",
    "make_lock",
    "parse_modes",
    "parse_pragmas",
    "unwrap_tracked",
    "write_baseline",
]
