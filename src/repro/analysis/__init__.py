"""repro.analysis — determinism linter + runtime sanitizers.

Three cooperating layers keep the framework's trust story machine-checked:

* :mod:`repro.analysis.linter` — ``reprolint``, an AST analyzer with
  determinism rules for chaincode modules (DET1xx) and repo-wide
  concurrency/error-handling hygiene rules (HYG2xx);
* :mod:`repro.analysis.runtime` (+ :mod:`divergence`, :mod:`invariants`,
  :mod:`lockcheck`) — sanitizers (SAN3xx/SAN4xx) toggled by
  ``REPRO_SANITIZE``/``--sanitize`` that re-simulate endorsements, audit
  ledger invariants at every commit, and detect lock-order inversions;
* :mod:`repro.analysis.baseline` — the accepted-findings baseline the
  ``lint-gate`` CI job diffs against.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and workflows.
"""

from .baseline import diff_baseline, load_baseline, write_baseline
from .invariants import check_store
from .linter import lint_file, lint_paths, lint_source
from .lockcheck import (
    GuardedShared,
    LockRegistry,
    TrackedLock,
    guard_shared,
    make_lock,
)
from .rules import RULES, Finding, Pragmas, Rule, get_rule, parse_pragmas
from .runtime import (
    Sanitizer,
    SanitizerReport,
    enabled_modes,
    install_sanitizers,
    last_report,
    parse_modes,
)

__all__ = [
    "RULES",
    "Finding",
    "GuardedShared",
    "LockRegistry",
    "Pragmas",
    "Rule",
    "Sanitizer",
    "SanitizerReport",
    "TrackedLock",
    "check_store",
    "diff_baseline",
    "enabled_modes",
    "get_rule",
    "guard_shared",
    "install_sanitizers",
    "last_report",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "make_lock",
    "parse_modes",
    "parse_pragmas",
    "write_baseline",
]
