"""Rule catalogue shared by the linter and the runtime sanitizers.

Every check — static (``DET*``/``HYG*``, reported by :mod:`repro.analysis.
linter`) or dynamic (``SAN*``, reported by the sanitizers) — carries a rule
id, a severity, and a fix hint, so a finding is actionable wherever it
surfaces: linter output, sanitizer report, or the CI lint gate.

Suppression is per line or per file, via pragma comments::

    x = json.dumps(v)  # reprolint: disable=DET105
    y = time.time()    # reprolint: disable          (all rules, this line)
    # reprolint: disable-file=HYG204                 (whole file, these rules)

Findings are plain data (``to_dict``/``from_dict``) so the JSON output and
the checked-in baseline round-trip losslessly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import AnalysisError

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One checkable property, static or dynamic."""

    id: str
    severity: str
    summary: str
    fix_hint: str
    scope: str  # "chaincode" | "repo" | "runtime"


_RULES = (
    # -- determinism rules: chaincode modules only -------------------------
    Rule("DET101", ERROR, "wall-clock read in chaincode",
         "use stub.get_timestamp(); endorsers reading real clocks diverge",
         "chaincode"),
    Rule("DET102", ERROR, "random number source in chaincode",
         "derive values from tx inputs (tx id, args); randomness diverges rwsets",
         "chaincode"),
    Rule("DET103", ERROR, "environment read in chaincode",
         "pass configuration through chaincode args, not os.environ",
         "chaincode"),
    Rule("DET104", ERROR, "uuid generation in chaincode",
         "key state off stub.get_tx_id(); uuids differ per endorser",
         "chaincode"),
    Rule("DET105", ERROR, "json.dumps without sort_keys=True in chaincode",
         "use repro.util.serialization.canonical_json for state values",
         "chaincode"),
    Rule("DET106", ERROR, "iteration over a set in chaincode",
         "sets iterate in hash order; sort first (sorted(...)) before iterating",
         "chaincode"),
    Rule("DET107", WARNING, "float formatting in chaincode",
         "float presentation is locale/precision-fragile in state values; "
         "store numbers as JSON numbers via canonical_json",
         "chaincode"),
    # -- hygiene rules: whole repository -----------------------------------
    Rule("HYG201", WARNING, "lock.acquire() outside a with-statement",
         "use `with lock:` so the release survives exceptions",
         "repo"),
    Rule("HYG202", WARNING, "broad except swallows the error",
         "catch the narrowest type, or at least log/annotate before continuing",
         "repo"),
    Rule("HYG203", ERROR, "mutable default argument",
         "default to None and create the container inside the function",
         "repo"),
    Rule("HYG204", WARNING, "mutation of module-level shared state inside a function",
         "guard the structure with a lock (analysis.lockcheck.make_lock) or "
         "pass it explicitly; module globals mutated from threads race",
         "repo"),
    # -- runtime sanitizer rules (never produced by the linter) ------------
    Rule("SAN301", ERROR, "endorsement re-simulation diverged",
         "the chaincode is nondeterministic: two simulations of one proposal "
         "produced different rwsets/responses on the same peer",
         "runtime"),
    Rule("SAN302", ERROR, "ledger hash-chain link broken",
         "block's previous_hash does not match the preceding header hash",
         "runtime"),
    Rule("SAN303", ERROR, "block Merkle root mismatch",
         "a transaction envelope was altered after ordering",
         "runtime"),
    Rule("SAN304", ERROR, "non-monotone ledger height",
         "a peer committed out of sequence; block delivery is broken",
         "runtime"),
    Rule("SAN305", ERROR, "world-state replay divergence",
         "replaying all valid write sets does not reproduce the live state",
         "runtime"),
    Rule("SAN306", ERROR, "consensus logs diverged",
         "honest validators' decided logs are not prefix-consistent",
         "runtime"),
    Rule("SAN307", ERROR, "post-recovery state divergence",
         "a crash-recovered peer's state digest disagrees with honest peers "
         "at the same height, or the recovered chain fails audit_chain()",
         "runtime"),
    Rule("SAN308", ERROR, "secondary index diverged from world state",
         "a peer's block-incremental index does not match an index rebuilt "
         "from its world state at the same height",
         "runtime"),
    Rule("SAN309", ERROR, "indexed query answers diverge from scan answers",
         "the authenticated index route and the chaincode scan route "
         "returned different answers for the same query",
         "runtime"),
    Rule("SAN401", ERROR, "lock-order cycle",
         "two locks are acquired in opposite orders on different paths; "
         "impose a global acquisition order",
         "runtime"),
    Rule("SAN402", ERROR, "unguarded cross-thread write to shared structure",
         "hold the registered guard lock around every mutation",
         "runtime"),
    # -- flow rules: whole-program interprocedural analysis ----------------
    Rule("FLOW501", ERROR, "wall-clock value flows into a consensus-critical sink",
         "replicas read different clocks; plumb sim_clock / stub.get_timestamp() "
         "instead, or keep timestamps out of digested bytes",
         "flow"),
    Rule("FLOW502", ERROR, "unseeded randomness flows into a consensus-critical sink",
         "derive the value from tx inputs or a seeded repro.util.rng stream",
         "flow"),
    Rule("FLOW503", ERROR, "uuid flows into a consensus-critical sink",
         "uuids differ per replica; key off tx ids or content hashes",
         "flow"),
    Rule("FLOW504", ERROR, "environment value flows into a consensus-critical sink",
         "environment differs per host; pass configuration explicitly",
         "flow"),
    Rule("FLOW505", ERROR, "set-iteration order flows into a consensus-critical sink",
         "set enumeration follows hash order; sorted(...) before the value "
         "becomes consensus-visible",
         "flow"),
    Rule("FLOW506", WARNING, "float-formatted string flows into a consensus-critical sink",
         "float presentation is precision-fragile; ship JSON numbers through "
         "canonical_json instead of formatted strings",
         "flow"),
    Rule("FLOW601", ERROR, "static lock-order cycle",
         "two locks are acquired in opposite orders on some pair of code "
         "paths; impose one global acquisition order",
         "flow"),
    Rule("FLOW602", WARNING, "unguarded write to a thread-shared field",
         "the field is written on a thread-entry path with no lock held; "
         "guard it (make_lock/guard_shared) or confine it to one thread",
         "flow"),
    Rule("FLOW603", WARNING, "blocking call while holding a lock",
         "a .result()/queue.get/sleep/network wait under a lock stalls every "
         "contender; move the wait outside the critical section",
         "flow"),
)

RULES: dict[str, Rule] = {rule.id: rule for rule in _RULES}
LINT_RULE_IDS = tuple(r.id for r in _RULES if r.scope in ("chaincode", "repo"))
FLOW_RULE_IDS = tuple(r.id for r in _RULES if r.scope == "flow")


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise AnalysisError(f"unknown rule id {rule_id!r}") from None


@dataclass(frozen=True)
class Finding:
    """One violation, located as precisely as the evidence allows."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = ERROR
    fix_hint: str = ""

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across unrelated edits (no line/col),
        so a baseline entry keeps matching until the finding itself is
        fixed or reworded."""
        return (self.rule_id, self.path, self.message)

    def render(self) -> str:
        hint = f"  [{self.fix_hint}]" if self.fix_hint else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity}: {self.message}{hint}"
        )

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "fix_hint": self.fix_hint,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Finding":
        return cls(
            rule_id=raw["rule_id"],
            path=raw["path"],
            line=int(raw.get("line", 0)),
            col=int(raw.get("col", 0)),
            message=raw["message"],
            severity=raw.get("severity", ERROR),
            fix_hint=raw.get("fix_hint", ""),
        )

    @classmethod
    def for_rule(cls, rule_id: str, path: str, line: int, col: int, message: str) -> "Finding":
        rule = get_rule(rule_id)
        return cls(
            rule_id=rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=rule.severity,
            fix_hint=rule.fix_hint,
        )


@dataclass(frozen=True)
class FlowFinding(Finding):
    """A finding with an interprocedural witness chain attached.

    ``trace`` is a tuple of human-readable steps, source first, sink last —
    each ``path:line: what happened``. The trace is presentation only: the
    baseline identity is inherited from :meth:`Finding.key`, so a finding
    keeps matching its baseline entry even when an unrelated edit shifts
    the intermediate hops.
    """

    trace: tuple[str, ...] = ()

    def render(self) -> str:
        head = super().render()
        if not self.trace:
            return head
        steps = "\n".join(f"      {i}. {step}" for i, step in enumerate(self.trace, 1))
        return f"{head}\n{steps}"

    def to_dict(self) -> dict:
        raw = super().to_dict()
        raw["trace"] = list(self.trace)
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "FlowFinding":
        base = Finding.from_dict(raw)
        return cls(
            rule_id=base.rule_id,
            path=base.path,
            line=base.line,
            col=base.col,
            message=base.message,
            severity=base.severity,
            fix_hint=base.fix_hint,
            trace=tuple(raw.get("trace", ())),
        )

    @classmethod
    def for_rule(  # type: ignore[override]
        cls, rule_id: str, path: str, line: int, col: int, message: str,
        trace: tuple[str, ...] = (),
    ) -> "FlowFinding":
        rule = get_rule(rule_id)
        return cls(
            rule_id=rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
            severity=rule.severity,
            fix_hint=rule.fix_hint,
            trace=trace,
        )


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*(?:=\s*(?P<rules>[A-Z0-9,\s]+))?"
)

ALL = "*"


@dataclass(frozen=True)
class Pragmas:
    """Parsed suppression state of one source file."""

    file_disabled: frozenset[str]            # rule ids (or ALL) off everywhere
    line_disabled: dict[int, frozenset[str]]  # line -> rule ids (or ALL)

    def allows(self, rule_id: str, line: int) -> bool:
        for disabled in (self.file_disabled, self.line_disabled.get(line, frozenset())):
            if ALL in disabled or rule_id in disabled:
                return False
        return True


def parse_pragmas(source: str) -> Pragmas:
    file_disabled: set[str] = set()
    line_disabled: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules_raw = match.group("rules")
        rules = (
            frozenset(r.strip() for r in rules_raw.split(",") if r.strip())
            if rules_raw
            else frozenset({ALL})
        )
        if match.group("kind") == "disable-file":
            file_disabled |= rules
        else:
            line_disabled[lineno] = rules | line_disabled.get(lineno, frozenset())
    return Pragmas(file_disabled=frozenset(file_disabled), line_disabled=line_disabled)
