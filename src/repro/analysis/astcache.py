"""Shared parsed-AST cache for the static analyzers.

``reprolint`` (per-module AST rules) and ``repro flowcheck`` (whole-program
interprocedural analysis) both walk the same tree of ``.py`` files. Parsing
is the dominant fixed cost of either run, so both go through this cache:

* **in-process**: one ``ast.parse`` per (path, content-hash) per process,
  however many passes re-visit the module;
* **on disk** (opt-in): set ``REPRO_AST_CACHE=<dir>`` and parsed trees are
  pickled keyed by the *content* hash — the lint-gate and flow-gate CI jobs
  point at one actions/cache directory so the second job never re-parses an
  unchanged tree. A stale or unreadable cache entry silently falls back to
  parsing; the cache can never change analysis results, only skip work.

Entries are invalidated by content, not mtime: the key is the SHA-256 of
the source bytes, so editor touches and fresh checkouts still hit.
"""

from __future__ import annotations

import ast
import hashlib
import os
import pickle
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.errors import AnalysisError

_ENV_DIR = "REPRO_AST_CACHE"
_PICKLE_VERSION = 1

# In-process memo: absolute path -> (content sha256, source text, tree).
# Guarded: analyzers may be driven from worker threads (e.g. parallel CI
# shards in one process), and dict check-then-set is not atomic.
_MEMO: dict[str, tuple[str, str, ast.Module]] = {}
_MEMO_LOCK = threading.Lock()


@dataclass(frozen=True)
class ParsedModule:
    """One parsed source file, as both text and tree."""

    path: str           # the path as given (display identity)
    source: str
    tree: ast.Module
    content_hash: str   # sha256 hex of the source bytes


def cache_dir() -> Path | None:
    """The on-disk cache directory, or ``None`` when disabled."""
    raw = os.environ.get(_ENV_DIR)
    return Path(raw) if raw else None


def _disk_load(key: str) -> ast.Module | None:
    root = cache_dir()
    if root is None:
        return None
    entry = root / f"{key}.astpkl"
    try:
        with open(entry, "rb") as fh:
            version, tree = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, ValueError, TypeError,
            AttributeError, ImportError):
        return None
    if version != _PICKLE_VERSION or not isinstance(tree, ast.Module):
        return None
    return tree


def _disk_store(key: str, tree: ast.Module) -> None:
    root = cache_dir()
    if root is None:
        return
    try:
        root.mkdir(parents=True, exist_ok=True)
        tmp = root / f".{key}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump((_PICKLE_VERSION, tree), fh)
        os.replace(tmp, root / f"{key}.astpkl")
    except (OSError, pickle.PicklingError):
        pass  # reprolint: disable=HYG202 — cache is best-effort by design


def parse_source(source: str, path: str = "<string>") -> ast.Module:
    """Parse source text (no caching — the caller owns the text)."""
    try:
        return ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc


def parse_module(path: str | Path, *, display_path: str | None = None) -> ParsedModule:
    """Read and parse one file through the cache layers.

    ``display_path`` overrides the path recorded on the result (the linter
    reports repo-relative posix paths while reading absolute ones).
    """
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {p}: {exc}") from exc
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    shown = display_path if display_path is not None else p.as_posix()

    memo_key = str(p.resolve())
    with _MEMO_LOCK:
        hit = _MEMO.get(memo_key)
    if hit is not None and hit[0] == key:
        return ParsedModule(path=shown, source=hit[1], tree=hit[2], content_hash=key)

    tree = _disk_load(key)
    if tree is None:
        tree = parse_source(source, shown)
        _disk_store(key, tree)
    with _MEMO_LOCK:
        _MEMO[memo_key] = (key, source, tree)
    return ParsedModule(path=shown, source=source, tree=tree, content_hash=key)


def clear_memo() -> None:
    """Drop the in-process memo (tests that rewrite files in place)."""
    with _MEMO_LOCK:
        _MEMO.clear()
