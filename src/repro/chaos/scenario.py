"""ChaosScenario: drive a live Framework through a fault schedule.

The runner executes ``n_cycles`` submit+retrieve round-trips against a
freshly built :class:`repro.core.framework.Framework`, applying each
cycle's scheduled faults first, then keeping the system honest: every
successful submission is replicated, repaired, and anti-entropy'd, and
re-read both immediately and in a final sweep. Nothing escapes: every
framework-level failure is caught, typed, and recorded in the
:class:`CycleResult` stream, so a scenario "passes" exactly when the
report shows zero data loss and only the failures the faults explain.

Determinism: payloads, fault randomness, and retry jitter all come from
:func:`repro.util.rng.rng_for` streams under the scenario seed, and the
:meth:`ChaosReport.fingerprint` hashes only wall-clock-free,
run-invariant fields (fault details, per-cycle outcome flags, loss set) —
so the same seed must produce the identical fingerprint twice.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable

from repro.chaos.faults import Fault
from repro.core.client import Client
from repro.core.framework import Framework, FrameworkConfig
from repro.crypto.cid import CID
from repro.errors import ReproError
from repro.ipfs.replication import ReplicationManager
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.trust import SourceTier
from repro.util.rng import rng_for


@dataclass(frozen=True)
class CycleResult:
    """Outcome of one submit+retrieve cycle (wall-clock-free)."""

    cycle: int
    faults: tuple[str, ...]
    submitted: bool
    submit_error: str
    retrieved: bool
    verified: bool
    degraded: bool
    retrieve_error: str
    repair_error: str = ""

    def key(self) -> list:
        return [
            self.cycle,
            list(self.faults),
            self.submitted,
            self.submit_error,
            self.retrieved,
            self.verified,
            self.degraded,
            self.retrieve_error,
            self.repair_error,
        ]


@dataclass
class ChaosReport:
    """What a scenario run produced; ``fingerprint()`` is the determinism
    witness chaos tests compare across same-seed runs."""

    scenario: str
    seed: int
    n_cycles: int
    cycles: list[CycleResult]
    stored: int
    final_loss: list[int]

    @property
    def data_loss(self) -> int:
        return len(self.final_loss)

    @property
    def submitted_ok(self) -> int:
        return sum(1 for c in self.cycles if c.submitted)

    def fingerprint(self) -> str:
        payload = json.dumps(
            {
                "scenario": self.scenario,
                "seed": self.seed,
                "n_cycles": self.n_cycles,
                "cycles": [c.key() for c in self.cycles],
                "stored": self.stored,
                "final_loss": self.final_loss,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "cycles": self.n_cycles,
            "submitted_ok": self.submitted_ok,
            "stored": self.stored,
            "data_loss": self.data_loss,
            "degraded_cycles": sum(1 for c in self.cycles if c.degraded),
            "faults_injected": sum(len(c.faults) for c in self.cycles),
            "fingerprint": self.fingerprint(),
        }


class _CycleClock:
    """Deterministic time source: one tick per cycle, no wall clock."""

    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@dataclass
class ChaosScenario:
    """A named fault schedule over a framework deployment."""

    name: str
    config: FrameworkConfig
    faults: list[Fault] = field(default_factory=list)
    n_cycles: int = 50
    seed: int = 0
    payload_bytes: int = 1024
    replication_factor: int = 2
    cycle_tick_s: float = 0.1  # how much breaker-time one cycle represents
    # Observer invoked after every cycle with (cycle, framework, manager);
    # the health/alerting layer hooks in here to evaluate the live system
    # at each tick without the runner knowing about it.
    on_cycle: Callable[[int, Framework, ReplicationManager], None] | None = None

    def schedule(self) -> dict[int, list[Fault]]:
        by_cycle: dict[int, list[Fault]] = {}
        for fault in self.faults:
            by_cycle.setdefault(fault.at_cycle, []).append(fault)
        return by_cycle

    def run(self) -> ChaosReport:
        framework = Framework(self.config)
        # Breaker cooldowns must follow the cycle clock, not wall time:
        # cycles run in microseconds, so a wall-clock breaker would never
        # half-open within a run — and the outcome would depend on host
        # speed, breaking fingerprint determinism.
        clock = _CycleClock()
        framework.resilience.set_clock(clock.now)
        source = framework.register_source("chaos-cam", tier=SourceTier.TRUSTED)
        client = Client(framework, source)
        manager = ReplicationManager(
            framework.ipfs, replication_factor=self.replication_factor
        )
        payload_rng = rng_for(self.seed, "chaos", "payload")
        fault_rng = rng_for(self.seed, "chaos", "faults")
        schedule = self.schedule()
        registry = get_registry()

        cycles: list[CycleResult] = []
        stored: list[tuple[int, str, bytes]] = []  # (cycle, entry_id, data)
        with obs_span("chaos.scenario") as root:
            root.set_attr("scenario", self.name)
            root.set_attr("seed", self.seed)
            for cycle in range(self.n_cycles):
                clock.advance(self.cycle_tick_s)
                fault_descs: list[str] = []
                for fault in schedule.get(cycle, []):
                    with obs_span("chaos.inject") as sp:
                        sp.set_attr("kind", fault.kind())
                        sp.set_attr("cycle", cycle)
                        detail = fault.inject(framework, fault_rng)
                        sp.set_attr("detail", detail)
                    registry.counter(
                        "chaos_faults_total", {"kind": fault.kind()}
                    ).inc()
                    fault_descs.append(f"{fault.kind()}:{detail}")
                cycles.append(
                    self._one_cycle(
                        cycle, client, manager, payload_rng, fault_descs, stored
                    )
                )
                if self.on_cycle is not None:
                    self.on_cycle(cycle, framework, manager)
            final_loss = self._final_sweep(client, manager, framework, stored)
            root.set_attr("data_loss", len(final_loss))
        return ChaosReport(
            scenario=self.name,
            seed=self.seed,
            n_cycles=self.n_cycles,
            cycles=cycles,
            stored=len(stored),
            final_loss=final_loss,
        )

    def _one_cycle(
        self, cycle, client, manager, payload_rng, fault_descs, stored
    ) -> CycleResult:
        framework = client.framework
        data = bytes(payload_rng.bytes(self.payload_bytes))
        submitted, submit_error, entry_id = False, "", None
        try:
            receipt = client.submit(
                data, {"timestamp": float(cycle), "detections": []}
            )
            submitted, entry_id = receipt.ok, receipt.entry_id
            manager.replicate(CID.parse(receipt.cid))
        except ReproError as exc:
            submit_error = type(exc).__name__
        # Background maintenance every cycle: re-replicate after crashes,
        # catch restarted peers up to the chain.
        repair_error = ""
        try:
            manager.repair()
        except ReproError as exc:
            repair_error = type(exc).__name__
        try:
            framework.channel.anti_entropy()
        except ReproError as exc:
            repair_error = repair_error or type(exc).__name__

        retrieved = verified = degraded = False
        retrieve_error = ""
        if submitted and entry_id is not None:
            try:
                result = client.retrieve(entry_id)
                retrieved, verified, degraded = (
                    True,
                    result.verified,
                    result.degraded,
                )
                if not degraded and result.data != data:
                    retrieve_error = "DataMismatch"
                else:
                    stored.append((cycle, entry_id, data))
            except ReproError as exc:
                retrieve_error = type(exc).__name__
        return CycleResult(
            cycle=cycle,
            faults=tuple(fault_descs),
            submitted=submitted,
            submit_error=submit_error,
            retrieved=retrieved,
            verified=verified,
            degraded=degraded,
            retrieve_error=retrieve_error,
            repair_error=repair_error,
        )

    def _final_sweep(self, client, manager, framework, stored) -> list[int]:
        """Re-read every stored entry under the end-state faults; a loss is
        a cycle whose bytes can no longer be served intact."""
        try:
            manager.repair()
            framework.channel.anti_entropy()
        except ReproError:
            pass
        loss: list[int] = []
        for cycle, entry_id, data in stored:
            try:
                result = client.retrieve(entry_id)
                if result.degraded or result.data != data:
                    loss.append(cycle)
            except ReproError:
                loss.append(cycle)
        return loss
