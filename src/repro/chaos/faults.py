"""Composable, deterministic fault specifications.

Every fault is a frozen dataclass naming *when* (``at_cycle``) and *what*
to break; :meth:`Fault.inject` applies it to a live
:class:`repro.core.framework.Framework`. Faults that need randomness (which
block to corrupt, which message to drop) draw from rng streams derived via
:func:`repro.util.rng.rng_for` — never from wall clock or global state — so
the same seed reproduces the identical fault schedule, byte for byte.

Message-level chaos (drop / delay / duplicate) goes through
:class:`NetChaosInjector`, which installs into
``SimNetwork.fault_injector`` (see :mod:`repro.net.simnet`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.crypto.cid import CODEC_DAG_JSON
from repro.net.message import Message
from repro.net.simnet import NO_FAULT, FaultAction, SimNetwork
from repro.util.rng import rng_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.framework import Framework


class NetChaosInjector:
    """Seeded message chaos for one :class:`SimNetwork`.

    One uniform draw per message decides its fate via cumulative
    thresholds, so the decision stream depends only on the seed and the
    message *sequence*, not on which fault classes are enabled.
    """

    def __init__(
        self,
        seed: int,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        extra_delay_s: float = 0.05,
    ) -> None:
        if drop_rate + duplicate_rate + delay_rate > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.extra_delay_s = extra_delay_s
        self._rng = rng_for(seed, "chaos", "net")

    def __call__(self, msg: Message) -> FaultAction:
        u = float(self._rng.random())
        if u < self.drop_rate:
            return FaultAction(drop=True)
        if u < self.drop_rate + self.duplicate_rate:
            return FaultAction(duplicate=True)
        if u < self.drop_rate + self.duplicate_rate + self.delay_rate:
            return FaultAction(extra_delay_s=self.extra_delay_s)
        return NO_FAULT


def _consensus_network(framework: "Framework") -> SimNetwork | None:
    cluster = getattr(framework.channel.orderer, "cluster", None)
    return getattr(cluster, "network", None)


@dataclass(frozen=True)
class Fault:
    """When to fire; subclasses say what breaks."""

    at_cycle: int

    def kind(self) -> str:
        return type(self).__name__

    def inject(self, framework: "Framework", rng: np.random.Generator) -> str:
        """Apply the fault; returns a short human/fingerprint detail line."""
        raise NotImplementedError


@dataclass(frozen=True)
class IpfsNodeCrash(Fault):
    peer_id: str

    def inject(self, framework, rng):
        framework.ipfs.crash_node(self.peer_id)
        return f"crashed {self.peer_id}"


@dataclass(frozen=True)
class IpfsNodeRestart(Fault):
    peer_id: str

    def inject(self, framework, rng):
        framework.ipfs.restart_node(self.peer_id)
        return f"restarted {self.peer_id}"


@dataclass(frozen=True)
class PeerOffline(Fault):
    peer_name: str

    def inject(self, framework, rng):
        framework.channel.peers[self.peer_name].online = False
        return f"offlined {self.peer_name}"


@dataclass(frozen=True)
class PeerOnline(Fault):
    peer_name: str

    def inject(self, framework, rng):
        framework.channel.peers[self.peer_name].online = True
        return f"onlined {self.peer_name}"


@dataclass(frozen=True)
class ValidatorCrash(Fault):
    """Crash a consensus validator; crashing the primary stalls the orderer
    until the view change elects a new one."""

    name: str

    def inject(self, framework, rng):
        network = _consensus_network(framework)
        if network is None:
            return "no-op (no consensus network)"
        network.set_node_up(self.name, False)
        return f"crashed {self.name}"


@dataclass(frozen=True)
class ValidatorRestart(Fault):
    name: str

    def inject(self, framework, rng):
        network = _consensus_network(framework)
        if network is None:
            return "no-op (no consensus network)"
        network.set_node_up(self.name, True)
        return f"restarted {self.name}"


@dataclass(frozen=True)
class MessageChaosOn(Fault):
    """Install drop/delay/duplicate chaos on the consensus network."""

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    extra_delay_s: float = 0.05

    def inject(self, framework, rng):
        network = _consensus_network(framework)
        if network is None:
            return "no-op (no consensus network)"
        network.fault_injector = NetChaosInjector(
            self.seed,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            delay_rate=self.delay_rate,
            extra_delay_s=self.extra_delay_s,
        )
        return (
            f"drop={self.drop_rate} dup={self.duplicate_rate} "
            f"delay={self.delay_rate}@{self.extra_delay_s}s"
        )


@dataclass(frozen=True)
class MessageChaosOff(Fault):
    def inject(self, framework, rng):
        network = _consensus_network(framework)
        if network is None:
            return "no-op (no consensus network)"
        network.fault_injector = None
        return "removed"


@dataclass(frozen=True)
class Partition(Fault):
    """Split the consensus network into the given sides."""

    sides: tuple[tuple[str, ...], ...]

    def inject(self, framework, rng):
        network = _consensus_network(framework)
        if network is None:
            return "no-op (no consensus network)"
        network.partition(*[list(side) for side in self.sides])
        return "|".join(",".join(side) for side in self.sides)


@dataclass(frozen=True)
class HealPartition(Fault):
    def inject(self, framework, rng):
        network = _consensus_network(framework)
        if network is None:
            return "no-op (no consensus network)"
        network.heal()
        return "healed"


@dataclass(frozen=True)
class AmnesiaCrash(Fault):
    """Kill a peer for real: all in-memory state is lost, the unsynced WAL
    suffix is gone (optionally leaving a torn frame), and the node restarts
    from its durable store — checkpoint adoption plus WAL replay, falling
    back to verified state transfer when the WAL is damaged.

    Requires a durability-enabled framework (``FrameworkConfig.durability``);
    without one the fault is a no-op, because an in-memory "crash" that
    preserves state would be a lie.
    """

    peer_name: str = ""
    torn_write: bool = False

    def inject(self, framework, rng):
        manager = getattr(framework, "durability", None)
        if manager is None:
            return "no-op (durability disabled)"
        outcome = manager.crash_and_recover(self.peer_name, torn=self.torn_write)
        return f"{self.peer_name} {outcome.detail()}"


@dataclass(frozen=True)
class DiskFault(Fault):
    """Damage a peer's durable WAL in place: ``truncate`` loses the tail
    sectors, ``corrupt`` flips bits under an intact frame header (detected
    by checksum on the next recovery, which then falls back to verified
    state transfer). Damage is latent — it only bites when the node next
    crashes and tries to recover.
    """

    peer_name: str = ""
    mode: str = "corrupt"  # "corrupt" | "truncate"

    def inject(self, framework, rng):
        manager = getattr(framework, "durability", None)
        if manager is None:
            return "no-op (durability disabled)"
        return f"{self.peer_name} {manager.damage_wal(self.peer_name, self.mode)}"


@dataclass(frozen=True)
class OrdererCrash(Fault):
    """Crash the ordering service: transactions queued but not yet cut into
    a consensus batch are silently lost (and counted in
    ``txs_dropped_total{reason="orderer_crash"}``); clients must resubmit
    through the resilience retry path. Decided batches survive — they are
    journaled synchronously to the orderer's durable store when durability
    is enabled.
    """

    def inject(self, framework, rng):
        manager = getattr(framework, "durability", None)
        if manager is not None:
            dropped = manager.crash_orderer()
            return f"dropped {len(dropped)} queued tx(s)"
        orderer = framework.channel.orderer
        if not hasattr(orderer, "drop_queued"):
            return "no-op (orderer has no queue)"
        from repro.obs.metrics import get_registry

        dropped = orderer.drop_queued()
        if dropped:
            get_registry().counter(
                "txs_dropped_total", {"reason": "orderer_crash"}
            ).inc(len(dropped))
        return f"dropped {len(dropped)} queued tx(s)"


@dataclass(frozen=True)
class CorruptRandomBlock(Fault):
    """Silently flip the bytes of one stored raw block on one online node.

    Only raw (leaf) blocks are targeted: their corruption surfaces as an
    integrity failure at read time, exercising the quarantine + re-fetch
    recovery path. The victim node and block are chosen from the scenario's
    rng stream — deterministic for a given seed and history.
    """

    def inject(self, framework, rng):
        candidates = []
        for node in framework.ipfs.nodes.values():
            if not node.online or not hasattr(node.blockstore, "corrupt"):
                continue
            raws = sorted(
                (c for c in node.blockstore.cids() if c.codec != CODEC_DAG_JSON),
                key=lambda c: c.encode(),
            )
            if raws:
                candidates.append((node, raws))
        if not candidates:
            return "no-op (no raw blocks)"
        node, raws = candidates[int(rng.integers(len(candidates)))]
        cid = raws[int(rng.integers(len(raws)))]
        node.blockstore.corrupt(cid, b"\x00rot\x00" + bytes(rng.bytes(8)))
        return f"corrupted {cid.encode()[:16]} on {node.peer_id}"
