"""Named chaos scenarios: the fault schedules the CLI and CI run.

``standard`` is the acceptance scenario: one of three IPFS nodes crashes,
one fabric peer per org goes offline, and the consensus network drops 10%
of its messages — and 50 submit+retrieve cycles must still complete with
zero data loss.
"""

from __future__ import annotations

from repro.chaos.faults import (
    AmnesiaCrash,
    CorruptRandomBlock,
    DiskFault,
    HealPartition,
    IpfsNodeCrash,
    IpfsNodeRestart,
    MessageChaosOn,
    OrdererCrash,
    Partition,
    PeerOffline,
    PeerOnline,
    ValidatorCrash,
    ValidatorRestart,
)
from repro.chaos.scenario import ChaosScenario
from repro.core.framework import FrameworkConfig
from repro.errors import ReproError


def standard(seed: int = 0, n_cycles: int = 50) -> ChaosScenario:
    """Crash 1 of 3 IPFS nodes, offline 1 fabric peer per org, 10% drops."""
    config = FrameworkConfig(
        consensus="bft",
        peers_per_org=2,
        n_ipfs_nodes=3,
        # Batched ordering on: faults must not lose txs queued behind a batch.
        max_batch_size=4,
        resilience_seed=seed,
    )
    return ChaosScenario(
        name="standard",
        config=config,
        n_cycles=n_cycles,
        seed=seed,
        faults=[
            MessageChaosOn(at_cycle=2, seed=seed, drop_rate=0.10),
            IpfsNodeCrash(at_cycle=5, peer_id="ipfs-2"),
            PeerOffline(at_cycle=8, peer_name="peer0.org1"),
            PeerOffline(at_cycle=9, peer_name="peer2.org2"),
            # A short drop storm: 10% loss is absorbed inside consensus,
            # so crank it up briefly to force client-visible retries and
            # breaker transitions, then return to baseline.
            MessageChaosOn(at_cycle=20, seed=seed + 1, drop_rate=0.5),
            MessageChaosOn(at_cycle=24, seed=seed + 2, drop_rate=0.10),
            # Heal phase: every injected fault recovers before the run
            # ends, so the alerting layer can witness the full
            # fire→resolve lifecycle for each fault class.
            IpfsNodeRestart(at_cycle=30, peer_id="ipfs-2"),
            PeerOnline(at_cycle=33, peer_name="peer0.org1"),
            PeerOnline(at_cycle=34, peer_name="peer2.org2"),
        ],
    )


def corruption(seed: int = 0, n_cycles: int = 30) -> ChaosScenario:
    """Silent bit rot: random raw blocks are corrupted mid-run; retrieval
    must quarantine and re-fetch from clean replicas."""
    config = FrameworkConfig(consensus="bft", n_ipfs_nodes=3, resilience_seed=seed)
    return ChaosScenario(
        name="corruption",
        config=config,
        n_cycles=n_cycles,
        seed=seed,
        faults=[CorruptRandomBlock(at_cycle=c) for c in range(4, n_cycles, 5)],
    )


def partition(seed: int = 0, n_cycles: int = 30) -> ChaosScenario:
    """A quorum-destroying 2/2 consensus partition that later heals."""
    config = FrameworkConfig(consensus="bft", n_validators=4, resilience_seed=seed)
    return ChaosScenario(
        name="partition",
        config=config,
        n_cycles=n_cycles,
        seed=seed,
        faults=[
            Partition(
                at_cycle=10,
                sides=(
                    ("validator-0", "validator-1"),
                    ("validator-2", "validator-3"),
                ),
            ),
            HealPartition(at_cycle=13),
        ],
    )


def churn(seed: int = 0, n_cycles: int = 40) -> ChaosScenario:
    """Rolling restarts: IPFS nodes and validators crash and come back."""
    config = FrameworkConfig(
        consensus="bft", peers_per_org=2, n_ipfs_nodes=3, resilience_seed=seed
    )
    return ChaosScenario(
        name="churn",
        config=config,
        n_cycles=n_cycles,
        seed=seed,
        faults=[
            IpfsNodeCrash(at_cycle=5, peer_id="ipfs-1"),
            IpfsNodeRestart(at_cycle=15, peer_id="ipfs-1"),
            IpfsNodeCrash(at_cycle=20, peer_id="ipfs-0"),
            IpfsNodeRestart(at_cycle=30, peer_id="ipfs-0"),
            ValidatorCrash(at_cycle=12, name="validator-3"),
            ValidatorRestart(at_cycle=25, name="validator-3"),
        ],
    )


def crash_recovery(seed: int = 0, n_cycles: int = 40) -> ChaosScenario:
    """Real crashes against durable storage: amnesia restarts replay the
    WAL from the last checkpoint; damaged WALs force verified state
    transfer; an orderer crash drops queued-but-uncut transactions."""
    config = FrameworkConfig(
        consensus="bft",
        peers_per_org=2,
        n_ipfs_nodes=3,
        max_batch_size=4,
        resilience_seed=seed,
        durability=True,
        checkpoint_interval=8,
        wal_sync_every=2,
    )
    return ChaosScenario(
        name="crash_recovery",
        config=config,
        n_cycles=n_cycles,
        seed=seed,
        faults=[
            # Plain amnesia: checkpoint + WAL replay brings the peer back.
            AmnesiaCrash(at_cycle=6, peer_name="peer1.org1"),
            # Power cut mid-write: a torn frame the reader must drop.
            AmnesiaCrash(at_cycle=12, peer_name="peer2.org2", torn_write=True),
            # Latent media corruption, then a crash: checksum failure on
            # recovery forces verified state transfer from honest peers.
            DiskFault(at_cycle=18, peer_name="peer1.org1", mode="corrupt"),
            AmnesiaCrash(at_cycle=19, peer_name="peer1.org1"),
            # Orderer amnesia: queued txs are dropped (and counted).
            OrdererCrash(at_cycle=24),
            # Lost tail sectors read as a torn tail: truncated replay,
            # the rest caught up via block delivery.
            DiskFault(at_cycle=28, peer_name="peer3.org2", mode="truncate"),
            AmnesiaCrash(at_cycle=29, peer_name="peer3.org2"),
        ],
    )


SCENARIOS = {
    "standard": standard,
    "corruption": corruption,
    "partition": partition,
    "churn": churn,
    "crash_recovery": crash_recovery,
}


def get_scenario(name: str, seed: int = 0, n_cycles: int | None = None) -> ChaosScenario:
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown chaos scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    if n_cycles is None:
        return factory(seed=seed)
    return factory(seed=seed, n_cycles=n_cycles)
