"""repro.chaos — deterministic, seeded fault injection for the framework.

Faults (:mod:`repro.chaos.faults`) are frozen specs — node crash/restart,
peer offline/online, validator crash, message drop/delay/duplicate,
partition + heal, silent block corruption, amnesia crashes against
durable storage, WAL disk faults, orderer crashes — applied on a cycle
schedule by
:class:`repro.chaos.scenario.ChaosScenario` against a live framework. All
randomness flows from :func:`repro.util.rng.rng_for` streams, so a seed
fully determines the fault schedule *and* the recovery trace, and
:meth:`~repro.chaos.scenario.ChaosReport.fingerprint` makes that
comparable across runs. Every injection is recorded as a ``chaos.inject``
span and a ``chaos_faults_total{kind=...}`` counter.
"""

from repro.chaos.faults import (
    AmnesiaCrash,
    CorruptRandomBlock,
    DiskFault,
    Fault,
    HealPartition,
    IpfsNodeCrash,
    IpfsNodeRestart,
    MessageChaosOff,
    MessageChaosOn,
    NetChaosInjector,
    OrdererCrash,
    Partition,
    PeerOffline,
    PeerOnline,
    ValidatorCrash,
    ValidatorRestart,
)
from repro.chaos.scenario import ChaosReport, ChaosScenario, CycleResult
from repro.chaos.scenarios import SCENARIOS, get_scenario

__all__ = [
    "Fault",
    "IpfsNodeCrash",
    "IpfsNodeRestart",
    "PeerOffline",
    "PeerOnline",
    "ValidatorCrash",
    "ValidatorRestart",
    "MessageChaosOn",
    "MessageChaosOff",
    "Partition",
    "HealPartition",
    "CorruptRandomBlock",
    "AmnesiaCrash",
    "DiskFault",
    "OrdererCrash",
    "NetChaosInjector",
    "ChaosScenario",
    "ChaosReport",
    "CycleResult",
    "SCENARIOS",
    "get_scenario",
]
