"""repro.storage — simulated durable storage and crash recovery.

See :mod:`repro.storage.durable` for the disk model (synced/unsynced
tiers, torn writes, injectable media faults) and
:mod:`repro.storage.persistence` for the WAL/checkpoint manager and the
recovery ladder (WAL replay -> verified state transfer -> full resync).
"""

from repro.storage.codec import block_from_doc, block_to_doc, tx_from_doc, tx_to_doc
from repro.storage.durable import CORRUPT, TRUNCATE, DurableStore
from repro.storage.persistence import (
    DurabilityManager,
    DurabilityStats,
    RecoveryOutcome,
)

__all__ = [
    "CORRUPT",
    "TRUNCATE",
    "DurableStore",
    "DurabilityManager",
    "DurabilityStats",
    "RecoveryOutcome",
    "block_from_doc",
    "block_to_doc",
    "tx_from_doc",
    "tx_to_doc",
]
