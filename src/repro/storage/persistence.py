"""Durability manager: WAL + checkpoints per node, and real crash recovery.

One :class:`~repro.storage.durable.DurableStore` per peer (plus one for
the ordering service) holds:

* ``wal`` — one framed canonical-JSON record per committed block
  (``{"type": "block", "block": ..., "rejected": [...]}``), synced every
  ``wal_sync_every`` blocks — so a crash can lose at most the unsynced
  suffix;
* ``checkpoint`` — the peer's :class:`~repro.fabric.snapshot.Snapshot`
  at the last checkpoint height (every ``checkpoint_interval`` blocks),
  written atomically; the WAL is truncated once the checkpoint covers it;
* ``private`` — the peer's private-collection side databases at the same
  height (snapshots cover only public state);
* ``frontier-<replica>`` — each PBFT validator's decided-log frontier
  ``{seq, stable, digest}``, so a restarted validator set can prove its
  log prefix matches what was persisted.

Recovery (:meth:`DurabilityManager.recover_peer`) tries, in order:

1. **WAL replay** — adopt the checkpoint snapshot (digest-verified by
   :func:`~repro.fabric.snapshot.bootstrap_peer`), then re-commit every
   WAL block through the normal validation path; a torn tail is dropped.
2. **Verified state transfer** — on WAL corruption or an unusable
   checkpoint: take a snapshot from the best online donor, check that
   *every* online peer at that height agrees on the state digest and
   head hash (quorum heads), adopt it, and catch up via block delivery.
3. **Full resync** — last resort with no usable donor snapshot: rejoin
   empty and let gossip deliver the chain from genesis.

Whatever the path, recovery ends by rebuilding the node's durable state
(fresh checkpoint, truncated WAL), emitting a ``recovery`` span plus
metrics, and handing the peer to the SAN307 sanitizer check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    DurabilityError,
    EncodingError,
    LedgerError,
    RecoveryError,
    WalCorruptionError,
)
from repro.fabric.gossip import sync_peer
from repro.fabric.ledger import Block, BlockStore
from repro.fabric.privatedata import PrivateStateStore
from repro.fabric.snapshot import (
    Snapshot,
    adopt_snapshot,
    bootstrap_peer,
    state_digest,
    take_snapshot,
)
from repro.fabric.worldstate import Version, WorldState
from repro.obs.metrics import get_registry
from repro.obs.prof import profiled
from repro.obs.tracer import span as obs_span
from repro.storage.codec import block_from_doc, block_to_doc, tx_to_doc
from repro.storage.durable import DurableStore
from repro.util.serialization import canonical_json, from_canonical_json

WAL_LOG = "wal"
CHECKPOINT_FILE = "checkpoint"
PRIVATE_FILE = "private"
INDEX_FILE = "index"


@dataclass
class DurabilityStats:
    """Cumulative counters, mirrored into the metrics registry."""

    wal_records: int = 0
    checkpoints: int = 0
    recoveries: int = 0
    replayed_blocks: int = 0
    caught_up_blocks: int = 0
    lag_blocks: int = 0
    state_transfers: int = 0
    full_resyncs: int = 0
    wal_damage: int = 0
    orderer_dropped_txs: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass(frozen=True)
class RecoveryOutcome:
    """What one recovery did — deterministic, fingerprint-safe."""

    node: str
    kind: str  # "wal_replay" | "state_transfer" | "full_resync"
    wal_damage: str  # "" | "torn_tail" | "corrupt" | "invalid"
    checkpoint_height: int
    replayed_blocks: int
    caught_up_blocks: int
    lag_blocks: int
    height: int

    def detail(self) -> str:
        base = (
            f"{self.kind} ckpt={self.checkpoint_height} "
            f"replayed={self.replayed_blocks} caught_up={self.caught_up_blocks} "
            f"lag={self.lag_blocks} height={self.height}"
        )
        return base + (f" damage={self.wal_damage}" if self.wal_damage else "")


class DurabilityManager:
    """Owns every node's simulated disk and drives crash recovery."""

    def __init__(
        self,
        channel,
        checkpoint_interval: int = 8,
        wal_sync_every: int = 1,
    ) -> None:
        if checkpoint_interval < 0 or wal_sync_every < 1:
            raise DurabilityError(
                "checkpoint_interval must be >= 0 and wal_sync_every >= 1"
            )
        self.channel = channel
        self.checkpoint_interval = checkpoint_interval
        self.wal_sync_every = wal_sync_every
        self.stores: dict[str, DurableStore] = {
            name: DurableStore() for name in channel.peers
        }
        self.orderer_store = DurableStore()
        self.stats = DurabilityStats()
        self.recovery_log: list[RecoveryOutcome] = []
        self._replaying: set[str] = set()
        for peer in channel.peers.values():
            peer.journal = self
        if hasattr(channel.orderer, "journal"):
            channel.orderer.journal = self

    # -- journaling (called from the commit / ordering paths) -----------------

    def record_commit(self, peer, block, consensus_rejected) -> None:
        """Append one committed block to the peer's WAL; checkpoint on cadence."""
        if peer.name in self._replaying:
            return
        store = self.stores.get(peer.name)
        if store is None:
            return
        # The index epoch digest rides in the WAL record (the sim's "block
        # metadata"), so replay can prove the rebuilt index matches what
        # was committed — and a doctored WAL fails over to state transfer.
        index_epoch = None
        if getattr(peer, "index", None) is not None:
            index_epoch = peer.index.epochs.get(block.number)
        with profiled("storage.wal"):
            store.append(
                WAL_LOG,
                canonical_json(
                    {
                        "type": "block",
                        "block": block_to_doc(block),
                        "rejected": sorted(consensus_rejected or ()),
                        "index_epoch": index_epoch,
                    }
                ),
            )
            self.stats.wal_records += 1
            height = peer.ledger.height
            if height % self.wal_sync_every == 0:
                store.sync()
        if self.checkpoint_interval > 0 and height % self.checkpoint_interval == 0:
            self.checkpoint_peer(peer)

    def record_submit(self, tx) -> None:
        """A tx entered the orderer queue — deliberately *not* synced: queued
        but uncut transactions are exactly what an orderer crash loses."""
        with profiled("storage.wal"):
            self.orderer_store.append(
                WAL_LOG, canonical_json({"type": "submit", "tx_id": tx.tx_id})
            )

    def record_batch(self, request_id: str, txs) -> None:
        """A batch went to consensus: persist it (synced) with full tx docs."""
        with profiled("storage.wal"):
            self.orderer_store.append(
                WAL_LOG,
                canonical_json(
                    {
                        "type": "batch",
                        "request_id": request_id,
                        "txs": [tx_to_doc(tx) for tx in txs],
                    }
                ),
            )
            self.orderer_store.sync()

    # -- checkpoints -----------------------------------------------------------

    def checkpoint_peer(self, peer) -> None:
        """Atomic snapshot of ledger/world/private state; WAL truncated after."""
        store = self.stores.get(peer.name)
        if store is None:
            return
        with profiled("storage.checkpoint"):
            snapshot = take_snapshot(peer, self.channel.name)
            store.write_file(CHECKPOINT_FILE, snapshot.to_bytes())
            store.write_file(PRIVATE_FILE, canonical_json(self._private_doc(peer)))
            if getattr(peer, "index", None) is not None:
                store.write_file(INDEX_FILE, canonical_json(peer.index.to_doc()))
            store.truncate_log(WAL_LOG)
            store.sync()
        self.stats.checkpoints += 1
        get_registry().counter("checkpoints_total").inc()
        self.checkpoint_validators()

    def checkpoint_validators(self) -> int:
        """Persist every PBFT replica's decided-log frontier."""
        cluster = getattr(self.channel.orderer, "cluster", None)
        if cluster is None:
            return 0
        for name in cluster.replica_names:
            seq, digest = cluster.replicas[name].log_frontier()
            self.orderer_store.write_file(
                f"frontier-{name}",
                canonical_json(
                    {
                        "replica": name,
                        "seq": seq,
                        "stable": cluster.replicas[name].stable_checkpoint,
                        "digest": digest,
                    }
                ),
            )
        self.orderer_store.sync()
        return len(cluster.replica_names)

    def verify_validator_frontiers(self) -> dict[str, bool]:
        """Check each persisted frontier digest against the live replica log."""
        cluster = getattr(self.channel.orderer, "cluster", None)
        if cluster is None:
            return {}
        out: dict[str, bool] = {}
        for name in cluster.replica_names:
            raw = self.orderer_store.read_file(f"frontier-{name}")
            if raw is None:
                continue
            doc = from_canonical_json(raw)
            _, digest = cluster.replicas[name].log_frontier(int(doc["seq"]))
            out[name] = digest == doc["digest"]
        return out

    # -- crash + recovery ------------------------------------------------------

    def crash_and_recover(self, peer_name: str, torn: bool = False) -> RecoveryOutcome:
        """Amnesia crash: lose unsynced disk state and *all* memory, then
        restart from whatever the durable store still holds."""
        peer = self._peer(peer_name)
        self.stores[peer_name].crash(torn=torn)
        self._wipe(peer)
        return self.recover_peer(peer_name)

    def damage_wal(self, peer_name: str, mode: str) -> str:
        """Injected media fault; falls back to the checkpoint file when the
        synced WAL has nothing to damage (so the fault always bites)."""
        store = self.stores[self._peer(peer_name).name]
        detail = store.damage_tail(WAL_LOG, mode)
        if detail.startswith("no-op"):
            detail = store.corrupt_file(CHECKPOINT_FILE)
        return detail

    def recover_peer(self, peer_name: str) -> RecoveryOutcome:
        """Bring a wiped peer back; see the module docstring for the ladder."""
        peer = self._peer(peer_name)
        store = self.stores[peer.name]
        registry = get_registry()
        with obs_span("recovery") as sp:
            sp.set_attr("node", peer.name)
            damage = ""
            kind = "wal_replay"
            ckpt_height = replayed = 0
            try:
                records, tail = store.read_log(WAL_LOG)
                if tail:
                    damage = "torn_tail"
                ckpt_height, replayed = self._replay(peer, store, records)
            except WalCorruptionError:
                damage, kind = "corrupt", "state_transfer"
            except (DurabilityError, LedgerError, EncodingError, ValueError):
                damage, kind = damage or "invalid", "state_transfer"
            if kind == "state_transfer":
                ckpt_height = replayed = 0
                try:
                    donor = self._state_transfer(peer)
                    sp.set_attr("donor", donor)
                    self.stats.state_transfers += 1
                except RecoveryError:
                    kind = "full_resync"
                    self.stats.full_resyncs += 1
                    self._wipe(peer)
                    if peer.sanitizer is not None:
                        peer.sanitizer.note_recovery(peer.name, 0)
            if damage:
                self.stats.wal_damage += 1
                registry.counter("wal_damage_total", {"mode": damage}).inc()
            caught_up = self._catch_up(peer)
            height = peer.ledger.height
            lag = max(0, height - ckpt_height - replayed)
            outcome = RecoveryOutcome(
                node=peer.name,
                kind=kind,
                wal_damage=damage,
                checkpoint_height=ckpt_height,
                replayed_blocks=replayed,
                caught_up_blocks=caught_up,
                lag_blocks=lag,
                height=height,
            )
            self.recovery_log.append(outcome)
            self.stats.recoveries += 1
            self.stats.replayed_blocks += replayed
            self.stats.caught_up_blocks += caught_up
            self.stats.lag_blocks += lag
            registry.counter("recoveries_total", {"kind": kind}).inc()
            registry.counter("recovery_replayed_blocks_total").inc(replayed)
            registry.counter("recovery_lag_blocks_total").inc(lag)
            sp.set_attr("kind", kind)
            sp.set_attr("height", height)
            sp.set_attr("replayed", replayed)
            sp.set_attr("caught_up", caught_up)
            sp.set_attr("lag", lag)
            # Rebuild durable state so the *next* crash restarts from here.
            self.checkpoint_peer(peer)
            if peer.sanitizer is not None:
                peer.sanitizer.check_recovery(peer, self.channel)
        return outcome

    def crash_orderer(self) -> list[str]:
        """Orderer amnesia: queued-but-uncut txs are gone (and counted)."""
        orderer = self.channel.orderer
        dropped = orderer.drop_queued() if hasattr(orderer, "drop_queued") else []
        self.orderer_store.crash()
        if dropped:
            self.stats.orderer_dropped_txs += len(dropped)
            get_registry().counter(
                "txs_dropped_total", {"reason": "orderer_crash"}
            ).inc(len(dropped))
        return list(dropped)

    def pending_batches(self) -> dict[str, list[str]]:
        """Durably recorded batches (request id -> tx ids) from the orderer WAL."""
        records, _tail = self.orderer_store.read_log(WAL_LOG)
        out: dict[str, list[str]] = {}
        for payload in records:
            doc = from_canonical_json(payload)
            if doc.get("type") == "batch":
                out[doc["request_id"]] = [
                    tx["proposal"]["tx_id"] for tx in doc["txs"]
                ]
        return out

    # -- internals -------------------------------------------------------------

    def _peer(self, peer_name: str):
        try:
            return self.channel.peers[peer_name]
        except KeyError:
            raise DurabilityError(f"unknown peer {peer_name!r}") from None

    @staticmethod
    def _wipe(peer) -> None:
        """Amnesia: everything in memory is gone; identity and code survive
        (they live in config/packages, not node state)."""
        peer.world = WorldState()
        peer.ledger = BlockStore()
        peer.private = PrivateStateStore(org=peer.org, registry=peer.collections)
        if getattr(peer, "index", None) is not None:
            peer.index = peer.index.fresh()
        peer.online = True

    def _replay(self, peer, store: DurableStore, records: list[bytes]) -> tuple[int, int]:
        """Checkpoint adoption + WAL replay through full validation."""
        ckpt_height = 0
        raw = store.read_file(CHECKPOINT_FILE)
        if raw is not None:
            snapshot = Snapshot.from_bytes(raw)
            bootstrap_peer(peer, snapshot)  # digest-verified adoption
            self._restore_private(peer, store)
            self._restore_index(peer, store)
            ckpt_height = snapshot.height
        if peer.sanitizer is not None:
            peer.sanitizer.note_recovery(peer.name, peer.ledger.height)
        replayed = 0
        self._replaying.add(peer.name)
        try:
            for payload in records:
                doc = from_canonical_json(payload)
                if doc.get("type") != "block":
                    continue
                block = block_from_doc(doc["block"])
                if block.header.number < peer.ledger.height:
                    continue  # covered by the checkpoint
                annotated = peer.commit_block(
                    Block(header=block.header, transactions=block.transactions),
                    consensus_rejected=frozenset(doc.get("rejected", ())),
                )
                if tuple(annotated.validation_codes) != tuple(block.validation_codes):
                    raise DurabilityError(
                        f"block {block.header.number} revalidated differently "
                        f"on replay — WAL record untrustworthy"
                    )
                recorded_epoch = doc.get("index_epoch")
                if recorded_epoch is not None and peer.index is not None:
                    rebuilt = peer.index.epochs.get(block.header.number)
                    if rebuilt != recorded_epoch:
                        raise DurabilityError(
                            f"index epoch for block {block.header.number} "
                            f"rebuilt differently on replay — WAL record "
                            f"untrustworthy"
                        )
                replayed += 1
        finally:
            self._replaying.discard(peer.name)
        return ckpt_height, replayed

    def _state_transfer(self, peer) -> str:
        """Adopt a digest-verified snapshot agreed on by every at-head donor."""
        donors = [
            p
            for p in self.channel.peers.values()
            if p.online and p.name != peer.name and p.ledger.height > 0
        ]
        if not donors:
            raise RecoveryError(f"no online donor for state transfer to {peer.name!r}")
        head = max(d.ledger.height for d in donors)
        at_head = sorted(
            (d for d in donors if d.ledger.height == head), key=lambda d: d.name
        )
        donor = at_head[0]
        snapshot = take_snapshot(donor, self.channel.name)
        for other in at_head[1:]:
            if (
                state_digest(other.world) != snapshot.digest
                or other.ledger.last_hash() != snapshot.last_block_hash
            ):
                raise RecoveryError(
                    f"state-transfer donors disagree at height {head} — "
                    f"refusing unverifiable snapshot"
                )
        adopt_snapshot(peer, snapshot)  # resets partial replay state, verifies digest
        self._adopt_private(peer, at_head)
        if peer.index is not None:
            # The index is derivable from world state, so a verified
            # snapshot is enough to rebuild it (epoch history before the
            # snapshot height is not recoverable and stays empty).
            from repro.index import PeerIndex

            peer.index = PeerIndex.from_world(
                peer.world,
                peer.ledger.height,
                peer.index.trusted_threshold,
                peer.index.min_threshold,
            )
        if peer.sanitizer is not None:
            peer.sanitizer.note_recovery(peer.name, peer.ledger.height)
        return donor.name

    def _catch_up(self, peer) -> int:
        """Block delivery from the best online peer ahead of us."""
        best = None
        for other in self.channel.peers.values():
            if other is peer or not other.online:
                continue
            if other.ledger.height <= peer.ledger.height:
                continue
            if best is None or (other.ledger.height, other.name) > (
                best.ledger.height,
                best.name,
            ):
                best = other
        if best is None:
            return 0
        return sync_peer(peer, best, self.channel.rejected_by_block)

    @staticmethod
    def _private_doc(peer) -> dict:
        doc: dict[str, list] = {}
        for collection, store in sorted(peer.private._stores.items()):
            entries = []
            for key in store.keys():
                value = store.get(key)
                if value is None:
                    continue
                version = store.get_version(key)
                entries.append([key, value.hex(), version.block, version.tx])
            doc[collection] = entries
        return doc

    def _restore_private(self, peer, store: DurableStore) -> None:
        raw = store.read_file(PRIVATE_FILE)
        if raw is None:
            return
        for collection, entries in from_canonical_json(raw).items():
            if not peer.private.has_collection(collection):
                continue
            target = peer.private.store_for(collection)
            for key, value, block, tx in entries:
                target.apply_write(
                    key,
                    bytes.fromhex(value),
                    Version(block=int(block), tx=int(tx)),
                    tx_id="checkpoint-restore",
                    timestamp=0.0,
                )

    @staticmethod
    def _restore_index(peer, store: DurableStore) -> None:
        """Restore the checkpointed index; rebuild from world on any gap.

        A checkpoint written by :meth:`checkpoint_peer` always carries a
        matching index file, but an older store (or one damaged between
        files) may not — the index is state-derived, so a rebuild from the
        freshly adopted world is always a sound fallback.
        """
        if peer.index is None:
            return
        from repro.index import PeerIndex

        raw = store.read_file(INDEX_FILE)
        restored = None
        if raw is not None:
            try:
                restored = PeerIndex.from_doc(from_canonical_json(raw))
            except (EncodingError, KeyError, TypeError, ValueError):
                restored = None
        if restored is not None and restored.height == peer.ledger.height:
            peer.index = restored
        else:
            peer.index = PeerIndex.from_world(
                peer.world,
                peer.ledger.height,
                peer.index.trusted_threshold,
                peer.index.min_threshold,
            )

    def _adopt_private(self, peer, donors) -> None:
        """Private collections can only come from a same-org donor (snapshots
        cover public state; non-members never hold the plaintext)."""
        for donor in donors:
            if donor.org != peer.org:
                continue
            for collection, store in sorted(donor.private._stores.items()):
                target = peer.private.store_for(collection)
                for key in store.keys():
                    value = store.get(key)
                    if value is None:
                        continue
                    target.apply_write(
                        key,
                        value,
                        store.get_version(key),
                        tx_id="state-transfer",
                        timestamp=0.0,
                    )
            return
