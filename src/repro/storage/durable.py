"""Simulated crash-durable storage: append-only logs plus atomic files.

Real nodes survive restarts because their ledgers live on disk; everything
in this reproduction is in-memory, so "crash" faults used to be a polite
fiction — the state silently survived. :class:`DurableStore` models the
disk honestly enough that recovery code has something real to recover
from:

* **Two durability tiers.** ``append`` lands bytes in an *unsynced* buffer
  (the OS page cache); ``sync`` promotes everything to the *synced* area
  (the platter). :meth:`crash` discards the unsynced tier — exactly the
  data an fsync-less process loses on power failure.
* **Torn writes.** ``crash(torn=True)`` additionally flushes the first
  *half* of the oldest unsynced record to the synced log, modelling a
  sector-granularity write interrupted mid-frame. Readers detect the torn
  tail by framing and drop it.
* **Injectable media faults.** :meth:`damage_tail` truncates or corrupts
  the synced log in place (bit-rot, a bad sector), for chaos faults that
  exercise the WAL-damage recovery path.
* **Atomic file writes.** ``write_file`` stages content that only becomes
  visible at the next ``sync`` — the write-temp-then-rename idiom, so a
  checkpoint is either entirely the old one or entirely the new one.

Log framing — each record is::

    [4-byte big-endian payload length][8-byte sha256(payload) prefix][payload]

On read, an incomplete final frame is a *torn tail* (silently truncated,
reported out-of-band); a complete frame whose checksum does not match is
*corruption* and raises :class:`~repro.errors.WalCorruptionError` — the
caller must fall back to state transfer, because nothing after the bad
frame can be trusted.
"""

from __future__ import annotations

import hashlib

from repro.errors import StorageError, WalCorruptionError

_LEN_BYTES = 4
_CSUM_BYTES = 8
_HEADER_BYTES = _LEN_BYTES + _CSUM_BYTES

# damage_tail modes
TRUNCATE = "truncate"
CORRUPT = "corrupt"


def _frame(payload: bytes) -> bytes:
    return (
        len(payload).to_bytes(_LEN_BYTES, "big")
        + hashlib.sha256(payload).digest()[:_CSUM_BYTES]
        + payload
    )


class DurableStore:
    """One node's simulated disk: named append-only logs + named files."""

    def __init__(self) -> None:
        self._synced_logs: dict[str, bytearray] = {}
        self._unsynced_logs: dict[str, bytearray] = {}
        self._files: dict[str, bytes] = {}
        self._pending_files: dict[str, bytes] = {}
        self.syncs = 0

    # -- writes ---------------------------------------------------------------

    def append(self, log: str, payload: bytes) -> None:
        """Append one framed record; durable only after the next sync."""
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError(f"WAL payload must be bytes, got {type(payload).__name__}")
        self._unsynced_logs.setdefault(log, bytearray()).extend(_frame(bytes(payload)))

    def write_file(self, name: str, content: bytes) -> None:
        """Stage a whole-file replacement; visible only after the next sync."""
        self._pending_files[name] = bytes(content)

    def truncate_log(self, log: str) -> None:
        """Drop a log entirely (both tiers) — e.g. after a covering checkpoint."""
        self._synced_logs.pop(log, None)
        self._unsynced_logs.pop(log, None)

    def sync(self) -> None:
        """fsync everything: promote unsynced log bytes and pending files."""
        for log, buf in self._unsynced_logs.items():
            self._synced_logs.setdefault(log, bytearray()).extend(buf)
        self._unsynced_logs = {}
        self._files.update(self._pending_files)
        self._pending_files = {}
        self.syncs += 1

    # -- crash / media faults -------------------------------------------------

    def crash(self, torn: bool = False) -> None:
        """Power-cut semantics: the unsynced tier is gone.

        With ``torn=True`` the first half of the oldest unsynced frame of
        each log *did* reach the platter — a torn tail the reader must
        detect and drop.
        """
        if torn:
            for log in sorted(self._unsynced_logs):
                buf = self._unsynced_logs[log]
                if not buf:
                    continue
                length = int.from_bytes(buf[:_LEN_BYTES], "big")
                frame_len = _HEADER_BYTES + length
                keep = max(1, frame_len // 2)
                self._synced_logs.setdefault(log, bytearray()).extend(buf[:keep])
        self._unsynced_logs = {}
        self._pending_files = {}

    def damage_tail(self, log: str, mode: str) -> str:
        """Injected media fault against the *synced* log bytes.

        ``truncate`` chops the log mid-way through its last frame (lost
        sectors); ``corrupt`` flips bits inside the first frame's payload
        (rot under an intact length header, so the checksum catches it).
        Returns a short description of what was done, or ``"no-op"`` when
        the log has nothing to damage. The description counts frames, not
        bytes: record payloads embed wall-clock timestamps whose float
        reprs vary in length, and these strings enter chaos fingerprints.
        """
        data = self._synced_logs.get(log)
        if not data:
            return "no-op (log empty)"
        if mode == TRUNCATE:
            offsets = self._frame_offsets(data)
            last_start = offsets[-1] if offsets else 0
            cut = last_start + max(1, (len(data) - last_start) // 2)
            del data[cut:]
            return f"truncated {log!r} mid-way through frame {len(offsets)}"
        if mode == CORRUPT:
            length = int.from_bytes(data[:_LEN_BYTES], "big")
            if length == 0 or len(data) < _HEADER_BYTES + 1:
                return "no-op (nothing to corrupt)"
            target = _HEADER_BYTES + min(length, len(data) - _HEADER_BYTES) // 2
            data[target] ^= 0xFF
            return f"flipped a payload byte in frame 1 of {log!r}"
        raise StorageError(f"unknown damage mode {mode!r}")

    def corrupt_file(self, name: str) -> str:
        """Flip a byte in the middle of a synced file (checkpoint rot)."""
        content = self._files.get(name)
        if not content:
            return "no-op (file missing or empty)"
        buf = bytearray(content)
        buf[len(buf) // 2] ^= 0xFF
        self._files[name] = bytes(buf)
        return f"flipped a byte in file {name!r}"

    # -- reads ----------------------------------------------------------------

    def read_log(self, log: str) -> tuple[list[bytes], str]:
        """All durable records of a log, plus tail damage (``""``/``"torn"``).

        Raises :class:`WalCorruptionError` on a checksum mismatch in a
        complete frame — unlike a torn tail, mid-log corruption means the
        medium lies and replay must not proceed.
        """
        data = bytes(self._synced_logs.get(log, b""))
        records: list[bytes] = []
        off, n = 0, len(data)
        while off < n:
            if off + _HEADER_BYTES > n:
                return records, "torn"
            length = int.from_bytes(data[off : off + _LEN_BYTES], "big")
            end = off + _HEADER_BYTES + length
            if end > n:
                return records, "torn"
            payload = data[off + _HEADER_BYTES : end]
            expect = data[off + _LEN_BYTES : off + _HEADER_BYTES]
            if hashlib.sha256(payload).digest()[:_CSUM_BYTES] != expect:
                raise WalCorruptionError(
                    f"checksum mismatch in log {log!r} at offset {off}"
                )
            records.append(payload)
            off = end
        return records, ""

    def read_file(self, name: str) -> bytes | None:
        return self._files.get(name)

    def log_bytes(self, log: str, synced_only: bool = True) -> int:
        total = len(self._synced_logs.get(log, b""))
        if not synced_only:
            total += len(self._unsynced_logs.get(log, b""))
        return total

    def logs(self) -> list[str]:
        return sorted(set(self._synced_logs) | set(self._unsynced_logs))

    def files(self) -> list[str]:
        return sorted(self._files)

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _frame_offsets(data: bytes) -> list[int]:
        """Start offsets of the complete frames in *data* (no validation)."""
        offsets: list[int] = []
        off, n = 0, len(data)
        while off + _HEADER_BYTES <= n:
            length = int.from_bytes(data[off : off + _LEN_BYTES], "big")
            end = off + _HEADER_BYTES + length
            if end > n:
                break
            offsets.append(off)
            off = end
        return offsets
