"""Exact block <-> document codec for the write-ahead log.

The WAL stores whole blocks as canonical-JSON documents. The round trip
must be *exact*: a decoded block's transaction envelopes have to hash to
the same Merkle root and its header to the same chain hash, or replay
would be rejected by the very validation it is meant to satisfy. Every
``bytes`` field is hex-encoded (canonical JSON refuses raw bytes), and
tuples are rebuilt on decode so frozen dataclass equality holds.
"""

from __future__ import annotations

from repro.fabric.identity import IdentityInfo
from repro.fabric.ledger import Block, BlockHeader
from repro.fabric.tx import (
    ChaincodeEvent,
    Endorsement,
    PrivateWrite,
    ReadEntry,
    ReadWriteSet,
    Transaction,
    TxProposal,
    ValidationCode,
    WriteEntry,
)
from repro.fabric.worldstate import Version
from repro.obs.prof import profiled


def _version_doc(version: Version | None) -> dict | None:
    return None if version is None else {"block": version.block, "tx": version.tx}


def _version_from(doc: dict | None) -> Version | None:
    return None if doc is None else Version(block=int(doc["block"]), tx=int(doc["tx"]))


def proposal_to_doc(proposal: TxProposal) -> dict:
    return {
        "tx_id": proposal.tx_id,
        "channel": proposal.channel,
        "chaincode": proposal.chaincode,
        "fn": proposal.fn,
        "args": list(proposal.args),
        "creator": proposal.creator.to_dict(),
        "timestamp": proposal.timestamp,
        "signature": proposal.signature.hex(),
        "transient": [[key, value.hex()] for key, value in proposal.transient],
    }


def proposal_from_doc(doc: dict) -> TxProposal:
    return TxProposal(
        tx_id=doc["tx_id"],
        channel=doc["channel"],
        chaincode=doc["chaincode"],
        fn=doc["fn"],
        args=tuple(doc["args"]),
        creator=IdentityInfo.from_dict(doc["creator"]),
        timestamp=float(doc["timestamp"]),
        signature=bytes.fromhex(doc["signature"]),
        transient=tuple((key, bytes.fromhex(value)) for key, value in doc["transient"]),
    )


def rwset_to_doc(rwset: ReadWriteSet) -> dict:
    return {
        "reads": [[r.key, _version_doc(r.version)] for r in rwset.reads],
        "writes": [
            [w.key, None if w.value is None else w.value.hex(), w.is_delete]
            for w in rwset.writes
        ],
    }


def rwset_from_doc(doc: dict) -> ReadWriteSet:
    return ReadWriteSet(
        reads=tuple(
            ReadEntry(key=key, version=_version_from(version))
            for key, version in doc["reads"]
        ),
        writes=tuple(
            WriteEntry(
                key=key,
                value=None if value is None else bytes.fromhex(value),
                is_delete=bool(is_delete),
            )
            for key, value, is_delete in doc["writes"]
        ),
    )


def tx_to_doc(tx: Transaction) -> dict:
    return {
        "proposal": proposal_to_doc(tx.proposal),
        "rwset": rwset_to_doc(tx.rwset),
        "response": tx.response,
        "endorsements": [
            {"endorser": e.endorser.to_dict(), "sig": e.signature.hex()}
            for e in tx.endorsements
        ],
        "events": [
            {"chaincode": ev.chaincode, "name": ev.name, "payload": ev.payload}
            for ev in tx.events
        ],
        "private": [[p.collection, p.key, p.value.hex()] for p in tx.private_data],
    }


def tx_from_doc(doc: dict) -> Transaction:
    return Transaction(
        proposal=proposal_from_doc(doc["proposal"]),
        rwset=rwset_from_doc(doc["rwset"]),
        response=doc["response"],
        endorsements=tuple(
            Endorsement(
                endorser=IdentityInfo.from_dict(e["endorser"]),
                signature=bytes.fromhex(e["sig"]),
            )
            for e in doc["endorsements"]
        ),
        events=tuple(
            ChaincodeEvent(
                chaincode=ev["chaincode"], name=ev["name"], payload=ev["payload"]
            )
            for ev in doc["events"]
        ),
        private_data=tuple(
            PrivateWrite(collection=collection, key=key, value=bytes.fromhex(value))
            for collection, key, value in doc["private"]
        ),
    )


def block_to_doc(block: Block) -> dict:
    with profiled("serialize.block_codec"):
        return {
            "header": {
                "number": block.header.number,
                "previous_hash": block.header.previous_hash,
                "data_hash": block.header.data_hash,
                "timestamp": block.header.timestamp,
            },
            "txs": [tx_to_doc(tx) for tx in block.transactions],
            "codes": [code.value for code in block.validation_codes],
        }


def block_from_doc(doc: dict) -> Block:
    with profiled("serialize.block_codec"):
        header = doc["header"]
        return Block(
            header=BlockHeader(
                number=int(header["number"]),
                previous_hash=header["previous_hash"],
                data_hash=header["data_hash"],
                timestamp=float(header["timestamp"]),
            ),
            transactions=tuple(tx_from_doc(tx) for tx in doc["txs"]),
            validation_codes=tuple(ValidationCode(code) for code in doc["codes"]),
        )
