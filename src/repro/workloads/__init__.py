"""Workload generators: seeded file-size sweeps and traffic ingestion
streams shared by the examples, benches, and ablations."""

from repro.workloads.filesizes import DEFAULT_SIZES, payload, payload_series
from repro.workloads.traffic import IngestItem, ingest_stream

__all__ = ["DEFAULT_SIZES", "payload", "payload_series", "IngestItem", "ingest_stream"]
