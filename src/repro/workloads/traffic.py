"""Traffic ingestion workloads: frames + metadata ready to submit.

Used by the examples, the figure benches, and the throughput ablations —
one place that turns the synthetic dataset into (payload, metadata,
observation) triples so every experiment ingests identically-shaped work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.trust.crossval import Observation
from repro.vision import MetadataExtractor, SimulatedYolo, TrafficDataset


@dataclass(frozen=True)
class IngestItem:
    source_id: str
    payload: bytes
    metadata: dict
    observation: Observation


def ingest_stream(
    n_videos: int = 4,
    frames_per_video: int = 3,
    seed: int = 7,
    kind: str = "static",
) -> Iterator[IngestItem]:
    """Detection + extraction over the synthetic dataset, ready to submit."""
    dataset = TrafficDataset(seed=seed, frames_per_video=frames_per_video,
                             n_videos=max(n_videos, 1))
    detector = SimulatedYolo(seed=seed)
    extractor = MetadataExtractor()
    clips = dataset.static_clips(n_videos) if kind == "static" else dataset.drone_clips(n_videos)
    for clip in clips:
        for frame in clip.frames:
            detections = detector.detect(frame)
            record = extractor.extract(frame, detections)
            yield IngestItem(
                source_id=clip.camera_id,
                payload=frame.to_bytes(),
                metadata=record.to_dict(),
                observation=extractor.to_observation(record),
            )
