"""File-size sweep workloads for the storage/retrieval figures (5 and 6).

The paper stores files of varying sizes on IPFS with and without blockchain
integration and reports near-linear scaling with minimal blockchain
overhead. These helpers generate the seeded payloads and the size grid the
benches sweep.
"""

from __future__ import annotations

from repro.util.rng import rng_for

# The sweep grid: small metadata-sized payloads up to multi-MiB frames.
DEFAULT_SIZES = (
    1 << 10,    # 1 KiB
    8 << 10,    # 8 KiB
    64 << 10,   # 64 KiB
    256 << 10,  # 256 KiB
    1 << 20,    # 1 MiB
    4 << 20,    # 4 MiB
)


def payload(size: int, seed: int = 0, label: str = "payload") -> bytes:
    """Seeded incompressible payload of exactly ``size`` bytes."""
    if size < 0:
        raise ValueError("size must be non-negative")
    return rng_for(seed, "filesizes", label, str(size)).bytes(size)


def payload_series(sizes=DEFAULT_SIZES, seed: int = 0) -> list[bytes]:
    return [payload(s, seed=seed) for s in sizes]
