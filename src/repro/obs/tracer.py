"""The tracer: nested spans with contextvars-based propagation.

Layers never thread trace handles through signatures — each instrumented
site calls :func:`repro.obs.trace.span` (the module-level entry point) and
parentage is resolved from a :mod:`contextvars` current-span variable, so
traces nest correctly through any call depth and stay correct under
``asyncio`` or thread-per-request execution.

Tracing is **opt-in and process-global**: :func:`enable` installs a tracer,
:func:`disable` removes it. While disabled, :func:`span` returns a shared
no-op span after a single guard check — instrumented hot paths cost one
global read and one ``is None`` comparison, with no allocation (verified by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterable, Iterator

from repro.obs.span import NOOP_SPAN, NoopSpan, Span, SpanContext

_current_span: ContextVar[Span | None] = ContextVar("repro_obs_current_span", default=None)

# Default retention for the process-global tracer installed by
# :func:`enable`: long-running workloads keep the most recent spans in a
# bounded ring instead of growing without limit. Explicit ``Tracer(...)``
# construction stays unbounded unless asked.
DEFAULT_MAX_SPANS = 262_144

# Default histogram buckets for span latencies (seconds): 100 µs .. 10 s.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Tracer:
    """Produces nested spans and keeps every finished one for analysis.

    ``registry`` (optional) unifies tracing with metrics: each finished
    span's duration is observed into a ``span_seconds{name=...}`` histogram
    and counted in ``spans_total{name=..., status=...}``.

    ``max_spans`` (optional) bounds retention: the finished list becomes a
    ring buffer that evicts the *oldest* span once full, counting each
    eviction in :attr:`dropped` (and ``spans_dropped_total`` when a
    registry is attached). Metrics still see every span — only the
    retained-for-analysis window is bounded.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        registry=None,
        max_spans: int | None = None,
    ) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError("max_spans must be >= 1 (or None for unbounded)")
        self.clock = clock
        self.registry = registry
        self.max_spans = max_spans
        self.dropped = 0
        self.finished: deque[Span] = deque()
        # Parent -> children and root indexes over `finished`, maintained on
        # span finish and on ring-buffer eviction, so children()/roots()
        # are O(answer) instead of a scan over every retained span (which
        # made tree walks over large traces O(n^2)).
        self._children_ix: dict[str, dict[str, Span]] = {}
        # Remote spans only: exec-context parent -> the remote spans whose
        # delivery ran inside it (their causal parent is elsewhere).
        self._exec_ix: dict[str, dict[str, Span]] = {}
        self._roots_ix: dict[str, Span] = {}

    # -- span lifecycle ---------------------------------------------------------

    def span(
        self,
        name: str,
        attrs: dict[str, Any] | None = None,
        remote_parent: SpanContext | None = None,
    ) -> Span:
        """Create a span; activate it with ``with``.

        ``remote_parent`` — a :class:`SpanContext` extracted from an
        incoming message — overrides the ambient (contextvars) parent, so
        the span joins the *sender's* trace: the causal edge, not the
        event-loop call stack.
        """
        return Span(name, self, attrs, remote_parent=remote_parent)

    def _enter(self, span: Span) -> None:
        parent = _current_span.get()
        if parent is not None:
            span.exec_parent_id = parent.span_id
        remote = span._remote_parent
        if remote is not None:
            # Causal parent: the span that *sent* the message. The ambient
            # frame is kept separately (exec_parent_id) so time stays
            # nested under whatever ran the delivery.
            span.parent_id = remote.span_id
            span.trace_id = remote.trace_id
            span.remote = True
        elif parent is not None:
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        span._token = _current_span.set(span)
        span.start_s = self.clock()

    def _exit(self, span: Span, exc: BaseException | None) -> None:
        span.end_s = self.clock()
        if exc is not None:
            span.record_error(exc)
        if span._token is not None:
            _current_span.reset(span._token)
            span._token = None
        if self.max_spans is not None and len(self.finished) == self.max_spans:
            self._unindex(self.finished.popleft())
            self.dropped += 1
            if self.registry is not None:
                self.registry.counter("spans_dropped_total").inc()
        self.finished.append(span)
        self._index(span)
        if self.registry is not None:
            self.registry.histogram(
                "span_seconds", LATENCY_BUCKETS, labels={"name": span.name}
            ).observe(span.duration_s)
            self.registry.counter(
                "spans_total", labels={"name": span.name, "status": span.status}
            ).inc()

    # -- index maintenance ------------------------------------------------------

    def _index(self, span: Span) -> None:
        if span.parent_id is None:
            self._roots_ix[span.span_id] = span
        else:
            self._children_ix.setdefault(span.parent_id, {})[span.span_id] = span
        if span.remote and span.exec_parent_id is not None:
            self._exec_ix.setdefault(span.exec_parent_id, {})[span.span_id] = span

    def _unindex(self, span: Span) -> None:
        if span.parent_id is None:
            self._roots_ix.pop(span.span_id, None)
        else:
            bucket = self._children_ix.get(span.parent_id)
            if bucket is not None:
                bucket.pop(span.span_id, None)
                if not bucket:
                    del self._children_ix[span.parent_id]
        if span.remote and span.exec_parent_id is not None:
            bucket = self._exec_ix.get(span.exec_parent_id)
            if bucket is not None:
                bucket.pop(span.span_id, None)
                if not bucket:
                    del self._exec_ix[span.exec_parent_id]

    # -- queries ----------------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def roots(self) -> list[Span]:
        return list(self._roots_ix.values())

    def children(self, span: Span, view: str = "causal") -> list[Span]:
        """Finished children of ``span``, in start order.

        Two views of the same spans:

        * ``"causal"`` (default) — children by parent link: a remote span
          (message delivery) hangs off the span that *sent* the message,
          which may have finished long before the delivery ran.
        * ``"exec"`` — children by execution context: a remote span hangs
          off the frame that ran its delivery, so child intervals nest
          inside the parent's. This is the view exclusive-time accounting
          (the Fig. 5/6 breakdown) needs.
        """
        bucket = self._children_ix.get(span.span_id)
        causal: Iterable[Span] = bucket.values() if bucket else ()
        if view == "causal":
            kids = list(causal)
        elif view == "exec":
            kids = [s for s in causal if not s.remote]
            exec_bucket = self._exec_ix.get(span.span_id)
            if exec_bucket:
                kids.extend(exec_bucket.values())
        else:
            raise ValueError(f"unknown children view {view!r}")
        return sorted(kids, key=lambda s: s.start_s)

    def descendants(self, span: Span, view: str = "causal") -> list[Span]:
        out: list[Span] = []
        frontier = [span]
        while frontier:
            node = frontier.pop()
            kids = self.children(node, view=view)
            out.extend(kids)
            frontier.extend(kids)
        return out

    def tree(self) -> list[dict[str, Any]]:
        """The forest of finished spans as nested dicts."""

        def build(span: Span) -> dict[str, Any]:
            node = span.to_dict()
            node["children"] = [build(c) for c in self.children(span)]
            return node

        return [build(r) for r in sorted(self.roots(), key=lambda s: s.start_s)]

    def tree_lines(self, max_attr_len: int = 40) -> list[str]:
        """Human-readable indented rendering of the span forest."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                joined = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
                if len(joined) > max_attr_len:
                    joined = joined[: max_attr_len - 1] + "…"
                attrs = f"  [{joined}]"
            flag = "" if span.status == "ok" else f"  !! {span.error}"
            lines.append(
                f"{'  ' * depth}{span.name:<{max(1, 30 - 2 * depth)}} "
                f"{span.duration_s * 1e3:9.3f} ms{attrs}{flag}"
            )
            for child in self.children(span):
                walk(child, depth + 1)

        for root in sorted(self.roots(), key=lambda s: s.start_s):
            walk(root, 0)
        return lines

    def clear(self) -> None:
        self.finished.clear()
        self._children_ix.clear()
        self._exec_ix.clear()
        self._roots_ix.clear()


# ---------------------------------------------------------------------------
# Process-global tracer
# ---------------------------------------------------------------------------

_GLOBAL: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _GLOBAL


def set_tracer(tracer: Tracer | None) -> None:
    global _GLOBAL
    _GLOBAL = tracer


def enable(registry=None, max_spans: int | None = DEFAULT_MAX_SPANS) -> Tracer:
    """Install (and return) a fresh process-global tracer.

    Retention is bounded by default (:data:`DEFAULT_MAX_SPANS`, a ring
    buffer of the most recent spans); pass ``max_spans=None`` to keep
    everything, or a smaller bound for memory-constrained runs.
    """
    tracer = Tracer(registry=registry, max_spans=max_spans)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    set_tracer(None)


def span(
    name: str,
    attrs: dict[str, Any] | None = None,
    remote_parent: SpanContext | None = None,
) -> Span | NoopSpan:
    """Start a span on the global tracer; the no-op singleton when disabled.

    This is the call instrumented code makes. The disabled path is a single
    guard check returning a shared object — no allocation.
    """
    tracer = _GLOBAL
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, attrs, remote_parent=remote_parent)


def current_span() -> Span | None:
    """The innermost active span in this execution context, if any."""
    return _current_span.get()


def current_context() -> SpanContext | None:
    """The current span's injectable context, or ``None``.

    ``None`` both when tracing is disabled (checked first — the disabled
    path costs one global read) and when no span is active. This is what
    transports call to stamp outgoing messages.
    """
    if _GLOBAL is None:
        return None
    sp = _current_span.get()
    return None if sp is None else sp.context()


@contextmanager
def enabled(registry=None, max_spans: int | None = DEFAULT_MAX_SPANS) -> Iterator[Tracer]:
    """Scoped tracing: install a fresh tracer, restore the old one after."""
    previous = _GLOBAL
    tracer = enable(registry=registry, max_spans=max_spans)
    try:
        yield tracer
    finally:
        set_tracer(previous)
