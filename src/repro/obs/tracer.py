"""The tracer: nested spans with contextvars-based propagation.

Layers never thread trace handles through signatures — each instrumented
site calls :func:`repro.obs.trace.span` (the module-level entry point) and
parentage is resolved from a :mod:`contextvars` current-span variable, so
traces nest correctly through any call depth and stay correct under
``asyncio`` or thread-per-request execution.

Tracing is **opt-in and process-global**: :func:`enable` installs a tracer,
:func:`disable` removes it. While disabled, :func:`span` returns a shared
no-op span after a single guard check — instrumented hot paths cost one
global read and one ``is None`` comparison, with no allocation (verified by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

from repro.obs.span import NOOP_SPAN, NoopSpan, Span

_current_span: ContextVar[Span | None] = ContextVar("repro_obs_current_span", default=None)

# Default retention for the process-global tracer installed by
# :func:`enable`: long-running workloads keep the most recent spans in a
# bounded ring instead of growing without limit. Explicit ``Tracer(...)``
# construction stays unbounded unless asked.
DEFAULT_MAX_SPANS = 262_144

# Default histogram buckets for span latencies (seconds): 100 µs .. 10 s.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Tracer:
    """Produces nested spans and keeps every finished one for analysis.

    ``registry`` (optional) unifies tracing with metrics: each finished
    span's duration is observed into a ``span_seconds{name=...}`` histogram
    and counted in ``spans_total{name=..., status=...}``.

    ``max_spans`` (optional) bounds retention: the finished list becomes a
    ring buffer that evicts the *oldest* span once full, counting each
    eviction in :attr:`dropped` (and ``spans_dropped_total`` when a
    registry is attached). Metrics still see every span — only the
    retained-for-analysis window is bounded.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        registry=None,
        max_spans: int | None = None,
    ) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError("max_spans must be >= 1 (or None for unbounded)")
        self.clock = clock
        self.registry = registry
        self.max_spans = max_spans
        self.dropped = 0
        self.finished: deque[Span] = deque(maxlen=max_spans)

    # -- span lifecycle ---------------------------------------------------------

    def span(self, name: str, attrs: dict[str, Any] | None = None) -> Span:
        """Create a span; activate it with ``with``."""
        return Span(name, self, attrs)

    def _enter(self, span: Span) -> None:
        parent = _current_span.get()
        if parent is not None:
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        span._token = _current_span.set(span)
        span.start_s = self.clock()

    def _exit(self, span: Span, exc: BaseException | None) -> None:
        span.end_s = self.clock()
        if exc is not None:
            span.record_error(exc)
        if span._token is not None:
            _current_span.reset(span._token)
            span._token = None
        if self.max_spans is not None and len(self.finished) == self.max_spans:
            self.dropped += 1
            if self.registry is not None:
                self.registry.counter("spans_dropped_total").inc()
        self.finished.append(span)
        if self.registry is not None:
            self.registry.histogram(
                "span_seconds", LATENCY_BUCKETS, labels={"name": span.name}
            ).observe(span.duration_s)
            self.registry.counter(
                "spans_total", labels={"name": span.name, "status": span.status}
            ).inc()

    # -- queries ----------------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def roots(self) -> list[Span]:
        return [s for s in self.finished if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        kids = [s for s in self.finished if s.parent_id == span.span_id]
        return sorted(kids, key=lambda s: s.start_s)

    def descendants(self, span: Span) -> list[Span]:
        out: list[Span] = []
        frontier = [span]
        while frontier:
            node = frontier.pop()
            kids = self.children(node)
            out.extend(kids)
            frontier.extend(kids)
        return out

    def tree(self) -> list[dict[str, Any]]:
        """The forest of finished spans as nested dicts."""

        def build(span: Span) -> dict[str, Any]:
            node = span.to_dict()
            node["children"] = [build(c) for c in self.children(span)]
            return node

        return [build(r) for r in sorted(self.roots(), key=lambda s: s.start_s)]

    def tree_lines(self, max_attr_len: int = 40) -> list[str]:
        """Human-readable indented rendering of the span forest."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                joined = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
                if len(joined) > max_attr_len:
                    joined = joined[: max_attr_len - 1] + "…"
                attrs = f"  [{joined}]"
            flag = "" if span.status == "ok" else f"  !! {span.error}"
            lines.append(
                f"{'  ' * depth}{span.name:<{max(1, 30 - 2 * depth)}} "
                f"{span.duration_s * 1e3:9.3f} ms{attrs}{flag}"
            )
            for child in self.children(span):
                walk(child, depth + 1)

        for root in sorted(self.roots(), key=lambda s: s.start_s):
            walk(root, 0)
        return lines

    def clear(self) -> None:
        self.finished.clear()


# ---------------------------------------------------------------------------
# Process-global tracer
# ---------------------------------------------------------------------------

_GLOBAL: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` while tracing is disabled."""
    return _GLOBAL


def set_tracer(tracer: Tracer | None) -> None:
    global _GLOBAL
    _GLOBAL = tracer


def enable(registry=None, max_spans: int | None = DEFAULT_MAX_SPANS) -> Tracer:
    """Install (and return) a fresh process-global tracer.

    Retention is bounded by default (:data:`DEFAULT_MAX_SPANS`, a ring
    buffer of the most recent spans); pass ``max_spans=None`` to keep
    everything, or a smaller bound for memory-constrained runs.
    """
    tracer = Tracer(registry=registry, max_spans=max_spans)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    set_tracer(None)


def span(name: str, attrs: dict[str, Any] | None = None) -> Span | NoopSpan:
    """Start a span on the global tracer; the no-op singleton when disabled.

    This is the call instrumented code makes. The disabled path is a single
    guard check returning a shared object — no allocation.
    """
    tracer = _GLOBAL
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, attrs)


def current_span() -> Span | None:
    """The innermost active span in this execution context, if any."""
    return _current_span.get()


@contextmanager
def enabled(registry=None, max_spans: int | None = DEFAULT_MAX_SPANS) -> Iterator[Tracer]:
    """Scoped tracing: install a fresh tracer, restore the old one after."""
    previous = _GLOBAL
    tracer = enable(registry=registry, max_spans=max_spans)
    try:
        yield tracer
    finally:
        set_tracer(previous)
