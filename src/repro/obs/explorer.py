"""LedgerExplorer: the Hyperledger-Explorer half of the paper's testbed.

The paper watches its network through Grafana *and* Hyperledger Explorer;
:mod:`repro.obs` built the Grafana half (spans, metrics, exporters). This
module is the Explorer half: a read-only API over a live channel that can

* browse blocks and transactions with their validation codes,
* reconstruct a data entry's provenance trail **from the ledger itself**
  (the transactions' write sets), independently of the world-state copy
  the provenance chaincode serves — the two must agree on an honest peer,
* chart a source's trust-score trajectory from the state history DB,
* run a full chain-integrity audit: header hash links, per-block
  transaction Merkle roots, creator/endorsement signatures, a world-state
  replay cross-check, cross-peer head comparison, and (when given the
  IPFS cluster) hash verification of every off-chain block each data
  entry references — pinpointing the exact block/tx/node that is wrong.

Everything here reads committed state only; the explorer never signs,
orders, or writes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import IdentityError, ObservabilityError, SignatureError
from repro.fabric.channel import Channel
from repro.fabric.ledger import Block
from repro.fabric.peer import Peer, endorsement_payload
from repro.fabric.tx import Transaction, ValidationCode
from repro.fabric.worldstate import composite_prefix_range
from repro.crypto.merkle import merkle_root

_DATA_PREFIX = "data:"
_TRUST_PREFIX = "trust:"
_PROV_INDEX = "prov"


@dataclass(frozen=True)
class AuditFinding:
    """One integrity violation, located as precisely as the evidence allows."""

    check: str                 # header_chain | merkle_root | creator_signature | ...
    detail: str
    block: int | None = None
    tx_id: str | None = None
    node: str | None = None    # IPFS node (off-chain findings)
    cid: str | None = None     # off-chain root CID

    def to_dict(self) -> dict:
        out = {"check": self.check, "detail": self.detail}
        for key in ("block", "tx_id", "node", "cid"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass
class AuditReport:
    """Outcome of :meth:`LedgerExplorer.audit_chain`."""

    blocks_checked: int = 0
    txs_checked: int = 0
    state_keys_checked: int = 0
    offchain_files_checked: int = 0
    offchain_blocks_checked: int = 0
    index_epochs_checked: int = 0
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "blocks_checked": self.blocks_checked,
            "txs_checked": self.txs_checked,
            "state_keys_checked": self.state_keys_checked,
            "offchain_files_checked": self.offchain_files_checked,
            "offchain_blocks_checked": self.offchain_blocks_checked,
            "index_epochs_checked": self.index_epochs_checked,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_lines(self) -> list[str]:
        lines = [
            f"audit      : {'PASS' if self.ok else 'FAIL'}",
            f"on-chain   : {self.blocks_checked} blocks, {self.txs_checked} txs, "
            f"{self.state_keys_checked} state keys replayed",
            f"off-chain  : {self.offchain_files_checked} files, "
            f"{self.offchain_blocks_checked} blocks hash-verified",
            f"index      : {self.index_epochs_checked} epoch digests verified",
        ]
        for finding in self.findings:
            where = " ".join(
                f"{k}={v}"
                for k, v in finding.to_dict().items()
                if k not in ("check", "detail")
            )
            lines.append(f"  !! {finding.check} {where}: {finding.detail}")
        return lines


class LedgerExplorer:
    """Read-only ledger browsing, provenance reconstruction, and auditing
    over one channel (plus, optionally, its off-chain IPFS cluster)."""

    def __init__(self, channel: Channel, ipfs=None) -> None:
        self.channel = channel
        self.ipfs = ipfs

    # -- reference state ---------------------------------------------------------

    def reference_peer(self) -> Peer:
        """The first online peer at chain height — the copy reads come from."""
        height = self.channel.height()
        for peer in self.channel.peers.values():
            if peer.online and peer.ledger.height == height:
                return peer
        raise ObservabilityError("no online peer at chain height to explore")

    # -- block / tx browsing -----------------------------------------------------

    def height(self) -> int:
        return self.channel.height()

    def block_view(self, number: int) -> dict:
        """One block as a JSON-friendly dict, validation codes included."""
        peer = self.reference_peer()
        return self._block_dict(peer.ledger.block(number), getattr(peer, "index", None))

    def blocks(self, start: int = 0, limit: int | None = None) -> list[dict]:
        peer = self.reference_peer()
        ledger = peer.ledger
        index = getattr(peer, "index", None)
        numbers = range(max(start, ledger.base_height), ledger.height)
        if limit is not None:
            numbers = numbers[:limit]
        return [self._block_dict(ledger.block(n), index) for n in numbers]

    @staticmethod
    def _block_dict(block: Block, index=None) -> dict:
        txs = []
        for i, tx in enumerate(block.transactions):
            code = (
                block.validation_codes[i].value
                if block.validation_codes
                else ValidationCode.VALID.value
            )
            txs.append(
                {
                    "tx_id": tx.tx_id,
                    "chaincode": tx.proposal.chaincode,
                    "fn": tx.proposal.fn,
                    "creator": tx.proposal.creator.name,
                    "org": tx.proposal.creator.org,
                    "code": code,
                }
            )
        view = {
            "number": block.number,
            "hash": block.header.hash(),
            "previous_hash": block.header.previous_hash,
            "data_hash": block.header.data_hash,
            "timestamp": block.header.timestamp,
            "tx_count": len(block.transactions),
            "transactions": txs,
        }
        if index is not None:
            # The secondary-index epoch root this block advanced the peer's
            # authenticated index to (None for pre-index blocks).
            view["index_epoch"] = index.epochs.get(block.number)
        return view

    def tx_view(self, tx_id: str) -> dict:
        """One transaction: proposal, outcome, rwset, endorsers."""
        block, tx, code = self.reference_peer().ledger.find_tx(tx_id)
        return {
            "tx_id": tx.tx_id,
            "block": block.number,
            "code": code.value,
            "chaincode": tx.proposal.chaincode,
            "fn": tx.proposal.fn,
            "args": list(tx.proposal.args),
            "creator": tx.proposal.creator.name,
            "org": tx.proposal.creator.org,
            "response": tx.response,
            "reads": [r.to_dict() for r in tx.rwset.reads],
            "writes": [w.key for w in tx.rwset.writes],
            "endorsers": [e.endorser.name for e in tx.endorsements],
        }

    # -- Explorer-style overview -------------------------------------------------

    def summary(self) -> dict:
        """The channel overview ``repro.fabric.monitor.channel_summary``
        historically produced (same shape, now served by the explorer)."""
        peers = {}
        tx_by_code: dict[str, int] = {}
        reference = None
        for name, peer in self.channel.peers.items():
            peers[name] = {
                "org": peer.org,
                "height": peer.ledger.height,
                "state_keys": len(peer.world),
                "online": peer.online,
                "txs_valid": peer.stats.txs_valid,
                "txs_invalid": peer.stats.txs_invalid,
            }
            if reference is None and peer.online:
                reference = peer
        if reference is not None:
            for block in reference.ledger.blocks():
                for code in block.validation_codes or ():
                    tx_by_code[code.value] = tx_by_code.get(code.value, 0) + 1
        return {
            "channel": self.channel.name,
            "height": self.channel.height(),
            "orgs": sorted({p.org for p in self.channel.peers.values()}),
            "chaincodes": self.channel.chaincode_names(),
            "collections": self.channel.collections.names(),
            "tx_by_code": dict(sorted(tx_by_code.items())),
            "peers": peers,
        }

    # -- data entries -------------------------------------------------------------

    def entry_ids(self) -> list[str]:
        world = self.reference_peer().world
        return [
            key[len(_DATA_PREFIX):]
            for key, _ in world.range(_DATA_PREFIX, _DATA_PREFIX + "\x7f")
        ]

    def entry(self, entry_id: str) -> dict:
        raw = self.reference_peer().world.get(_DATA_PREFIX + entry_id)
        if raw is None:
            raise ObservabilityError(f"no data entry {entry_id!r} on the ledger")
        return json.loads(raw)

    # -- provenance ---------------------------------------------------------------

    def provenance_trail(self, entry_id: str) -> list[dict]:
        """The entry's provenance chain, reconstructed from the *ledger*.

        Every valid ``provenance.record`` transaction for the entry wrote
        the full event under its composite lineage key; reading those
        writes out of the committed blocks rebuilds the exact chain the
        chaincode's ``lineage`` query serves from world state — including
        each event's actor, which PR 3 pinned to the submitting source.
        """
        prefix, _ = composite_prefix_range(_PROV_INDEX, [entry_id])
        events: list[dict] = []
        ledger = self.reference_peer().ledger
        for block in ledger.blocks():
            codes = block.validation_codes
            for i, tx in enumerate(block.transactions):
                if codes and codes[i] is not ValidationCode.VALID:
                    continue
                if tx.proposal.chaincode != "provenance" or tx.proposal.fn != "record":
                    continue
                if not tx.proposal.args or tx.proposal.args[0] != entry_id:
                    continue
                for write in tx.rwset.writes:
                    if write.key.startswith(prefix) and write.value is not None:
                        events.append(json.loads(write.value))
        return sorted(events, key=lambda e: e["seq"])

    def lineage(self, entry_id: str) -> list[dict]:
        """The same chain as served from world state (the chaincode's view)."""
        start, end = composite_prefix_range(_PROV_INDEX, [entry_id])
        world = self.reference_peer().world
        return [json.loads(value) for _, value in world.range(start, end)]

    # -- trust timelines ----------------------------------------------------------

    def trust_timeline(self, source_id: str) -> list[dict]:
        """Every on-chain trust-score write for a source, oldest first."""
        out = []
        for entry in self.reference_peer().world.history(_TRUST_PREFIX + source_id):
            if entry.value is None:
                continue
            record = json.loads(entry.value)
            record["tx_id"] = entry.tx_id
            record["block"] = entry.version.block
            out.append(record)
        return out

    def trust_sources(self) -> list[str]:
        world = self.reference_peer().world
        return [
            key[len(_TRUST_PREFIX):]
            for key, _ in world.range(_TRUST_PREFIX, _TRUST_PREFIX + "\x7f")
        ]

    # -- the audit ----------------------------------------------------------------

    def audit_chain(self, offchain: bool = True) -> AuditReport:
        """Full-chain integrity audit; findings pinpoint what is wrong.

        On-chain: header hash links and per-block Merkle roots, creator
        and endorsement signatures of every VALID transaction, a replay of
        all valid write sets compared against the reference peer's world
        state, and a head comparison across online peers. Off-chain (when
        the explorer holds the IPFS cluster): every block of every data
        entry's DAG is re-hashed against its CID on every node that holds
        it — silent bit rot names the node and the rotten block.
        """
        report = AuditReport()
        peer = self.reference_peer()
        ledger = peer.ledger
        blocks = ledger.blocks()

        prev = ledger.base_prev_hash
        for block in blocks:
            report.blocks_checked += 1
            n = block.number
            if block.header.previous_hash != prev:
                report.findings.append(
                    AuditFinding("header_chain", "previous-hash link broken", block=n)
                )
            recomputed = merkle_root(
                [tx.envelope_bytes() for tx in block.transactions]
            ).hex()
            if recomputed != block.header.data_hash:
                report.findings.append(
                    AuditFinding("merkle_root", "tx Merkle root mismatch", block=n)
                )
            self._audit_txs(block, report)
            prev = block.header.hash()

        self._audit_state_replay(peer, blocks, report)
        self._audit_peer_heads(report)
        self._audit_index(peer, blocks, report)
        if offchain and self.ipfs is not None:
            self._audit_offchain(peer, report)
        return report

    def _audit_index(self, peer: Peer, blocks: list[Block], report: AuditReport) -> None:
        """Verify the peers' authenticated index epochs.

        Cross-peer: online peers that indexed the same block number must
        have recorded the same epoch digest. Independent: when the
        reference ledger holds the full chain (no snapshot bootstrap), a
        fresh index replays every block and must reproduce each recorded
        epoch — the auditor trusts nothing but the blocks themselves.
        """
        indexes = {
            name: p.index
            for name, p in self.channel.peers.items()
            if p.online and getattr(p, "index", None) is not None
        }
        if not indexes:
            return
        numbers: set[int] = set()
        for index in indexes.values():
            numbers.update(index.epochs)
        for n in sorted(numbers):
            recorded = {
                name: index.epochs[n]
                for name, index in sorted(indexes.items())
                if n in index.epochs
            }
            report.index_epochs_checked += 1
            if len(set(recorded.values())) > 1:
                report.findings.append(
                    AuditFinding(
                        "index_epoch",
                        "peers disagree on the index epoch: "
                        + ", ".join(f"{p}={d[:12]}…" for p, d in recorded.items()),
                        block=n,
                    )
                )
        reference = getattr(peer, "index", None)
        if reference is None or peer.ledger.base_height != 0:
            return
        from repro.index import PeerIndex

        replayed = PeerIndex(
            trusted_threshold=reference.trusted_threshold,
            min_threshold=reference.min_threshold,
        )
        for block in blocks:
            replayed.apply_block(block)
            recorded_epoch = reference.epochs.get(block.number)
            if recorded_epoch is None:
                continue
            if replayed.epochs.get(block.number) != recorded_epoch:
                report.findings.append(
                    AuditFinding(
                        "index_epoch",
                        f"recorded epoch {recorded_epoch[:12]}… is not "
                        "reproduced by replaying the chain through a fresh "
                        "index",
                        block=block.number,
                    )
                )

    def _audit_txs(self, block: Block, report: AuditReport) -> None:
        msp = self.channel.msp_registry
        codes = block.validation_codes
        for i, tx in enumerate(block.transactions):
            if codes and codes[i] is not ValidationCode.VALID:
                continue  # invalid txs carry their verdict in the code
            report.txs_checked += 1
            try:
                msp.verify_signature(
                    tx.proposal.creator,
                    tx.proposal.signing_payload(),
                    tx.proposal.signature,
                )
            except (IdentityError, SignatureError) as exc:
                report.findings.append(
                    AuditFinding(
                        "creator_signature", str(exc), block=block.number, tx_id=tx.tx_id
                    )
                )
            payload = endorsement_payload(tx)
            if not any(
                self._endorsement_ok(msp, e, payload) for e in tx.endorsements
            ):
                report.findings.append(
                    AuditFinding(
                        "endorsement_signature",
                        "no endorsement verifies against the committed rwset",
                        block=block.number,
                        tx_id=tx.tx_id,
                    )
                )

    @staticmethod
    def _endorsement_ok(msp, endorsement, payload: bytes) -> bool:
        try:
            msp.validate_identity(endorsement.endorser)
            endorsement.endorser.public_key.verify(payload, endorsement.signature)
        except (IdentityError, SignatureError):
            return False
        return True

    def _audit_state_replay(
        self, peer: Peer, blocks: list[Block], report: AuditReport
    ) -> None:
        """Re-apply every valid write set; the result must equal the world
        state for every replayed key (committer honesty spot-check)."""
        replayed: dict[str, bytes | None] = {}
        for block in blocks:
            codes = block.validation_codes
            for i, tx in enumerate(block.transactions):
                if codes and codes[i] is not ValidationCode.VALID:
                    continue
                for write in tx.rwset.writes:
                    replayed[write.key] = None if write.is_delete else write.value
        for key, expected in replayed.items():
            report.state_keys_checked += 1
            if peer.world.get(key) != expected:
                report.findings.append(
                    AuditFinding(
                        "state_replay",
                        f"world state disagrees with replayed writes for key {key!r}",
                    )
                )

    def _audit_peer_heads(self, report: AuditReport) -> None:
        """Online peers at the same height must share the same head hash."""
        by_height: dict[int, dict[str, str]] = {}
        for name, peer in self.channel.peers.items():
            if peer.online:
                by_height.setdefault(peer.ledger.height, {})[name] = (
                    peer.ledger.last_hash()
                )
        for height, heads in by_height.items():
            if len(set(heads.values())) > 1:
                report.findings.append(
                    AuditFinding(
                        "peer_divergence",
                        f"peers at height {height} disagree on the head hash: "
                        + ", ".join(f"{n}={h[:12]}…" for n, h in sorted(heads.items())),
                    )
                )

    def _audit_offchain(self, peer: Peer, report: AuditReport) -> None:
        from repro.crypto.cid import CID, CODEC_DAG_JSON
        from repro.errors import InvalidBlockError, StorageError
        from repro.ipfs.block import Block as IpfsBlock

        for key, raw in peer.world.range(_DATA_PREFIX, _DATA_PREFIX + "\x7f"):
            record = json.loads(raw)
            try:
                root = CID.parse(record["cid"])
            except (KeyError, ValueError):
                report.findings.append(
                    AuditFinding(
                        "offchain_record",
                        f"entry {key[len(_DATA_PREFIX):]} has no parseable CID",
                    )
                )
                continue
            report.offchain_files_checked += 1
            for node_id, node in sorted(self.ipfs.nodes.items()):
                if not node.online or not node.blockstore.has(root):
                    continue
                # Read-only DAG walk with per-block hash verification — the
                # same check quarantine applies, without the deletion.
                stack, seen = [root], set()
                while stack:
                    cid = stack.pop()
                    if cid in seen or not node.blockstore.has(cid):
                        continue
                    seen.add(cid)
                    stored = node.blockstore.get(cid)
                    report.offchain_blocks_checked += 1
                    try:
                        IpfsBlock.verified(cid, stored.data)
                    except InvalidBlockError:
                        report.findings.append(
                            AuditFinding(
                                "offchain_block",
                                f"stored bytes no longer hash to {cid.encode()[:16]}…",
                                node=node_id,
                                cid=root.encode(),
                            )
                        )
                        continue
                    if cid.codec == CODEC_DAG_JSON:
                        try:
                            stack.extend(link.cid for link in node.dag.get(cid).links)
                        except StorageError:  # pragma: no cover - defensive
                            continue
