"""Component health checks + rolling-window SLIs → one typed HealthReport.

"Is the system healthy right now?" PR 2's chaos faults and breaker trips
were only visible by reading raw counters; this module turns a live
:class:`~repro.core.framework.Framework` into an answer:

* **Component checks** — fabric peers, the ordering service, the BFT
  validator cluster, IPFS nodes, the DHT, and every circuit breaker, each
  scored HEALTHY / DEGRADED / UNHEALTHY with a one-line reason.
* **SLIs** — service-level indicators computed over a rolling window of
  checks (not since process start): transaction failure rate, consensus
  messages per transaction, consensus message-drop fraction, replication
  health, plus commit-latency quantiles straight off the metrics
  histograms when tracing is enabled.

Every check exports ``health_status{component=...}`` gauges (0 healthy,
1 degraded, 2 unhealthy) and ``sli{name=...}`` gauges into the metrics
registry, so health rides the same Prometheus exposition as everything
else. The alert engine (:mod:`repro.obs.alerts`) evaluates its rules over
these reports.

Determinism note: component statuses and the counter-derived SLIs depend
only on system state, never on wall time — chaos scenarios assert on them
under a fixed seed. Latency quantiles are wall-clock and are therefore
excluded from alert fingerprints.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.resilience.breaker import BreakerState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.framework import Framework
    from repro.ipfs.replication import ReplicationManager


class HealthStatus(int, Enum):
    """Ordered severity; the report's overall status is the worst component."""

    HEALTHY = 0
    DEGRADED = 1
    UNHEALTHY = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class ComponentHealth:
    component: str
    status: HealthStatus
    detail: str

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "status": self.status.label,
            "detail": self.detail,
        }


@dataclass
class HealthReport:
    """One evaluation: every component's status plus the current SLIs."""

    tick: int
    components: list[ComponentHealth]
    slis: dict[str, float]

    @property
    def status(self) -> HealthStatus:
        return max((c.status for c in self.components), default=HealthStatus.HEALTHY)

    @property
    def healthy(self) -> bool:
        return self.status is HealthStatus.HEALTHY

    def component(self, name: str) -> ComponentHealth:
        for c in self.components:
            if c.component == name:
                return c
        raise KeyError(name)

    def signal(self, signal: str) -> float | None:
        """Resolve an alert-rule signal: ``component:<name>`` → status
        ordinal, ``sli:<name>`` → value; ``None`` when there is no data."""
        kind, _, name = signal.partition(":")
        if kind == "component":
            try:
                return float(self.component(name).status.value)
            except KeyError:
                return None
        if kind == "sli":
            value = self.slis.get(name)
            return None if value is None else float(value)
        return None

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "status": self.status.label,
            "components": [c.to_dict() for c in self.components],
            "slis": dict(sorted(self.slis.items())),
        }

    def render_lines(self) -> list[str]:
        mark = {
            HealthStatus.HEALTHY: "ok",
            HealthStatus.DEGRADED: "DEGRADED",
            HealthStatus.UNHEALTHY: "UNHEALTHY",
        }
        lines = [f"overall: {self.status.label.upper()}"]
        for c in self.components:
            lines.append(f"  {c.component:<22} {mark[c.status]:<10} {c.detail}")
        for name, value in sorted(self.slis.items()):
            lines.append(f"  sli {name:<24} {value:.4f}")
        return lines


@dataclass
class _WindowedCounters:
    """Per-tick deltas of cumulative counters over the last N checks."""

    window: int
    _last: dict[str, float] = field(default_factory=dict)
    _deltas: deque = field(default_factory=deque)

    def update(self, current: dict[str, float]) -> None:
        delta = {
            key: current[key] - self._last.get(key, 0.0) for key in current
        }
        self._last = dict(current)
        self._deltas.append(delta)
        while len(self._deltas) > self.window:
            self._deltas.popleft()

    def sum(self, key: str) -> float:
        return sum(d.get(key, 0.0) for d in self._deltas)

    def rate(self, numerator: str, denominator: str) -> float | None:
        den = self.sum(denominator)
        if den <= 0:
            return None
        return self.sum(numerator) / den


class HealthMonitor:
    """Evaluates a framework's health; call :meth:`check` once per tick."""

    def __init__(
        self,
        framework: "Framework",
        registry: MetricsRegistry | None = None,
        replication: "ReplicationManager | None" = None,
        window: int = 8,
    ) -> None:
        self.framework = framework
        self.registry = registry or get_registry()
        self.replication = replication
        self.window = _WindowedCounters(window)
        self.tick = 0

    # -- the check ----------------------------------------------------------------

    def check(self) -> HealthReport:
        components = [
            self._check_fabric_peers(),
            self._check_orderer(),
            self._check_validators(),
            self._check_ipfs_nodes(),
            self._check_dht(),
            self._check_breakers(),
        ]
        if getattr(self.framework, "durability", None) is not None:
            components.append(self._check_durability())
        self.window.update(self._raw_counters())
        slis = self._slis()
        report = HealthReport(tick=self.tick, components=components, slis=slis)
        self.tick += 1
        self._export(report)
        return report

    def _export(self, report: HealthReport) -> None:
        for c in report.components:
            self.registry.gauge(
                "health_status", {"component": c.component}
            ).set(c.status.value)
        self.registry.gauge("health_overall").set(report.status.value)
        for name, value in report.slis.items():
            self.registry.gauge("sli", {"name": name}).set(value)

    # -- components ---------------------------------------------------------------

    def _check_fabric_peers(self) -> ComponentHealth:
        channel = self.framework.channel
        height = channel.height()
        online = [p for p in channel.peers.values() if p.online]
        lagging = [p.name for p in online if p.ledger.height < height]
        offline = [p.name for p in channel.peers.values() if not p.online]
        detail = f"{len(online)}/{len(channel.peers)} online, height {height}"
        if not online:
            return ComponentHealth("fabric.peers", HealthStatus.UNHEALTHY, "no online peer")
        if offline or lagging:
            if offline:
                detail += f", offline: {','.join(sorted(offline))}"
            if lagging:
                detail += f", lagging: {','.join(sorted(lagging))}"
            return ComponentHealth("fabric.peers", HealthStatus.DEGRADED, detail)
        return ComponentHealth("fabric.peers", HealthStatus.HEALTHY, detail)

    def _check_orderer(self) -> ComponentHealth:
        orderer = self.framework.channel.orderer
        cluster = getattr(orderer, "cluster", None)
        if cluster is None:
            return ComponentHealth(
                "fabric.orderer", HealthStatus.HEALTHY, "solo ordering"
            )
        up = [n for n in cluster.replica_names if cluster.network.is_up(n)]
        quorum = len(cluster.replica_names) - cluster.f
        detail = f"bft, {len(up)}/{len(cluster.replica_names)} replicas up (quorum {quorum})"
        if len(up) < quorum:
            return ComponentHealth("fabric.orderer", HealthStatus.UNHEALTHY, detail)
        return ComponentHealth("fabric.orderer", HealthStatus.HEALTHY, detail)

    def _check_validators(self) -> ComponentHealth:
        orderer = self.framework.channel.orderer
        cluster = getattr(orderer, "cluster", None)
        if cluster is None:
            return ComponentHealth(
                "consensus.validators", HealthStatus.HEALTHY, "no validator cluster"
            )
        names = cluster.replica_names
        down = [n for n in names if not cluster.network.is_up(n)]
        quorum = len(names) - cluster.f
        detail = f"{len(names) - len(down)}/{len(names)} up"
        if down:
            detail += f", down: {','.join(sorted(down))}"
        if len(names) - len(down) < quorum:
            return ComponentHealth("consensus.validators", HealthStatus.UNHEALTHY, detail)
        if down:
            return ComponentHealth("consensus.validators", HealthStatus.DEGRADED, detail)
        return ComponentHealth("consensus.validators", HealthStatus.HEALTHY, detail)

    def _check_ipfs_nodes(self) -> ComponentHealth:
        cluster = self.framework.ipfs
        online = cluster.online_peer_ids()
        total = len(cluster.nodes)
        down = sorted(set(cluster.nodes) - set(online))
        detail = f"{len(online)}/{total} nodes online"
        if not online:
            return ComponentHealth("ipfs.nodes", HealthStatus.UNHEALTHY, detail)
        if down:
            return ComponentHealth(
                "ipfs.nodes", HealthStatus.DEGRADED, detail + f", down: {','.join(down)}"
            )
        return ComponentHealth("ipfs.nodes", HealthStatus.HEALTHY, detail)

    def _check_dht(self) -> ComponentHealth:
        cluster = self.framework.ipfs
        registered = set(cluster.dht.nodes)
        missing = sorted(set(cluster.nodes) - registered)
        detail = f"{len(registered)} peers in routing tables"
        if missing:
            return ComponentHealth(
                "ipfs.dht",
                HealthStatus.DEGRADED,
                detail + f", unregistered: {','.join(missing)}",
            )
        return ComponentHealth("ipfs.dht", HealthStatus.HEALTHY, detail)

    def _check_breakers(self) -> ComponentHealth:
        breakers = self.framework.resilience.breakers()
        open_ = sorted(d for d, b in breakers.items() if b.state is BreakerState.OPEN)
        half = sorted(
            d for d, b in breakers.items() if b.state is BreakerState.HALF_OPEN
        )
        detail = f"{len(breakers)} breakers"
        if open_:
            return ComponentHealth(
                "resilience.breakers",
                HealthStatus.UNHEALTHY,
                detail + f", open: {','.join(open_)}",
            )
        if half:
            return ComponentHealth(
                "resilience.breakers",
                HealthStatus.DEGRADED,
                detail + f", half-open: {','.join(half)}",
            )
        return ComponentHealth("resilience.breakers", HealthStatus.HEALTHY, detail)

    def _check_durability(self) -> ComponentHealth:
        manager = self.framework.durability
        stats = manager.stats
        detail = (
            f"{stats.checkpoints} checkpoints, {stats.recoveries} recoveries, "
            f"{stats.wal_damage} damaged WAL(s)"
        )
        if stats.full_resyncs:
            return ComponentHealth(
                "storage.durability",
                HealthStatus.DEGRADED,
                detail + f", {stats.full_resyncs} full resync(s)",
            )
        return ComponentHealth("storage.durability", HealthStatus.HEALTHY, detail)

    # -- SLIs --------------------------------------------------------------------

    def _raw_counters(self) -> dict[str, float]:
        """The cumulative counters the windowed SLIs are deltas of."""
        framework = self.framework
        peer_valid = sum(p.stats.txs_valid for p in framework.channel.peers.values())
        peer_invalid = sum(p.stats.txs_invalid for p in framework.channel.peers.values())
        out = {
            "txs_valid": float(peer_valid),
            "txs_invalid": float(peer_invalid),
            "txs_total": float(peer_valid + peer_invalid),
            "invokes": float(framework.channel.stats.invokes),
        }
        cluster = getattr(framework.channel.orderer, "cluster", None)
        if cluster is not None:
            stats = cluster.network.stats
            out["net_sent"] = float(stats.sent)
            out["net_delivered"] = float(stats.delivered)
            out["net_dropped"] = float(
                stats.dropped_chaos + stats.dropped_rate + stats.dropped_partition
            )
        manager = getattr(framework, "durability", None)
        if manager is not None:
            out["recoveries"] = float(manager.stats.recoveries)
            out["recovery_replayed_blocks"] = float(manager.stats.replayed_blocks)
            out["recovery_lag_blocks"] = float(manager.stats.lag_blocks)
            out["wal_damage"] = float(manager.stats.wal_damage)
            out["state_transfers"] = float(manager.stats.state_transfers)
        return out

    def _slis(self) -> dict[str, float]:
        slis: dict[str, float] = {}
        rate = self.window.rate("txs_invalid", "txs_total")
        if rate is not None:
            slis["tx_failure_rate"] = rate
        msgs = self.window.rate("net_delivered", "invokes")
        if msgs is not None:
            slis["consensus_msgs_per_tx"] = msgs
        drops = self.window.rate("net_dropped", "net_sent")
        if drops is not None:
            slis["consensus_drop_fraction"] = drops
        if self.replication is not None:
            tracked = self.replication.tracked()
            if tracked:
                healthy = sum(
                    1 for cid in tracked if self.replication.status(cid).healthy
                )
                slis["replication_health"] = healthy / len(tracked)
        if getattr(self.framework, "durability", None) is not None:
            # Recovery SLIs are windowed sums (events in the last N ticks),
            # not rates: a single recovery matters regardless of load.
            slis["recovery_rate"] = self.window.sum("recoveries")
            slis["recovery_replay_lag"] = self.window.sum("recovery_lag_blocks")
            slis["recovery_time_blocks"] = self.window.sum(
                "recovery_replayed_blocks"
            ) + self.window.sum("recovery_lag_blocks")
            slis["wal_damage_rate"] = self.window.sum("wal_damage")
        self._latency_slis(slis)
        return slis

    def _latency_slis(self, slis: dict[str, float]) -> None:
        """Commit-latency quantiles off the span histograms (wall-clock —
        present only when tracing feeds this registry; never alerted on
        in deterministic scenarios)."""
        family = self.registry._histograms.get("span_seconds")
        if not family:
            return
        for labels, hist in family.items():
            if dict(labels).get("name") == "fabric.invoke" and hist.n:
                slis["commit_latency_p50"] = hist.quantile(0.5)
                slis["commit_latency_p95"] = hist.quantile(0.95)
                slis["commit_latency_p99"] = hist.quantile(0.99)
