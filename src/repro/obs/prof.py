"""Deterministic cost-center profiler for the hot path.

``pipeline_breakdown()`` and ``repro critpath`` attribute wall time to
*stages* (spans) and nodes; this module attributes it to *cost centers* —
``crypto.sign``, ``serialize.canonical_json``, ``lock.wait`` — below the
span level, so "the fixed overhead is dominated by signing/serialization"
becomes a measured table instead of a guess.

Design mirrors :mod:`repro.obs.tracer`:

* Disabled by default. :func:`profiled` performs one global read and
  returns a shared no-op probe when no profiler is installed — the hot
  path allocates nothing and takes no locks.
* :func:`enable_profiler` installs a process-global :class:`Profiler`;
  every ``profiled(...)`` block then records a *frame*: exact inclusive
  and exclusive (self) time, call count, and optional byte count, keyed
  by ``(node, center)``. Frames nest — a ``crypto.hash`` frame inside a
  ``crypto.merkle`` frame subtracts from the parent's exclusive time, so
  exclusive times sum without double counting.
* Frames attach to the enclosing tracer span (when tracing is on), which
  is how :func:`repro.obs.breakdown.pipeline_breakdown` decomposes each
  pipeline stage into cost centers, and how :func:`invoke_coverage`
  checks what fraction of ``fabric.invoke`` wall time the named centers
  explain.
* The node label is resolved from the enclosing span chain exactly like
  the critical-path extractor: the nearest span carrying a ``node`` /
  ``peer`` / ``replica`` attr (or an ``orderer`` attr) names the node;
  everything else is ``client`` work.

Lock contention and queue waits are first-class rows: ``lock.wait`` and
``queue.wait`` centers aggregate across all locks/queues, with per-name
detail kept separately (:class:`LockStat` / :class:`QueueStat`) and — when
a registry is attached — exported as ``lock_wait_seconds_total{name}``,
``lock_hold_seconds_total{name}`` and ``queue_wait_seconds_total{queue}``
counters plus latency histograms. Lock *hold* time is metrics-only: a
hold interval contains whatever ran under the lock, so a profile row for
it would double-count.

Determinism: :meth:`Profiler.fingerprint` hashes **call counts only**
(never seconds, never bytes — payload byte lengths can embed wall-clock
timestamps), so two runs of a seeded scenario produce the same
fingerprint even though their timings differ. The fingerprint is built
with :mod:`json` directly rather than ``canonical_json`` — the latter is
itself a profiled center and must not record while being summarized.

Memory: per-span center tables are kept for every span that contained at
least one frame and are not evicted (the tracer ring bounds live spans;
a scenario run keeps this in the tens of thousands of small dicts).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from functools import wraps
from typing import Any, Callable, Iterator

from repro.obs.span import Span
from repro.obs.tracer import LATENCY_BUCKETS, Tracer, current_span

__all__ = [
    "CenterStat",
    "LockStat",
    "QueueStat",
    "ProfileReport",
    "Profiler",
    "profiled",
    "profiled_call",
    "enable_profiler",
    "disable_profiler",
    "get_profiler",
    "set_profiler",
    "profiling",
    "invoke_coverage",
    "collapsed_stacks",
    "write_collapsed",
    "chrome_trace_tree",
    "write_chrome_trace_tree",
    "run_queued",
]

# Synthetic centers for stall accounting.
LOCK_WAIT = "lock.wait"
QUEUE_WAIT = "queue.wait"

# Node label for frames recorded outside any node-attributed span.
CLIENT_NODE = "client"

# The innermost open frame in this execution context (mirrors the
# tracer's ``_current_span``; worker tasks sever it — see run_queued).
_current_frame: ContextVar["_Frame | None"] = ContextVar(
    "repro_obs_prof_frame", default=None
)


class _NoopProbe:
    """Shared do-nothing probe returned by :func:`profiled` when disabled.

    ``__slots__ = ()`` and a module-level singleton keep the disabled hot
    path allocation-free, exactly like the tracer's ``NOOP_SPAN``.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopProbe":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add_bytes(self, n: int) -> "_NoopProbe":
        return self


_NOOP = _NoopProbe()


class _Frame:
    """One live ``profiled(...)`` region; records itself on exit."""

    __slots__ = ("center", "n_bytes", "path", "child_s", "start_s", "_profiler", "_token")

    def __init__(self, profiler: "Profiler", center: str, n_bytes: int) -> None:
        self._profiler = profiler
        self.center = center
        self.n_bytes = n_bytes
        self.child_s = 0.0
        self.path: tuple[str, ...] = ()
        self.start_s = 0.0
        self._token = None

    def add_bytes(self, n: int) -> "_Frame":
        self.n_bytes += n
        return self

    def __enter__(self) -> "_Frame":
        parent = _current_frame.get()
        self.path = parent.path + (self.center,) if parent is not None else (self.center,)
        self._token = _current_frame.set(self)
        self.start_s = self._profiler.clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        profiler = self._profiler
        inclusive = profiler.clock() - self.start_s
        _current_frame.reset(self._token)
        parent = _current_frame.get()
        if parent is not None:
            parent.child_s += inclusive
        exclusive = inclusive - self.child_s
        if exclusive < 0.0:
            exclusive = 0.0
        profiler._record(self.center, self.path, inclusive, exclusive, self.n_bytes)
        return False


@dataclass(frozen=True)
class CenterStat:
    """Aggregated totals for one cost center on one node."""

    node: str
    center: str
    calls: int
    inclusive_s: float
    exclusive_s: float
    n_bytes: int

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "center": self.center,
            "calls": self.calls,
            "inclusive_s": self.inclusive_s,
            "exclusive_s": self.exclusive_s,
            "n_bytes": self.n_bytes,
        }


@dataclass(frozen=True)
class LockStat:
    """Contention totals for one named lock (made by ``make_lock``)."""

    name: str
    acquires: int
    wait_s: float
    hold_s: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "acquires": self.acquires,
            "wait_s": self.wait_s,
            "hold_s": self.hold_s,
        }


@dataclass(frozen=True)
class QueueStat:
    """Submit→start delay totals for one named work queue."""

    name: str
    tasks: int
    wait_s: float

    def to_dict(self) -> dict:
        return {"name": self.name, "tasks": self.tasks, "wait_s": self.wait_s}


@dataclass(frozen=True)
class ProfileReport:
    """Snapshot of a profiler: centers ranked by exclusive time."""

    centers: tuple[CenterStat, ...]
    locks: tuple[LockStat, ...]
    queues: tuple[QueueStat, ...]
    fingerprint: str

    @property
    def total_exclusive_s(self) -> float:
        return sum(c.exclusive_s for c in self.centers)

    def top(self, n: int = 20) -> tuple[CenterStat, ...]:
        return self.centers[:n]

    def render_lines(self, top_n: int = 20) -> list[str]:
        """Human tables: top centers, then lock and queue detail."""
        from repro.bench.report import format_table

        total = self.total_exclusive_s or 1.0
        rows = [
            [
                stat.node,
                stat.center,
                stat.calls,
                f"{stat.exclusive_s * 1e3:.3f}",
                f"{stat.inclusive_s * 1e3:.3f}",
                stat.n_bytes,
                f"{stat.exclusive_s / total * 100:.1f}%",
            ]
            for stat in self.top(top_n)
        ]
        lines = format_table(
            f"cost centers (top {min(top_n, len(self.centers))} of {len(self.centers)} by exclusive time)",
            ["node", "center", "calls", "excl ms", "incl ms", "bytes", "share"],
            rows,
        ).splitlines()
        if self.locks:
            lines.append("")
            lines.extend(
                format_table(
                    "lock contention",
                    ["lock", "acquires", "wait ms", "hold ms"],
                    [
                        [s.name, s.acquires, f"{s.wait_s * 1e3:.3f}", f"{s.hold_s * 1e3:.3f}"]
                        for s in self.locks
                    ],
                ).splitlines()
            )
        if self.queues:
            lines.append("")
            lines.extend(
                format_table(
                    "queue waits",
                    ["queue", "tasks", "wait ms"],
                    [[s.name, s.tasks, f"{s.wait_s * 1e3:.3f}"] for s in self.queues],
                ).splitlines()
            )
        return lines

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "centers": [c.to_dict() for c in self.centers],
            "locks": [s.to_dict() for s in self.locks],
            "queues": [s.to_dict() for s in self.queues],
        }

    def series(self) -> dict[str, list[float]]:
        """v2 BENCH envelope series: per-center calls and exclusive time.

        Aggregated across nodes. ``<center>_calls`` is seed-deterministic
        and gates EXACT under ``repro bench-diff``'s classifier;
        ``<center>_excl_s`` ends in ``_s`` and gates at the wall-time
        tolerance. Byte counts are deliberately excluded: payloads embed
        wall-clock timestamps, so their serialized lengths are not stable
        run to run.
        """
        calls: dict[str, int] = {}
        excl: dict[str, float] = {}
        for stat in self.centers:
            calls[stat.center] = calls.get(stat.center, 0) + stat.calls
            excl[stat.center] = excl.get(stat.center, 0.0) + stat.exclusive_s
        series: dict[str, list[float]] = {}
        for center in sorted(calls):
            series[f"{center}_calls"] = [float(calls[center])]
            series[f"{center}_excl_s"] = [excl[center]]
        return series


class Profiler:
    """Accumulates cost-center frames; install via :func:`enable_profiler`.

    Internal state lives behind a *raw* ``threading.Lock`` on purpose:
    ``make_lock`` routes its contention telemetry here, so the profiler
    must never route its own locking back through ``make_lock``.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        registry: Any | None = None,
    ) -> None:
        self.clock = clock
        self.registry = registry
        self._mutex = threading.Lock()
        # (node, center) -> [calls, inclusive_s, exclusive_s, n_bytes]
        self._centers: dict[tuple[str, str], list] = {}
        # (node, path) -> [calls, exclusive_s] — the cost-center tree.
        self._paths: dict[tuple[str, tuple[str, ...]], list] = {}
        # span_id -> center -> [calls, exclusive_s]
        self._span_centers: dict[str, dict[str, list]] = {}
        # lock name -> [acquires, wait_s, hold_s]
        self._locks: dict[str, list] = {}
        # queue name -> [tasks, wait_s]
        self._queues: dict[str, list] = {}
        # span_id -> resolved node label (walk the parent chain once).
        self._span_nodes: dict[str, str] = {}

    # -- recording -----------------------------------------------------------

    def _node_for(self, span: Span) -> str:
        """Node owning ``span``: nearest enclosing node/peer/replica attr.

        Mirrors the critical-path extractor's attribution. Walks the
        *live* span chain via the contextvar tokens, so it must only be
        called while the span is still open (frame exits always are).
        """
        cached = self._span_nodes.get(span.span_id)
        if cached is not None:
            return cached
        node = CLIENT_NODE
        cur: Any = span
        while isinstance(cur, Span):
            attrs = cur.attrs
            label = attrs.get("node") or attrs.get("peer") or attrs.get("replica")
            if label is not None:
                node = str(label)
                break
            if "orderer" in attrs:
                node = "orderer"
                break
            token = cur._token
            if token is None:
                break
            cur = token.old_value  # the span this one stacked on
        self._span_nodes[span.span_id] = node
        return node

    def _record(
        self,
        center: str,
        path: tuple[str, ...],
        inclusive_s: float,
        exclusive_s: float,
        n_bytes: int,
    ) -> None:
        span = current_span()
        if isinstance(span, Span):
            span_id: str | None = span.span_id
            node = self._node_for(span)
        else:
            span_id = None
            node = CLIENT_NODE
        with self._mutex:
            acc = self._centers.setdefault((node, center), [0, 0.0, 0.0, 0])
            acc[0] += 1
            acc[1] += inclusive_s
            acc[2] += exclusive_s
            acc[3] += n_bytes
            pacc = self._paths.setdefault((node, path), [0, 0.0])
            pacc[0] += 1
            pacc[1] += exclusive_s
            if span_id is not None:
                sacc = self._span_centers.setdefault(span_id, {}).setdefault(
                    center, [0, 0.0]
                )
                sacc[0] += 1
                sacc[1] += exclusive_s

    def _record_leaf(self, center: str, seconds: float) -> None:
        """Record a completed leaf region with no live frame of its own.

        Used for in-thread stalls (lock waits): the elapsed time already
        sits inside the enclosing frame's window, so it is charged as a
        child to keep the parent's exclusive time honest.
        """
        parent = _current_frame.get()
        if parent is not None:
            parent.child_s += seconds
            path = parent.path + (center,)
        else:
            path = (center,)
        self._record(center, path, seconds, seconds, 0)

    def record_lock_wait(self, name: str, seconds: float) -> None:
        self._record_leaf(LOCK_WAIT, seconds)
        with self._mutex:
            acc = self._locks.setdefault(name, [0, 0.0, 0.0])
            acc[0] += 1
            acc[1] += seconds
        if self.registry is not None:
            self.registry.counter("lock_wait_seconds_total", {"name": name}).inc(seconds)
            self.registry.histogram(
                "lock_wait_seconds", LATENCY_BUCKETS, labels={"name": name}
            ).observe(seconds)

    def record_lock_hold(self, name: str, seconds: float) -> None:
        # Metrics + per-lock detail only: the hold window contains the
        # work done under the lock, so a profile row would double-count.
        with self._mutex:
            acc = self._locks.setdefault(name, [0, 0.0, 0.0])
            acc[2] += seconds
        if self.registry is not None:
            self.registry.counter("lock_hold_seconds_total", {"name": name}).inc(seconds)
            self.registry.histogram(
                "lock_hold_seconds", LATENCY_BUCKETS, labels={"name": name}
            ).observe(seconds)

    def record_queue_wait(self, name: str, seconds: float) -> None:
        """Charge one task's submit→start delay to the ``queue.wait`` center.

        Called on the worker thread after :func:`run_queued` severed the
        caller's frame, so it never mutates another thread's open frame.
        """
        if seconds < 0.0:
            seconds = 0.0
        self._record(QUEUE_WAIT, (QUEUE_WAIT,), seconds, seconds, 0)
        with self._mutex:
            acc = self._queues.setdefault(name, [0, 0.0])
            acc[0] += 1
            acc[1] += seconds
        if self.registry is not None:
            self.registry.counter("queue_wait_seconds_total", {"queue": name}).inc(seconds)
            self.registry.histogram(
                "queue_wait_seconds", LATENCY_BUCKETS, labels={"queue": name}
            ).observe(seconds)

    # -- snapshots -----------------------------------------------------------

    def center_stats(self) -> list[CenterStat]:
        with self._mutex:
            return [
                CenterStat(node, center, acc[0], acc[1], acc[2], acc[3])
                for (node, center), acc in self._centers.items()
            ]

    def path_stats(self) -> dict[tuple[str, tuple[str, ...]], tuple[int, float]]:
        with self._mutex:
            return {key: (acc[0], acc[1]) for key, acc in self._paths.items()}

    def span_center_seconds(self) -> dict[str, dict[str, tuple[int, float]]]:
        """``span_id -> center -> (calls, exclusive_s)`` for breakdowns."""
        with self._mutex:
            return {
                span_id: {c: (a[0], a[1]) for c, a in centers.items()}
                for span_id, centers in self._span_centers.items()
            }

    def lock_stats(self) -> list[LockStat]:
        with self._mutex:
            return [
                LockStat(name, acc[0], acc[1], acc[2])
                for name, acc in sorted(self._locks.items())
            ]

    def queue_stats(self) -> list[QueueStat]:
        with self._mutex:
            return [
                QueueStat(name, acc[0], acc[1])
                for name, acc in sorted(self._queues.items())
            ]

    def fingerprint(self) -> str:
        """sha256 over call counts only — seed-deterministic by design."""
        with self._mutex:
            doc = {
                "centers": {
                    f"{node}|{center}": acc[0]
                    for (node, center), acc in self._centers.items()
                },
                "locks": {name: acc[0] for name, acc in self._locks.items()},
                "queues": {name: acc[0] for name, acc in self._queues.items()},
            }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def report(self) -> ProfileReport:
        centers = sorted(
            self.center_stats(), key=lambda s: (-s.exclusive_s, s.node, s.center)
        )
        return ProfileReport(
            centers=tuple(centers),
            locks=tuple(self.lock_stats()),
            queues=tuple(self.queue_stats()),
            fingerprint=self.fingerprint(),
        )


# ---------------------------------------------------------------------------
# Process-global profiler (mirrors tracer._GLOBAL)
# ---------------------------------------------------------------------------

_PROFILER: Profiler | None = None


def profiled(center: str, n_bytes: int = 0) -> Any:
    """Open a cost-center frame; no-op (shared probe) when disabled.

    Usage::

        with profiled("serialize.canonical_json") as pf:
            data = ...
            pf.add_bytes(len(data))

    The returned probe supports ``add_bytes`` in both modes, so call
    sites never branch on whether profiling is enabled.
    """
    profiler = _PROFILER
    if profiler is None:
        return _NOOP
    return _Frame(profiler, center, n_bytes)


def profiled_call(center: str) -> Callable:
    """Decorator form; checks enablement at *call* time, so functions
    decorated at import (profiler off) still profile once enabled."""

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            profiler = _PROFILER
            if profiler is None:
                return fn(*args, **kwargs)
            with _Frame(profiler, center, 0):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def get_profiler() -> Profiler | None:
    return _PROFILER


def set_profiler(profiler: Profiler | None) -> None:
    global _PROFILER
    _PROFILER = profiler


def enable_profiler(
    registry: Any | None = None, clock: Callable[[], float] = time.perf_counter
) -> Profiler:
    profiler = Profiler(clock=clock, registry=registry)
    set_profiler(profiler)
    return profiler


def disable_profiler() -> None:
    set_profiler(None)


@contextmanager
def profiling(
    registry: Any | None = None, clock: Callable[[], float] = time.perf_counter
) -> Iterator[Profiler]:
    """Scoped enable/disable, restoring whatever was installed before."""
    previous = _PROFILER
    profiler = enable_profiler(registry=registry, clock=clock)
    try:
        yield profiler
    finally:
        set_profiler(previous)


def run_queued(queue: str, submitted_s: float, fn: Callable, item: Any) -> Any:
    """Run one pooled task, charging its submit→start delay to ``queue``.

    ``parallel_map`` submits workers with this wrapper when profiling is
    on. It runs inside the caller's *copied* context (spans propagate as
    before) but severs the current frame first: a worker must never add
    child time to a frame that is still open on the submitting thread.
    """
    token = _current_frame.set(None)
    try:
        profiler = _PROFILER
        if profiler is not None:
            profiler.record_queue_wait(queue, profiler.clock() - submitted_s)
        return fn(item)
    finally:
        _current_frame.reset(token)


# ---------------------------------------------------------------------------
# Coverage & export
# ---------------------------------------------------------------------------


def invoke_coverage(
    tracer: Tracer | None,
    profiler: Profiler | None = None,
    root_name: str = "fabric.invoke",
) -> float:
    """Fraction of ``root_name`` wall time explained by cost centers.

    For every finished root span, sums the exclusive seconds of all
    frames attached to the span or any of its execution-order
    descendants (which is where remote consensus/commit work lands),
    divided by total root wall time. This is the ≥ 0.9 acceptance
    number ``repro prof --min-coverage`` gates on.
    """
    profiler = profiler if profiler is not None else _PROFILER
    if tracer is None or profiler is None:
        return 0.0
    span_centers = profiler.span_center_seconds()
    wall = 0.0
    attributed = 0.0
    for root in tracer.spans(root_name):
        if not root.finished:
            continue
        wall += root.duration_s
        for span in [root, *tracer.descendants(root, view="exec")]:
            for _calls, seconds in span_centers.get(span.span_id, {}).values():
                attributed += seconds
    if wall <= 0.0:
        return 0.0
    return attributed / wall


def collapsed_stacks(profiler: Profiler | None = None) -> list[str]:
    """flamegraph.pl-compatible lines: ``node;center;... <microseconds>``.

    Weights are exclusive time in integer microseconds, one line per
    distinct (node, frame path); feed straight into ``flamegraph.pl``.
    """
    profiler = profiler if profiler is not None else _PROFILER
    if profiler is None:
        return []
    lines = []
    for (node, path), (_calls, excl_s) in sorted(profiler.path_stats().items()):
        frames = ";".join((node,) + path)
        lines.append(f"{frames} {max(0, round(excl_s * 1e6))}")
    return lines


def write_collapsed(path: str, profiler: Profiler | None = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(collapsed_stacks(profiler)) + "\n")


def chrome_trace_tree(profiler: Profiler | None = None) -> dict:
    """Chrome ``traceEvents`` view of the aggregated cost-center tree.

    One synthetic process per node, one ``X`` event per frame path with
    duration = aggregate inclusive time and children laid out
    sequentially from the parent's start. Timestamps are synthetic tree
    coordinates (this is an aggregate profile, not a timeline); load in
    ``chrome://tracing`` / Perfetto to browse nesting visually.
    """
    events: list[dict] = []
    profiler = profiler if profiler is not None else _PROFILER
    if profiler is None:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    stats = profiler.path_stats()
    nodes = sorted({node for node, _path in stats})
    for pid, node in enumerate(nodes, start=1):
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": {"name": node}}
        )
        node_paths = {path: v for (n, path), v in stats.items() if n == node}
        # Inclusive µs per path = own exclusive + all recorded extensions.
        incl: dict[tuple[str, ...], float] = {
            path: excl for path, (_c, excl) in node_paths.items()
        }
        for path in list(incl):
            for depth in range(1, len(path)):
                incl.setdefault(path[:depth], 0.0)
        for path in sorted(incl, key=len, reverse=True):
            if len(path) > 1:
                incl[path[:-1]] += incl[path]
        children: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
        roots: list[tuple[str, ...]] = []
        for path in sorted(incl):
            if len(path) == 1:
                roots.append(path)
            else:
                children.setdefault(path[:-1], []).append(path)

        def emit(path: tuple[str, ...], ts: int, pid: int = pid) -> int:
            dur = max(1, round(incl[path] * 1e6))
            calls = node_paths.get(path, (0, 0.0))[0]
            events.append(
                {
                    "name": path[-1],
                    "cat": "prof",
                    "ph": "X",
                    "pid": pid,
                    "tid": 1,
                    "ts": ts,
                    "dur": dur,
                    "args": {"calls": calls, "path": ";".join(path)},
                }
            )
            cursor = ts
            for child in children.get(path, ()):
                cursor += emit(child, cursor)
            return dur

        cursor = 0
        for root in roots:
            cursor += emit(root, cursor)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace_tree(path: str, profiler: Profiler | None = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace_tree(profiler), fh, indent=1)
