"""Critical-path analysis over the cross-node span DAG of one transaction.

With trace-context propagation (PR 6), a committed transaction's spans form
one causal DAG spanning the client, the endorsing peers, the orderer, and
the BFT validators: message deliveries are *remote* children of the span
that sent the message, so PBFT rounds and block delivery hang off their
causal senders rather than off whatever ran the event loop.

:func:`critical_path` walks that DAG backwards from the end of the
transaction's root span and extracts the longest dependency chain: at every
point in time, exactly one span is "blamed" — the deepest causal frame that
was still running — so the resulting segments *partition* the end-to-end
wall time exactly. Each segment is attributed to ``{stage, node,
msg_kind}``, which is the target list ROADMAP item 3 (the ~4–5 ms fixed
blockchain overhead dominating Fig. 5) needs: not "consensus is slow" but
"prepare-message delivery on validator-2 accounts for X µs of the path".

Exports:

* :func:`critical_path` — the analysis, as a typed :class:`CriticalPath`;
* :func:`chrome_trace_by_node` — Chrome ``trace_event`` JSON with one
  *process row per node* (metadata ``process_name`` events), so the
  cross-node picture renders spatially in chrome://tracing / Perfetto;
* ``repro critpath <txid>`` in the CLI drives both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ObservabilityError
from repro.obs.breakdown import STAGE_LABELS
from repro.obs.span import Span
from repro.obs.tracer import Tracer, get_tracer

# Fallback node for spans with no node-ish attribute anywhere up the chain:
# the client process that drives submit/retrieve.
CLIENT_NODE = "client"


def span_node(span: Span, by_id: dict[str, Span]) -> str:
    """The node a span executed on: nearest self-or-ancestor node attribute.

    Spans carry their location as attributes today — ``net.deliver`` sets
    ``node`` (the destination), peer spans set ``peer``, BFT replicas set
    ``replica``, ordering spans set ``orderer`` — so attribution is a walk
    up the parent chain to the nearest location marker.
    """
    cur: Span | None = span
    while cur is not None:
        attrs = cur.attrs
        if "node" in attrs:
            return str(attrs["node"])
        if "peer" in attrs:
            return str(attrs["peer"])
        if "replica" in attrs:
            return str(attrs["replica"])
        if "orderer" in attrs:
            return "orderer"
        cur = by_id.get(cur.parent_id) if cur.parent_id is not None else None
    return CLIENT_NODE


@dataclass(frozen=True)
class CritSegment:
    """One piece of the critical path: ``span`` was the blamed frame on
    ``[start_s, end_s)``."""

    span_name: str
    span_id: str
    stage: str
    node: str
    msg_kind: str  # message kind for net.deliver frames, "" otherwise
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "span_name": self.span_name,
            "span_id": self.span_id,
            "stage": self.stage,
            "node": self.node,
            "msg_kind": self.msg_kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class StageRow:
    """Aggregated path time for one ``{stage, node, msg_kind}`` bucket."""

    stage: str
    node: str
    msg_kind: str
    count: int
    total_s: float
    share: float  # of the end-to-end wall time


@dataclass(frozen=True)
class CriticalPath:
    tx_id: str
    trace_id: str
    root_name: str
    wall_s: float                     # end-to-end duration of the root span
    segments: tuple[CritSegment, ...]  # time-ordered, partition [root.start, root.end]
    nodes: tuple[str, ...]            # distinct nodes anywhere on the tx's DAG
    path_nodes: tuple[str, ...]       # distinct nodes on the critical path itself

    @property
    def attributed_s(self) -> float:
        return sum(seg.duration_s for seg in self.segments)

    def by_stage(self) -> list[StageRow]:
        """Path time grouped by ``{stage, node, msg_kind}``, largest first."""
        acc: dict[tuple[str, str, str], list[float]] = {}
        for seg in self.segments:
            acc.setdefault((seg.stage, seg.node, seg.msg_kind), []).append(seg.duration_s)
        rows = [
            StageRow(
                stage=stage,
                node=node,
                msg_kind=kind,
                count=len(times),
                total_s=sum(times),
                share=(sum(times) / self.wall_s) if self.wall_s > 0 else 0.0,
            )
            for (stage, node, kind), times in acc.items()
        ]
        rows.sort(key=lambda r: (-r.total_s, r.stage, r.node, r.msg_kind))
        return rows

    def to_dict(self) -> dict:
        return {
            "tx_id": self.tx_id,
            "trace_id": self.trace_id,
            "root_name": self.root_name,
            "wall_s": self.wall_s,
            "attributed_s": self.attributed_s,
            "nodes": list(self.nodes),
            "path_nodes": list(self.path_nodes),
            "segments": [seg.to_dict() for seg in self.segments],
            "by_stage": [
                {
                    "stage": r.stage, "node": r.node, "msg_kind": r.msg_kind,
                    "count": r.count, "total_s": r.total_s, "share": r.share,
                }
                for r in self.by_stage()
            ],
        }

    def render_lines(self) -> list[str]:
        from repro.bench.report import format_table

        header = (
            f"critical path of tx {self.tx_id[:16]}…  "
            f"({self.root_name}, {self.wall_s * 1e3:.3f} ms wall, "
            f"{len(self.segments)} segments)"
        )
        dag = (
            f"causal DAG spans {len(self.nodes)} node(s): {', '.join(self.nodes)}; "
            f"path visits {len(self.path_nodes)}: {', '.join(self.path_nodes)}"
        )
        rows = [
            [r.stage, r.node, r.msg_kind or "-", r.count,
             f"{r.total_s * 1e3:.3f}", f"{r.share * 100:.1f}%"]
            for r in self.by_stage()
        ]
        rows.append(
            ["TOTAL (wall)", "", "", len(self.segments),
             f"{self.attributed_s * 1e3:.3f}", "100.0%"]
        )
        table = format_table(
            "critical-path attribution by {stage, node, msg_kind}",
            ["stage", "node", "msg", "n", "total ms", "share"],
            rows,
        )
        return [header, dag, "", *table.splitlines()]


# ---------------------------------------------------------------------------
# DAG location + walk
# ---------------------------------------------------------------------------


def tx_anchor(tracer: Tracer, tx_id: str | None) -> Span:
    """The ``fabric.invoke`` span carrying ``tx_id`` (prefix match), or the
    latest one when ``tx_id`` is None/"latest"."""
    invokes = [s for s in tracer.finished if s.name == "fabric.invoke" and s.finished]
    if not invokes:
        raise ObservabilityError("no fabric.invoke spans in the trace — nothing committed?")
    if tx_id is None or tx_id == "latest":
        return invokes[-1]
    matches = [s for s in invokes if str(s.attrs.get("tx_id", "")).startswith(tx_id)]
    if not matches:
        known = ", ".join(str(s.attrs.get("tx_id", "?"))[:16] for s in invokes[-5:])
        raise ObservabilityError(
            f"no committed tx matching {tx_id!r}; recent tx ids: {known}"
        )
    if len(matches) > 1:
        raise ObservabilityError(f"tx id prefix {tx_id!r} is ambiguous ({len(matches)} matches)")
    return matches[0]


def _trace_root(anchor: Span, by_id: dict[str, Span]) -> Span:
    """Walk to the topmost *retained* ancestor of the anchor span."""
    cur = anchor
    while cur.parent_id is not None and cur.parent_id in by_id:
        cur = by_id[cur.parent_id]
    return cur


def _segment(span: Span, lo: float, hi: float, by_id: dict[str, Span]) -> CritSegment:
    return CritSegment(
        span_name=span.name,
        span_id=span.span_id,
        stage=STAGE_LABELS.get(span.name, span.name),
        node=span_node(span, by_id),
        msg_kind=str(span.attrs.get("kind", "")) if span.name == "net.deliver" else "",
        start_s=lo,
        end_s=hi,
    )


def _walk(
    span: Span,
    lo: float,
    hi: float,
    children: dict[str, list[Span]],
    by_id: dict[str, Span],
    segs: list[CritSegment],
) -> None:
    """Blame ``span`` for ``[lo, hi]`` except where a causal child was the
    last thing to finish — recurse into that child, then keep scanning
    earlier. The emitted segments partition ``[lo, hi]`` exactly."""
    t = hi
    kids = sorted(
        (c for c in children.get(span.span_id, ()) if lo < c.end_s <= t),
        key=lambda c: (c.end_s, c.start_s, c.span_id),
    )
    while kids and t > lo:
        last = kids.pop()
        if last.end_s < t:
            segs.append(_segment(span, last.end_s, t, by_id))
        _walk(last, max(last.start_s, lo), last.end_s, children, by_id, segs)
        t = max(last.start_s, lo)
        kids = [c for c in kids if c.end_s <= t]
    if t > lo:
        segs.append(_segment(span, lo, t, by_id))


def critical_path(tracer: Tracer | None = None, tx_id: str | None = None) -> CriticalPath:
    """Extract the cross-node critical path of one committed transaction.

    ``tx_id`` selects the transaction (prefix match on the ``fabric.invoke``
    span's ``tx_id`` attribute; None or ``"latest"`` takes the most recent).
    The walk runs over the anchor's whole trace — the client root when
    retained — and its segments partition the root's duration, so the
    attribution sums to the end-to-end time by construction.
    """
    tracer = tracer or get_tracer()
    if tracer is None:
        raise ObservabilityError("tracing is not enabled — no spans to analyze")
    anchor = tx_anchor(tracer, tx_id)
    trace_spans = [
        s for s in tracer.finished if s.trace_id == anchor.trace_id and s.finished
    ]
    by_id = {s.span_id: s for s in trace_spans}
    root = _trace_root(anchor, by_id)
    children: dict[str, list[Span]] = {}
    for s in trace_spans:
        if s.parent_id is not None:
            children.setdefault(s.parent_id, []).append(s)
    segs: list[CritSegment] = []
    _walk(root, root.start_s, root.end_s, children, by_id, segs)
    segs.sort(key=lambda seg: seg.start_s)
    nodes = sorted({span_node(s, by_id) for s in trace_spans})
    path_nodes = sorted({seg.node for seg in segs})
    return CriticalPath(
        tx_id=str(anchor.attrs.get("tx_id", "")),
        trace_id=root.trace_id,
        root_name=root.name,
        wall_s=root.duration_s,
        segments=tuple(segs),
        nodes=tuple(nodes),
        path_nodes=tuple(path_nodes),
    )


# ---------------------------------------------------------------------------
# Chrome trace with node = process row
# ---------------------------------------------------------------------------


def chrome_trace_by_node(tracer: Tracer | None = None, trace_id: str | None = None) -> dict:
    """Chrome ``trace_event`` JSON with one *process* row per node.

    Unlike :func:`repro.obs.export.chrome_trace` (one thread lane per
    trace), this view maps each node — client, peers, orderer, validators —
    to its own ``pid`` with a ``process_name`` metadata record, so the
    cross-node hops of a transaction render as a swimlane diagram.
    ``trace_id`` restricts the export to one transaction's DAG.
    """
    tracer = tracer or get_tracer()
    spans = list(tracer.finished) if tracer is not None else []
    spans = [
        s for s in spans
        if s.finished and s.end_s is not None
        and (trace_id is None or s.trace_id == trace_id)
    ]
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms",
                "otherData": {"producer": "repro.obs.critpath"}}
    by_id = {s.span_id: s for s in spans}
    t0 = min(s.start_s for s in spans)
    node_of = {s.span_id: span_node(s, by_id) for s in spans}
    pids = {node: i + 1 for i, node in enumerate(sorted(set(node_of.values())))}
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": node}}
        for node, pid in pids.items()
    ]
    lanes: dict[tuple[str, str], int] = {}
    for span in sorted(spans, key=lambda s: s.start_s):
        node = node_of[span.span_id]
        lane = lanes.setdefault((node, span.trace_id), len(
            [k for k in lanes if k[0] == node]) + 1)
        args = {str(k): v for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.remote:
            args["remote"] = True
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start_s - t0) * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": pids[node],
                "tid": lane,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.critpath"},
    }


def write_chrome_trace_by_node(
    path: str, tracer: Tracer | None = None, trace_id: str | None = None,
    indent: int | None = None,
) -> str:
    import json

    with open(path, "w") as fh:
        fh.write(json.dumps(chrome_trace_by_node(tracer, trace_id), indent=indent))
    return path
