"""Exporters: Prometheus text, JSON snapshots, and Chrome trace_event.

Three formats, one per audience:

* :func:`render_prometheus` — scrape-style text for dashboards (the
  Grafana surface of the paper's testbed);
* :func:`metrics_json` / :func:`spans_json` — machine-readable snapshots
  for benches and cross-PR trend tracking;
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format, so a stored/retrieved item's journey through
  endorse → order → validate → commit → IPFS renders as a flame chart in
  ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import (  # noqa: F401  (escape re-exported: it is part of the exposition contract)
    MetricsRegistry,
    escape_label_value,
    get_registry,
)
from repro.obs.span import Span
from repro.obs.tracer import Tracer, get_tracer


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Prometheus text exposition of the registry.

    Label values pass through :func:`escape_label_value`, so backslashes,
    double quotes, and newlines in dynamic labels (peer names, error
    strings) cannot corrupt the line-oriented format.
    """
    return (registry or get_registry()).render()


def metrics_json(registry: MetricsRegistry | None = None, indent: int | None = None) -> str:
    return json.dumps((registry or get_registry()).snapshot(), indent=indent, sort_keys=True)


def spans_json(tracer: Tracer | None = None, indent: int | None = None) -> str:
    tracer = tracer or get_tracer()
    spans = tracer.finished if tracer is not None else []
    return json.dumps([s.to_dict() for s in spans], indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def chrome_trace_events(spans: Iterable[Span]) -> list[dict]:
    """Spans as Chrome 'complete' (``ph: "X"``) events.

    Timestamps are microseconds relative to the earliest span, one ``tid``
    (lane) per trace so concurrent pipelines render side by side, and span
    attributes plus lineage land in ``args`` for the inspector pane.
    """
    spans = [s for s in spans if s.finished and s.end_s is not None]
    if not spans:
        return []
    t0 = min(s.start_s for s in spans)
    tids: dict[str, int] = {}
    events: list[dict] = []
    for span in sorted(spans, key=lambda s: s.start_s):
        tid = tids.setdefault(span.trace_id, len(tids) + 1)
        args = {str(k): v for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start_s - t0) * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    return events


def chrome_trace(tracer: Tracer | None = None) -> dict:
    """The full ``chrome://tracing`` JSON object for a tracer's spans."""
    tracer = tracer or get_tracer()
    spans = tracer.finished if tracer is not None else []
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(path: str, tracer: Tracer | None = None, indent: int | None = None) -> str:
    text = json.dumps(chrome_trace(tracer), indent=indent)
    with open(path, "w") as fh:
        fh.write(text)
    return path
