"""Spans: the unit of the tracing layer.

A :class:`Span` is one timed, named region of the pipeline — an endorsement,
a consensus round, an IPFS add — with attributes, a parent link, and an
error status captured from any exception that escaped the region. Spans are
context managers handed out by :class:`repro.obs.Tracer`; user code never
constructs them directly.

Identifiers are deterministic (a process-wide counter, not random), so
traces of the same run are stable and testable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.tracer import Tracer

_ids = itertools.count(1)


def next_span_id() -> str:
    return f"{next(_ids):08x}"


@dataclass(frozen=True)
class SpanContext:
    """The injectable/extractable identity of a span (W3C traceparent style).

    Carried across process boundaries — in this codebase, stamped onto
    :class:`repro.net.message.Message` by ``SimNetwork.send`` — so a span
    opened on the receiving node can join the sender's trace as a *remote*
    child instead of starting a disconnected tree.
    """

    trace_id: str
    span_id: str

    def to_headers(self) -> dict[str, str]:
        """The context as wire headers (for serializing transports)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_headers(cls, headers: dict[str, str] | None) -> "SpanContext | None":
        if not headers or "trace_id" not in headers or "span_id" not in headers:
            return None
        return cls(trace_id=headers["trace_id"], span_id=headers["span_id"])


class Span:
    """One timed region. Use as ``with tracer.span("name") as sp:``."""

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "exec_parent_id",
        "remote",
        "start_s",
        "end_s",
        "attrs",
        "status",
        "error",
        "_tracer",
        "_token",
        "_remote_parent",
    )

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        attrs: dict[str, Any] | None = None,
        remote_parent: SpanContext | None = None,
    ) -> None:
        self.name = name
        self.span_id = next_span_id()
        self.trace_id: str = self.span_id  # overwritten on enter if nested
        self.parent_id: str | None = None
        # The ambient (call-stack) parent. Equal to parent_id for ordinary
        # spans; differs for remote spans, where parent_id is the causal
        # sender and exec_parent_id the frame that ran the delivery.
        self.exec_parent_id: str | None = None
        self.remote: bool = False  # True when parented across a message hop
        self.start_s: float = 0.0
        self.end_s: float | None = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.status: str = "ok"
        self.error: str | None = None
        self._tracer = tracer
        self._token = None
        self._remote_parent = remote_parent

    # -- recording --------------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def context(self) -> SpanContext:
        """This span's identity, injectable into an outgoing message."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def record_error(self, exc: BaseException) -> None:
        self.status = "error"
        self.error = f"{type(exc).__name__}: {exc}"

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._exit(self, exc)
        return False  # never swallow exceptions

    # -- facts ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "exec_parent_id": self.exec_parent_id,
            "remote": self.remote,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "status": self.status,
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"{self.duration_s * 1e3:.3f} ms, {self.status})"
        )


class NoopSpan:
    """The span handed out when tracing is disabled.

    A single shared instance: entering, exiting, and attribute writes are
    all no-ops, so an instrumented call path allocates nothing when the
    tracer is off.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> "NoopSpan":
        return self

    def context(self) -> None:
        return None

    def record_error(self, exc: BaseException) -> None:
        return None

    @property
    def finished(self) -> bool:
        return True

    @property
    def duration_s(self) -> float:
        return 0.0


NOOP_SPAN = NoopSpan()
