"""Spans: the unit of the tracing layer.

A :class:`Span` is one timed, named region of the pipeline — an endorsement,
a consensus round, an IPFS add — with attributes, a parent link, and an
error status captured from any exception that escaped the region. Spans are
context managers handed out by :class:`repro.obs.Tracer`; user code never
constructs them directly.

Identifiers are deterministic (a process-wide counter, not random), so
traces of the same run are stable and testable.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.tracer import Tracer

_ids = itertools.count(1)


def next_span_id() -> str:
    return f"{next(_ids):08x}"


class Span:
    """One timed region. Use as ``with tracer.span("name") as sp:``."""

    __slots__ = (
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "start_s",
        "end_s",
        "attrs",
        "status",
        "error",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        tracer: "Tracer",
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.span_id = next_span_id()
        self.trace_id: str = self.span_id  # overwritten on enter if nested
        self.parent_id: str | None = None
        self.start_s: float = 0.0
        self.end_s: float | None = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.status: str = "ok"
        self.error: str | None = None
        self._tracer = tracer
        self._token = None

    # -- recording --------------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def record_error(self, exc: BaseException) -> None:
        self.status = "error"
        self.error = f"{type(exc).__name__}: {exc}"

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._exit(self, exc)
        return False  # never swallow exceptions

    # -- facts ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "status": self.status,
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"{self.duration_s * 1e3:.3f} ms, {self.status})"
        )


class NoopSpan:
    """The span handed out when tracing is disabled.

    A single shared instance: entering, exiting, and attribute writes are
    all no-ops, so an instrumented call path allocates nothing when the
    tracer is off.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> "NoopSpan":
        return self

    def record_error(self, exc: BaseException) -> None:
        return None

    @property
    def finished(self) -> bool:
        return True

    @property
    def duration_s(self) -> float:
        return 0.0


NOOP_SPAN = NoopSpan()
