"""Process-wide metrics facade: labeled counters, gauges, and histograms.

Promoted out of ``repro.fabric.monitor`` (which keeps thin re-exports) so
every layer — fabric, IPFS, consensus, trust, query — records into one
registry with one exposition format. The paper's testbed watches its
network through Grafana; :meth:`MetricsRegistry.render` is that surface,
programmatic and Prometheus-conformant:

* one ``# TYPE`` line per metric *family* (name), however many label sets;
* histogram ``_bucket`` series are cumulative with a closing ``+Inf``
  bucket, alongside ``_sum`` and ``_count``;
* labels render as ``name{key="value",...}`` with escaped values.

Labels make families bounded: ``txs_total{code="valid"}`` is one family
with one series per validation code, not one metric name per code.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ObservabilityError

LabelSet = tuple[tuple[str, str], ...]


def labelset(labels: Mapping[str, object] | None) -> LabelSet:
    """Canonical (sorted, stringified) form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Exactly three characters are special inside a quoted label value —
    backslash, double quote, and newline — and the backslash must be
    escaped *first* so the escapes themselves survive. Every exposition
    path (counters, gauges, histogram/quantile series) funnels through
    here via :func:`render_labels`.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_labels(labels: LabelSet, extra: tuple[tuple[str, str], ...] = ()) -> str:
    """``{k="v",...}`` suffix, empty string for an empty label set."""
    pairs = labels + extra
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{escape_label_value(v)}"' for k, v in pairs) + "}"


@dataclass
class Counter:
    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass
class Histogram:
    name: str
    buckets: tuple[float, ...]
    labels: LabelSet = ()
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ObservabilityError("histogram buckets must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +inf bucket

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        self.counts[idx] += 1
        self.total += value
        self.n += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Prometheus ``histogram_quantile`` semantics: linear interpolation
        inside the bucket that contains the target rank (the first bucket
        interpolates from 0). Observations that landed in the ``+Inf``
        bucket clamp to the highest finite bound — a quantile can never be
        reported beyond what the buckets can resolve.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError("quantile must be in [0, 1]")
        if self.n == 0:
            return 0.0
        target = q * self.n
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += self.counts[i]
            if cumulative >= target:
                if self.counts[i] == 0:
                    return bound
                lower = self.buckets[i - 1] if i > 0 else 0.0
                return lower + (bound - lower) * ((target - previous) / self.counts[i])
        return self.buckets[-1] if self.buckets else 0.0


# The quantiles every histogram exposes in snapshots and exposition; p50,
# p95 and p99 are what latency SLOs are stated in.
EXPOSED_QUANTILES = (0.5, 0.95, 0.99)


def _series_key(name: str, labels: LabelSet) -> str:
    return name + render_labels(labels)


class MetricsRegistry:
    """Named, labeled metrics with Prometheus-style text exposition."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        # family name -> label set -> metric
        self._counters: dict[str, dict[LabelSet, Counter]] = {}
        self._gauges: dict[str, dict[LabelSet, Gauge]] = {}
        self._histograms: dict[str, dict[LabelSet, Histogram]] = {}

    # -- access (creating on first use) -----------------------------------------

    def counter(self, name: str, labels: Mapping[str, object] | None = None) -> Counter:
        ls = labelset(labels)
        family = self._counters.setdefault(name, {})
        metric = family.get(ls)
        if metric is None:
            metric = family[ls] = Counter(name=name, labels=ls)
        return metric

    def gauge(self, name: str, labels: Mapping[str, object] | None = None) -> Gauge:
        ls = labelset(labels)
        family = self._gauges.setdefault(name, {})
        metric = family.get(ls)
        if metric is None:
            metric = family[ls] = Gauge(name=name, labels=ls)
        return metric

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...],
        labels: Mapping[str, object] | None = None,
    ) -> Histogram:
        ls = labelset(labels)
        family = self._histograms.setdefault(name, {})
        metric = family.get(ls)
        if metric is None:
            metric = family[ls] = Histogram(name=name, buckets=tuple(buckets), labels=ls)
        return metric

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- exposition -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly dump; series keys carry their rendered labels."""
        return {
            "counters": {
                _series_key(name, ls): c.value
                for name, family in sorted(self._counters.items())
                for ls, c in sorted(family.items())
            },
            "gauges": {
                _series_key(name, ls): g.value
                for name, family in sorted(self._gauges.items())
                for ls, g in sorted(family.items())
            },
            "histograms": {
                _series_key(name, ls): {
                    "n": h.n,
                    "mean": h.mean,
                    "sum": h.total,
                    "buckets": dict(zip(h.buckets, h.counts)),
                    "p50": h.quantile(0.5),
                    "p95": h.quantile(0.95),
                    "p99": h.quantile(0.99),
                }
                for name, family in sorted(self._histograms.items())
                for ls, h in sorted(family.items())
            },
        }

    def render(self) -> str:
        """Prometheus text format (one TYPE line per family)."""
        lines: list[str] = []
        for name, family in sorted(self._counters.items()):
            lines.append(f"# TYPE {self.prefix}_{name} counter")
            for ls, counter in sorted(family.items()):
                lines.append(f"{self.prefix}_{name}{render_labels(ls)} {counter.value}")
        for name, family in sorted(self._gauges.items()):
            lines.append(f"# TYPE {self.prefix}_{name} gauge")
            for ls, gauge in sorted(family.items()):
                lines.append(f"{self.prefix}_{name}{render_labels(ls)} {gauge.value}")
        for name, family in sorted(self._histograms.items()):
            lines.append(f"# TYPE {self.prefix}_{name} histogram")
            for ls, hist in sorted(family.items()):
                cumulative = 0
                for bound, count in zip(hist.buckets, hist.counts):
                    cumulative += count
                    lines.append(
                        f"{self.prefix}_{name}_bucket"
                        f"{render_labels(ls, (('le', str(bound)),))} {cumulative}"
                    )
                cumulative += hist.counts[-1]
                lines.append(
                    f"{self.prefix}_{name}_bucket"
                    f"{render_labels(ls, (('le', '+Inf'),))} {cumulative}"
                )
                lines.append(f"{self.prefix}_{name}_sum{render_labels(ls)} {hist.total}")
                lines.append(f"{self.prefix}_{name}_count{render_labels(ls)} {hist.n}")
                # Summary-style quantile series so latency SLOs can be
                # read straight off the exposition (bucket interpolation).
                for q in EXPOSED_QUANTILES:
                    lines.append(
                        f"{self.prefix}_{name}"
                        f"{render_labels(ls, (('quantile', str(q)),))} "
                        f"{hist.quantile(q)}"
                    )
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Process-global registry
# ---------------------------------------------------------------------------

_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> None:
    global _DEFAULT
    _DEFAULT = registry
