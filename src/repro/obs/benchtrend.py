"""Bench-trend tracking: a standard BENCH envelope, history, and diffing.

Every ``BENCH_<name>.json`` artifact under ``benchmarks/results/`` carries
the same envelope (v2):

* ``schema_version`` — this format's version (see :data:`SCHEMA_VERSION`);
* ``seed`` — the RNG seed the run was configured with (``None`` for pure
  timing microbenches with no seeded behavior);
* ``config_fingerprint`` — a content hash of ``{name, meta}``: two runs
  are comparable iff their fingerprints match. Deliberately *not* a
  git-describe — the fingerprint identifies the benchmark configuration,
  not the tree it ran in, so baselines survive unrelated commits;
* ``meta`` / ``series`` — as before: free-form run parameters and, per
  series, summary statistics plus raw values.

Around the envelope:

* :func:`record_history` appends envelopes to an append-only store under
  ``benchmarks/results/history/<name>.jsonl`` (one line per run);
* :func:`diff_docs` / :func:`compare_dirs` compare a fresh run against the
  checked-in baseline with **per-metric, direction-aware tolerances** —
  ``repro bench-diff`` exits non-zero on regression, and CI runs it.

Metric directions are inferred from series names:

* ``*_per_s`` — throughput, higher is better;
* ``*_s`` / ``*_ms`` or names mentioning time/latency/overhead — wall-time,
  lower is better;
* everything else (message counts, PBFT instances, block counts, scores) —
  deterministic under a fixed seed: gated tightly in either direction.

Throughput and wall-time are both machine-dependent, so they gate only
when an explicit *timing* tolerance is given (CI uses a generous one to
catch complexity blowups without flapping on runner variance); only the
deterministic class gates under the tight default tolerance.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import ObservabilityError

SCHEMA_VERSION = 2

# Metric direction classes (see module docstring).
HIGHER_IS_BETTER = "higher"
TIMING = "timing"
EXACT = "exact"


def classify_metric(series_name: str) -> str:
    """Infer how a series should be compared, from its name."""
    if series_name.endswith("_per_s"):
        return HIGHER_IS_BETTER
    lowered = series_name.lower()
    if series_name.endswith(("_s", "_ms")) or any(
        word in lowered for word in ("time", "latency", "overhead")
    ):
        return TIMING
    return EXACT


def config_fingerprint(name: str, meta: Mapping[str, object] | None = None) -> str:
    """Content hash identifying a benchmark configuration (no git state)."""
    canon = json.dumps(
        {"name": name, "meta": dict(meta or {})},
        sort_keys=True, separators=(",", ":"), default=str,
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


def make_envelope(
    name: str,
    series: Mapping[str, Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
    seed: int | None = None,
) -> dict:
    """Wrap per-series stats blocks in the v2 BENCH envelope."""
    meta_dict = dict(meta or {})
    return {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "seed": seed,
        "config_fingerprint": config_fingerprint(name, meta_dict),
        "meta": meta_dict,
        "series": {key: dict(block) for key, block in series.items()},
    }


def migrate_legacy(doc: Mapping[str, object]) -> dict:
    """Lift a pre-envelope (v1) BENCH document into the v2 envelope.

    v1 docs had only ``{name, meta, series}``; the seed, when recorded at
    all, lived in ``meta`` (kept there too, for byte-for-byte series
    compatibility). Already-enveloped docs pass through unchanged.
    """
    if doc.get("schema_version") == SCHEMA_VERSION:
        return dict(doc)
    name = str(doc.get("name", ""))
    if not name:
        raise ObservabilityError("BENCH document has no name — not a bench artifact")
    meta = doc.get("meta") or {}
    seed = meta.get("seed") if isinstance(meta, dict) else None
    return make_envelope(
        name,
        doc.get("series") or {},
        meta=meta,
        seed=int(seed) if isinstance(seed, (int, float)) and not isinstance(seed, bool) else None,
    )


def load_bench(path: Path) -> dict:
    """Read one BENCH_*.json, migrating v1 docs to the envelope in memory."""
    try:
        raw = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise ObservabilityError(f"cannot read bench artifact {path}: {exc}") from exc
    return migrate_legacy(raw)


def record_history(doc: Mapping[str, object], results_dir: Path) -> Path:
    """Append one envelope to the append-only history store.

    One JSONL file per bench name under ``<results_dir>/history/``; each
    emitted run adds one line, so trends are replayable by reading the file
    top to bottom.
    """
    name = str(doc.get("name", ""))
    if not name:
        raise ObservabilityError("cannot record history for an unnamed bench document")
    history = Path(results_dir) / "history"
    history.mkdir(parents=True, exist_ok=True)
    path = history / f"{name}.jsonl"
    with open(path, "a") as fh:
        fh.write(json.dumps(doc, sort_keys=True) + "\n")
    return path


def load_history(name: str, results_dir: Path) -> list[dict]:
    path = Path(results_dir) / "history" / f"{name}.jsonl"
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """The comparison of one series' mean between baseline and current."""

    bench: str
    series: str
    direction: str                 # "higher" | "timing" | "exact"
    baseline: float | None
    current: float | None
    tolerance: float | None        # relative; None = informational only
    regressed: bool
    note: str = ""

    @property
    def ratio(self) -> float | None:
        if self.baseline in (None, 0) or self.current is None:
            return None
        return self.current / self.baseline

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "series": self.series,
            "direction": self.direction,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
            "regressed": self.regressed,
            "note": self.note,
        }

    def render(self) -> str:
        flag = "REGRESSED" if self.regressed else "ok"
        base = "-" if self.baseline is None else f"{self.baseline:.6g}"
        cur = "-" if self.current is None else f"{self.current:.6g}"
        ratio = "-" if self.ratio is None else f"{self.ratio:.3f}x"
        note = f"  ({self.note})" if self.note else ""
        return (
            f"{flag:<9} {self.bench}:{self.series} [{self.direction}] "
            f"{base} -> {cur} ({ratio}){note}"
        )


@dataclass(frozen=True)
class DiffReport:
    deltas: tuple[MetricDelta, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not any(d.regressed for d in self.deltas)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "regressions": len(self.regressions),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def render_lines(self) -> list[str]:
        lines = [d.render() for d in self.deltas]
        lines.append(
            f"bench-diff: {len(self.regressions)} regression(s) over "
            f"{len(self.deltas)} compared metric(s)"
        )
        return lines


def _mean_of(doc: Mapping[str, object], series: str) -> float | None:
    block = (doc.get("series") or {}).get(series) or {}
    mean = block.get("mean")
    return float(mean) if isinstance(mean, (int, float)) and not isinstance(mean, bool) else None


def diff_docs(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    tolerance: float = 0.1,
    timing_tolerance: float | None = None,
) -> DiffReport:
    """Compare two envelopes series by series.

    ``tolerance`` is the relative tolerance for deterministic metrics
    (two-sided). ``timing_tolerance`` gates the machine-dependent classes —
    wall-time (one-sided: slower is worse) and throughput (one-sided:
    lower is worse); ``None`` leaves them informational. A series present
    in the baseline but missing from the current run is itself a
    regression — silently dropped coverage must not pass.
    """
    bench = str(current.get("name") or baseline.get("name") or "?")
    deltas: list[MetricDelta] = []
    base_series = dict(baseline.get("series") or {})
    cur_series = dict(current.get("series") or {})
    fp_note = ""
    if baseline.get("config_fingerprint") != current.get("config_fingerprint"):
        fp_note = "config fingerprint differs"
    for name in sorted(base_series):
        direction = classify_metric(name)
        tol = tolerance if direction == EXACT else timing_tolerance
        base = _mean_of(baseline, name)
        cur = _mean_of(current, name)
        if name not in cur_series or cur is None:
            deltas.append(MetricDelta(
                bench=bench, series=name, direction=direction,
                baseline=base, current=None, tolerance=tol,
                regressed=True, note="series missing from current run",
            ))
            continue
        regressed = False
        note = fp_note
        if base is None:
            note = "no baseline mean"
        elif tol is None:
            pass  # informational
        elif base == 0:
            regressed = direction == EXACT and cur != 0
            note = note or ("zero baseline" if not regressed else "baseline 0, now nonzero")
        elif direction == HIGHER_IS_BETTER:
            # One-sided, expressed as a slowdown factor like TIMING so a
            # generous tol (e.g. 4.0 = "4x worse") stays meaningful.
            regressed = cur * (1.0 + tol) < base
        elif direction == TIMING:
            regressed = cur > base * (1.0 + tol)
        else:  # EXACT: deterministic under seed — gate both directions
            regressed = abs(cur - base) > tol * abs(base)
        deltas.append(MetricDelta(
            bench=bench, series=name, direction=direction,
            baseline=base, current=cur, tolerance=tol,
            regressed=regressed, note=note,
        ))
    for name in sorted(set(cur_series) - set(base_series)):
        deltas.append(MetricDelta(
            bench=bench, series=name, direction=classify_metric(name),
            baseline=None, current=_mean_of(current, name), tolerance=None,
            regressed=False, note="new series (no baseline)",
        ))
    return DiffReport(deltas=tuple(deltas))


def compare_dirs(
    baseline_dir: Path,
    current_dir: Path,
    names: Sequence[str] | None = None,
    tolerance: float = 0.1,
    timing_tolerance: float | None = None,
) -> DiffReport:
    """Diff every ``BENCH_*.json`` in ``current_dir`` against its baseline.

    ``names`` restricts the comparison to specific bench names (and makes a
    missing current artifact an error instead of a skip). A current artifact
    with no checked-in baseline is reported informationally.
    """
    baseline_dir, current_dir = Path(baseline_dir), Path(current_dir)
    if names:
        current_paths = []
        for name in names:
            path = current_dir / f"BENCH_{name}.json"
            if not path.exists():
                raise ObservabilityError(f"requested bench {name!r} missing from {current_dir}")
            current_paths.append(path)
    else:
        current_paths = sorted(current_dir.glob("BENCH_*.json"))
        if not current_paths:
            raise ObservabilityError(f"no BENCH_*.json artifacts in {current_dir}")
    deltas: list[MetricDelta] = []
    for path in current_paths:
        current = load_bench(path)
        base_path = baseline_dir / path.name
        if not base_path.exists():
            deltas.append(MetricDelta(
                bench=str(current.get("name", path.name)), series="*",
                direction=EXACT, baseline=None, current=None, tolerance=None,
                regressed=False, note="no checked-in baseline",
            ))
            continue
        report = diff_docs(
            load_bench(base_path), current,
            tolerance=tolerance, timing_tolerance=timing_tolerance,
        )
        deltas.extend(report.deltas)
    return DiffReport(deltas=tuple(deltas))
