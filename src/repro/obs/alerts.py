"""Declarative alerting over health reports: threshold + for-duration +
severity, with a firing/resolved lifecycle.

Rules are Prometheus-style in spirit: each names a *signal* on the
:class:`~repro.obs.health.HealthReport` (``component:<name>`` resolves to
the component's status ordinal, ``sli:<name>`` to the SLI value), a
comparison against a threshold, and how many consecutive ticks the
condition must hold (``for_ticks``) before the alert fires. Feeding one
report per tick into :meth:`AlertEngine.evaluate` advances every rule's
lifecycle and appends ``firing`` / ``resolved`` events to the alert log.

The log is the audit trail *and* the determinism witness: chaos scenarios
assert that a fixed seed yields a byte-identical
:meth:`AlertEngine.fingerprint` — which is why :func:`standard_rules`
only reference signals derived from system state and deterministic
counters, never wall-clock latencies.

Gauges (``alert_state{name=}``, ``alerts_firing{severity=}``) and the
``alerts_fired_total{name=}`` counter ride the shared metrics registry,
so firing alerts are visible in the same Prometheus exposition as
everything else.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ObservabilityError
from repro.obs.health import HealthMonitor, HealthReport
from repro.obs.metrics import MetricsRegistry, get_registry

_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule: fire when ``signal op threshold`` has held
    for ``for_ticks`` consecutive evaluations."""

    name: str
    signal: str               # "component:<name>" or "sli:<name>"
    op: str                   # > >= < <=
    threshold: float
    for_ticks: int = 1
    severity: str = "warning"  # warning | critical

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ObservabilityError(f"unknown alert op {self.op!r}")
        if self.for_ticks < 1:
            raise ObservabilityError("for_ticks must be >= 1")

    def condition(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        return f"{self.signal} {self.op} {self.threshold} for {self.for_ticks}t"


@dataclass(frozen=True)
class AlertEvent:
    """One lifecycle transition in the alert log."""

    tick: int
    rule: str
    severity: str
    state: str                # "firing" | "resolved"
    value: float

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            # Rounded so float noise can never split a fingerprint.
            "value": round(self.value, 6),
        }


@dataclass
class _RuleState:
    consecutive: int = 0
    firing: bool = False


class AlertEngine:
    """Evaluates rules over a stream of health reports, one per tick."""

    def __init__(
        self, rules: list[AlertRule], registry: MetricsRegistry | None = None
    ) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ObservabilityError("alert rule names must be unique")
        self.rules = list(rules)
        self.registry = registry or get_registry()
        self.log: list[AlertEvent] = []
        self._state: dict[str, _RuleState] = {r.name: _RuleState() for r in rules}

    def evaluate(self, report: HealthReport) -> list[AlertEvent]:
        """Advance every rule one tick; returns the transitions this tick."""
        events: list[AlertEvent] = []
        for rule in self.rules:
            state = self._state[rule.name]
            value = report.signal(rule.signal)
            # No data is not an outage: the condition is simply not met.
            met = value is not None and rule.condition(value)
            state.consecutive = state.consecutive + 1 if met else 0
            if not state.firing and state.consecutive >= rule.for_ticks:
                state.firing = True
                events.append(self._transition(report.tick, rule, "firing", value))
                self.registry.counter("alerts_fired_total", {"name": rule.name}).inc()
            elif state.firing and not met:
                state.firing = False
                events.append(
                    self._transition(report.tick, rule, "resolved", value)
                )
        self.log.extend(events)
        self._export()
        return events

    def _transition(
        self, tick: int, rule: AlertRule, state: str, value: float | None
    ) -> AlertEvent:
        return AlertEvent(
            tick=tick,
            rule=rule.name,
            severity=rule.severity,
            state=state,
            value=0.0 if value is None else value,
        )

    def _export(self) -> None:
        by_severity: dict[str, int] = {}
        for rule in self.rules:
            firing = self._state[rule.name].firing
            self.registry.gauge("alert_state", {"name": rule.name}).set(int(firing))
            if firing:
                by_severity[rule.severity] = by_severity.get(rule.severity, 0) + 1
        for severity in {r.severity for r in self.rules}:
            self.registry.gauge("alerts_firing", {"severity": severity}).set(
                by_severity.get(severity, 0)
            )

    # -- queries ----------------------------------------------------------------

    def active(self) -> list[str]:
        """Names of the rules firing right now."""
        return [r.name for r in self.rules if self._state[r.name].firing]

    def fired(self) -> set[str]:
        """Every rule that fired at least once over the engine's lifetime."""
        return {e.rule for e in self.log if e.state == "firing"}

    def fingerprint(self) -> str:
        """Determinism witness over the full alert log."""
        payload = json.dumps(
            [e.to_dict() for e in self.log], sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def render_lines(self) -> list[str]:
        if not self.log:
            return ["no alert transitions"]
        return [
            f"t={e.tick:>3} {e.state.upper():<8} [{e.severity}] {e.rule} "
            f"(value {e.value:.4f})"
            for e in self.log
        ]


# ---------------------------------------------------------------------------
# The standard rule set and its chaos wiring
# ---------------------------------------------------------------------------


def standard_rules() -> list[AlertRule]:
    """The default rule set ``repro health``/``repro top``/CI all use.

    Every signal referenced here is deterministic under a seeded chaos run
    (component statuses and counter-ratio SLIs only — never wall-clock
    latency quantiles), so the alert log fingerprints stably.
    """
    return [
        AlertRule(
            name="ipfs_node_down",
            signal="component:ipfs.nodes",
            op=">=",
            threshold=1,        # DEGRADED or worse
            severity="warning",
        ),
        AlertRule(
            name="fabric_peer_down",
            signal="component:fabric.peers",
            op=">=",
            threshold=1,
            severity="warning",
        ),
        AlertRule(
            name="validator_quorum_lost",
            signal="component:consensus.validators",
            op=">=",
            threshold=2,        # UNHEALTHY: below quorum
            severity="critical",
        ),
        AlertRule(
            name="consensus_drop_storm",
            signal="sli:consensus_drop_fraction",
            op=">",
            threshold=0.3,
            for_ticks=2,
            severity="critical",
        ),
        AlertRule(
            name="breaker_open",
            signal="component:resilience.breakers",
            op=">=",
            threshold=2,        # UNHEALTHY: at least one breaker open
            severity="critical",
        ),
        AlertRule(
            name="replication_degraded",
            signal="sli:replication_health",
            op="<",
            threshold=1.0,
            for_ticks=2,
            severity="warning",
        ),
        # Durability SLIs only exist when the framework runs with
        # durability enabled; elsewhere the signal resolves to None and
        # the condition is never met, so existing fingerprints hold.
        AlertRule(
            name="node_recovered",
            signal="sli:recovery_rate",
            op=">",
            threshold=0,
            severity="warning",
        ),
        AlertRule(
            name="recovery_replay_lag",
            signal="sli:recovery_replay_lag",
            op=">",
            threshold=0,
            severity="warning",
        ),
        AlertRule(
            name="wal_damage",
            signal="sli:wal_damage_rate",
            op=">",
            threshold=0,
            severity="critical",
        ),
    ]


# Scenario name -> the alerts its fault schedule must fire (one per
# injected fault class) — the CI health gate's contract. Each scenario
# listed here also heals every fault, so all of these must resolve by the
# end of the run.
EXPECTED_ALERTS: dict[str, set[str]] = {
    "standard": {
        "ipfs_node_down",        # IpfsNodeCrash @5  → IpfsNodeRestart @30
        "fabric_peer_down",      # PeerOffline @8,9  → PeerOnline @33,34
        "consensus_drop_storm",  # MessageChaosOn drop storm @20 → calm @24
    },
    "crash_recovery": {
        "node_recovered",        # AmnesiaCrash @6,12,19,29 → windowed SLI decays
        "recovery_replay_lag",   # state transfer skips the WAL → lag blocks
        "wal_damage",            # DiskFault/torn writes → damaged-WAL recoveries
    },
}


class ChaosAlertProbe:
    """A :attr:`ChaosScenario.on_cycle` observer: health check + alert
    evaluation per cycle.

    Built lazily on the first cycle (the scenario constructs its framework
    inside ``run()``), then exposes the monitor, engine, and full report
    stream for assertions after the run.
    """

    def __init__(
        self,
        rules: list[AlertRule] | None = None,
        registry: MetricsRegistry | None = None,
        window: int = 8,
    ) -> None:
        self.rules = rules if rules is not None else standard_rules()
        self.registry = registry
        self.window = window
        self.monitor: HealthMonitor | None = None
        self.engine: AlertEngine | None = None
        self.reports: list[HealthReport] = []

    def __call__(self, cycle: int, framework, manager) -> None:
        if self.monitor is None:
            self.monitor = HealthMonitor(
                framework,
                registry=self.registry,
                replication=manager,
                window=self.window,
            )
            self.engine = AlertEngine(self.rules, registry=self.registry)
        report = self.monitor.check()
        self.reports.append(report)
        self.engine.evaluate(report)

    # -- post-run verdict --------------------------------------------------------

    def verify(self, scenario_name: str) -> tuple[bool, list[str]]:
        """Did the expected alerts fire, and did every alert resolve?"""
        problems: list[str] = []
        if self.engine is None:
            return False, ["probe never ran — no cycles observed"]
        expected = EXPECTED_ALERTS.get(scenario_name, set())
        fired = self.engine.fired()
        for name in sorted(expected - fired):
            problems.append(f"expected alert never fired: {name}")
        for name in sorted(self.engine.active()):
            problems.append(f"alert still firing after heal: {name}")
        return not problems, problems
