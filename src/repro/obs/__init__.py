"""repro.obs — end-to-end tracing and unified metrics for the pipeline.

The observability layer the paper's testbed gets from Grafana + Hyperledger
Explorer, built in:

* **Tracing** (:mod:`repro.obs.tracer`, :mod:`repro.obs.span`): nested,
  contextvars-propagated spans over the full Figure-1 pipeline — client
  submit/retrieve, endorsement, BFT ordering, validate/commit, IPFS
  chunk/add/cat, query planning and verification. Opt-in via
  :func:`enable` / scoped :func:`enabled`; a disabled tracer costs one
  guard check per instrumented call.
* **Metrics** (:mod:`repro.obs.metrics`): process-wide
  :class:`MetricsRegistry` with *labeled* counters/gauges/histograms and
  Prometheus text exposition (promoted from ``repro.fabric.monitor``,
  which re-exports for compatibility).
* **Exporters** (:mod:`repro.obs.export`): Prometheus text, JSON
  snapshots, and Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto.
* **Breakdown** (:mod:`repro.obs.breakdown`): :func:`pipeline_breakdown`
  reproduces the paper's per-stage storage/retrieval latency decomposition
  (Figs. 5–6) from real spans.

Quickstart::

    from repro import obs

    tracer = obs.enable(registry=obs.get_registry())
    ...  # run any Framework/Client workload
    print("\\n".join(tracer.tree_lines()))
    print(obs.render_breakdown(obs.pipeline_breakdown(tracer)))
    obs.write_chrome_trace("trace.json", tracer)
    print(obs.render_prometheus())
    obs.disable()
"""

from repro.obs.breakdown import (
    PipelineBreakdown,
    StageTime,
    pipeline_breakdown,
    render_breakdown,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    metrics_json,
    render_prometheus,
    spans_json,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.span import NOOP_SPAN, NoopSpan, Span
from repro.obs.tracer import (
    LATENCY_BUCKETS,
    Tracer,
    current_span,
    disable,
    enable,
    enabled,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "PipelineBreakdown",
    "StageTime",
    "pipeline_breakdown",
    "render_breakdown",
    "chrome_trace",
    "chrome_trace_events",
    "metrics_json",
    "render_prometheus",
    "spans_json",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "NOOP_SPAN",
    "NoopSpan",
    "Span",
    "LATENCY_BUCKETS",
    "Tracer",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "set_tracer",
    "span",
]
