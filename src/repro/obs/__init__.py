"""repro.obs — end-to-end tracing and unified metrics for the pipeline.

The observability layer the paper's testbed gets from Grafana + Hyperledger
Explorer, built in:

* **Tracing** (:mod:`repro.obs.tracer`, :mod:`repro.obs.span`): nested,
  contextvars-propagated spans over the full Figure-1 pipeline — client
  submit/retrieve, endorsement, BFT ordering, validate/commit, IPFS
  chunk/add/cat, query planning and verification. Opt-in via
  :func:`enable` / scoped :func:`enabled`; a disabled tracer costs one
  guard check per instrumented call.
* **Metrics** (:mod:`repro.obs.metrics`): process-wide
  :class:`MetricsRegistry` with *labeled* counters/gauges/histograms and
  Prometheus text exposition (promoted from ``repro.fabric.monitor``,
  which re-exports for compatibility).
* **Exporters** (:mod:`repro.obs.export`): Prometheus text, JSON
  snapshots, and Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto.
* **Breakdown** (:mod:`repro.obs.breakdown`): :func:`pipeline_breakdown`
  reproduces the paper's per-stage storage/retrieval latency decomposition
  (Figs. 5–6) from real spans, with per-stage cost-center rows and explicit
  ``other`` residuals when the profiler ran alongside the tracer.
* **Profiler** (:mod:`repro.obs.prof`): deterministic cost-center profiler
  — :func:`profiled` frames over crypto/serialization/consensus/IPFS hot
  paths with exact inclusive/exclusive time, bytes, lock wait/hold and
  queue-wait telemetry, collapsed-stack + Chrome-trace export, and a
  seeded-run :meth:`Profiler.fingerprint`. Opt-in via
  :func:`enable_profiler` / scoped :func:`profiling`; disabled,
  :func:`profiled` returns a shared no-op probe (zero allocation).
* **Critical path** (:mod:`repro.obs.critpath`): with trace contexts
  propagated across :mod:`repro.net` messages, :func:`critical_path`
  extracts the longest dependency chain of a committed tx across client,
  peers, orderer, and validators, attributing wall time to
  ``{stage, node, msg_kind}``; :func:`chrome_trace_by_node` renders the
  cross-node DAG with one process row per node.
* **Bench trends** (:mod:`repro.obs.benchtrend`): the standardized BENCH
  JSON envelope (schema version, seed, config fingerprint), the
  append-only ``benchmarks/results/history/`` store, and the
  direction-aware diffing behind ``repro bench-diff``.
* **Explorer** (:mod:`repro.obs.explorer`): the Hyperledger-Explorer half —
  :class:`LedgerExplorer` browses blocks/txs, reconstructs provenance
  trails from the ledger, charts trust timelines, and runs the full
  on-chain + off-chain integrity audit.
* **Health** (:mod:`repro.obs.health`): :class:`HealthMonitor` scores every
  component (peers, orderer, validators, IPFS, DHT, breakers) and computes
  rolling-window SLIs into a typed :class:`HealthReport`.
* **Alerts** (:mod:`repro.obs.alerts`): declarative :class:`AlertRule`
  evaluation with firing/resolved lifecycle, an auditable alert log, and
  deterministic fingerprints under seeded chaos.

Quickstart::

    from repro import obs

    tracer = obs.enable(registry=obs.get_registry())
    ...  # run any Framework/Client workload
    print("\\n".join(tracer.tree_lines()))
    print(obs.render_breakdown(obs.pipeline_breakdown(tracer)))
    obs.write_chrome_trace("trace.json", tracer)
    print(obs.render_prometheus())
    obs.disable()
"""

from repro.obs.breakdown import (
    PipelineBreakdown,
    StageTime,
    pipeline_breakdown,
    render_breakdown,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    metrics_json,
    render_prometheus,
    spans_json,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
    set_registry,
)
from repro.obs.prof import (
    CenterStat,
    LockStat,
    ProfileReport,
    Profiler,
    QueueStat,
    collapsed_stacks,
    disable_profiler,
    enable_profiler,
    get_profiler,
    invoke_coverage,
    profiled,
    profiled_call,
    profiling,
    set_profiler,
    write_chrome_trace_tree,
    write_collapsed,
)
from repro.obs.span import NOOP_SPAN, NoopSpan, Span, SpanContext
from repro.obs.tracer import (
    LATENCY_BUCKETS,
    Tracer,
    current_context,
    current_span,
    disable,
    enable,
    enabled,
    get_tracer,
    set_tracer,
    span,
)

# Explorer/health/alerts sit *above* the layers they observe (fabric,
# consensus, resilience), while those layers import repro.obs for spans and
# metrics — eager imports here would cycle. PEP 562 lazy attributes break
# the loop: the submodules load on first attribute access, by which point
# the lower layers are fully initialized.
_LAZY_SUBMODULE = {
    name: f"repro.obs.{mod}"
    for mod, names in {
        "alerts": (
            "AlertEngine",
            "AlertEvent",
            "AlertRule",
            "ChaosAlertProbe",
            "EXPECTED_ALERTS",
            "standard_rules",
        ),
        "explorer": ("AuditFinding", "AuditReport", "LedgerExplorer"),
        "critpath": (
            "CritSegment",
            "CriticalPath",
            "chrome_trace_by_node",
            "critical_path",
            "span_node",
            "write_chrome_trace_by_node",
        ),
        "benchtrend": (
            "DiffReport",
            "MetricDelta",
            "classify_metric",
            "compare_dirs",
            "config_fingerprint",
            "diff_docs",
            "load_bench",
            "make_envelope",
            "migrate_legacy",
            "record_history",
        ),
        "health": (
            "ComponentHealth",
            "HealthMonitor",
            "HealthReport",
            "HealthStatus",
        ),
    }.items()
    for name in names
}


def __getattr__(name: str):
    module_name = _LAZY_SUBMODULE.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "AuditFinding",
    "AuditReport",
    "ChaosAlertProbe",
    "ComponentHealth",
    "EXPECTED_ALERTS",
    "HealthMonitor",
    "HealthReport",
    "HealthStatus",
    "LedgerExplorer",
    "standard_rules",
    "CritSegment",
    "CriticalPath",
    "chrome_trace_by_node",
    "critical_path",
    "span_node",
    "write_chrome_trace_by_node",
    "DiffReport",
    "MetricDelta",
    "classify_metric",
    "compare_dirs",
    "config_fingerprint",
    "diff_docs",
    "load_bench",
    "make_envelope",
    "migrate_legacy",
    "record_history",
    "PipelineBreakdown",
    "StageTime",
    "pipeline_breakdown",
    "render_breakdown",
    "chrome_trace",
    "chrome_trace_events",
    "metrics_json",
    "render_prometheus",
    "spans_json",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "get_registry",
    "set_registry",
    "CenterStat",
    "LockStat",
    "ProfileReport",
    "Profiler",
    "QueueStat",
    "collapsed_stacks",
    "disable_profiler",
    "enable_profiler",
    "get_profiler",
    "invoke_coverage",
    "profiled",
    "profiled_call",
    "profiling",
    "set_profiler",
    "write_chrome_trace_tree",
    "write_collapsed",
    "NOOP_SPAN",
    "NoopSpan",
    "Span",
    "SpanContext",
    "LATENCY_BUCKETS",
    "Tracer",
    "current_context",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_tracer",
    "set_tracer",
    "span",
]
