"""Per-stage latency decomposition: the paper's Figures 5 and 6 from spans.

The paper reports storage time (Fig. 5) and retrieval time (Fig. 6) broken
into IPFS work versus blockchain overhead. :func:`pipeline_breakdown`
reproduces that decomposition from *real* spans of a traced run: every
``client.submit`` root becomes a storage sample and every
``client.retrieve`` / ``query.run`` root a retrieval sample, and each
sample's wall time is attributed stage by stage using **exclusive** span
times (a span's duration minus its children's), so nested instrumentation
never double-counts and the stage totals sum back to the measured
end-to-end wall time, minus only genuinely uninstrumented gaps — and those
gaps are no longer silent: any wall time the stages don't explain shows up
as an explicit ``other`` row rather than only depressing the coverage
figure.

When the cost-center profiler (:mod:`repro.obs.prof`) ran alongside the
tracer, each stage additionally decomposes into the cost centers recorded
inside its spans (``crypto.sign``, ``serialize.canonical_json``, ...),
with a per-stage ``other`` sub-row for whatever the centers leave
unexplained.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.span import Span
from repro.obs.tracer import Tracer, get_tracer

# Root span name -> which pipeline the sample belongs to.
ROOTS = {
    "client.submit": "storage",
    "ingest.batch": "storage",
    "client.retrieve": "retrieval",
    "query.run": "retrieval",
}

# Span name -> reported stage. Unmapped spans report under their own name,
# so nothing silently disappears from the decomposition.
STAGE_LABELS = {
    # storage path (paper Fig. 5 / Figure 1 steps ①–⑦)
    "submit.sign": "signature",
    "submit.admission": "trust admission",
    "ipfs.add": "ipfs add",
    "ipfs.add_bytes": "ipfs chunk+dag",
    "fabric.invoke": "tx assembly",
    "fabric.endorse": "endorse",
    "fabric.peer.endorse": "endorse",
    "fabric.order": "order",
    "consensus.round": "consensus (bft)",
    "consensus.run": "consensus (bft)",
    "consensus.validate": "consensus (bft)",
    "fabric.deliver": "deliver",
    "fabric.peer.commit": "validate+commit",
    "submit.provenance": "provenance",
    "submit.trust_update": "trust update",
    "trust.observe_validators": "trust update",
    "ingest.item": "ingest prepare",
    "ingest.store": "ipfs add",
    "ingest.provenance": "provenance",
    "ingest.trust_update": "trust update",
    "ipfs.add_many": "ipfs add",
    "fabric.flush": "order",
    # retrieval path (paper Fig. 6 / Figure 1 steps Ⓐ–Ⓓ)
    "retrieve.acl": "acl check",
    "query.plan": "plan",
    "query.get": "query route",
    "query.chain_read": "on-chain read",
    "fabric.query": "on-chain read",
    "query.fetch": "off-chain fetch",
    "ipfs.cat": "off-chain fetch",
    "ipfs.cat_many": "off-chain fetch",
    "ipfs.dht.providers": "dht resolve",
    "ipfs.node.cat": "off-chain fetch",
    "query.verify": "integrity verify",
    "retrieve.provenance": "provenance",
    # resilience (both paths; cheap and usually absent when healthy)
    "resilience.retry": "retry backoff",
    "ipfs.quarantine": "quarantine",
    # network (delivery spans opened by SimNetwork when tracing is on)
    "net.deliver": "network deliver",
}

UNATTRIBUTED = "(uninstrumented)"

# Explicit residual label, at both levels: a pipeline-level ``other`` stage
# (wall time no stage explains) and a per-stage ``other`` center (stage time
# no cost center explains).
OTHER = "other"

# Residuals below this are timer noise, not a missing instrument.
_RESIDUAL_EPS_S = 1e-9


@dataclass(frozen=True)
class CenterTime:
    """One cost center's contribution within a stage (calls, seconds)."""

    center: str
    calls: int
    total_s: float


@dataclass(frozen=True)
class StageTime:
    stage: str
    count: int
    total_s: float
    share: float  # fraction of the pipeline's wall time
    # Cost-center decomposition of this stage (empty without a profiler);
    # includes a trailing ``other`` row when the centers leave a residual.
    centers: tuple[CenterTime, ...] = ()

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass(frozen=True)
class PipelineBreakdown:
    pipeline: str            # "storage" | "retrieval"
    samples: int             # number of root spans aggregated
    wall_s: float            # summed end-to-end wall time of those roots
    stages: tuple[StageTime, ...]

    @property
    def attributed_s(self) -> float:
        return sum(
            s.total_s for s in self.stages if s.stage not in (UNATTRIBUTED, OTHER)
        )

    @property
    def coverage(self) -> float:
        """Fraction of wall time explained by named stages."""
        return self.attributed_s / self.wall_s if self.wall_s > 0 else 0.0


def _exclusive_s(span: Span, children: list[Span]) -> float:
    return max(0.0, span.duration_s - sum(c.duration_s for c in children))


def _center_rows(
    centers: dict[str, list] | None, stage_total_s: float
) -> tuple[CenterTime, ...]:
    """Sorted center rows for one stage, plus an ``other`` residual row."""
    if not centers:
        return ()
    rows = [CenterTime(center=c, calls=acc[0], total_s=acc[1]) for c, acc in centers.items()]
    rows.sort(key=lambda r: (-r.total_s, r.center))
    residual = stage_total_s - sum(r.total_s for r in rows)
    if residual > _RESIDUAL_EPS_S:
        rows.append(CenterTime(center=OTHER, calls=0, total_s=residual))
    return tuple(rows)


def pipeline_breakdown(
    tracer: Tracer | None = None, profiler=None
) -> dict[str, PipelineBreakdown]:
    """Aggregate a traced run into per-stage storage/retrieval breakdowns.

    Returns ``{"storage": ..., "retrieval": ...}`` (keys present only when
    the trace contains such roots). When a cost-center profiler is active
    (or passed explicitly), every stage also carries the cost centers
    recorded inside its spans, and residuals surface as ``other`` rows at
    both the stage and the pipeline level.
    """
    tracer = tracer or get_tracer()
    if tracer is None:
        return {}
    if profiler is None:
        from repro.obs.prof import get_profiler

        profiler = get_profiler()
    span_centers = profiler.span_center_seconds() if profiler is not None else {}
    acc: dict[str, dict[str, list[float]]] = {}
    # pipeline -> stage -> center -> [calls, seconds]
    centers_acc: dict[str, dict[str, dict[str, list]]] = {}
    wall: dict[str, float] = {}
    samples: dict[str, int] = {}
    for root in tracer.roots():
        pipeline = ROOTS.get(root.name)
        if pipeline is None or not root.finished:
            continue
        wall[pipeline] = wall.get(pipeline, 0.0) + root.duration_s
        samples[pipeline] = samples.get(pipeline, 0) + 1
        stages = acc.setdefault(pipeline, {})
        pcenters = centers_acc.setdefault(pipeline, {})
        # Walk the *execution* view: remote spans (message deliveries) nest
        # under the frame that ran them, not under their causal sender —
        # the view where child intervals sit inside the parent's, which
        # exclusive-time accounting needs to partition wall time without
        # double-booking seconds.
        for span in [root, *tracer.descendants(root, view="exec")]:
            if span is root:
                stage = UNATTRIBUTED
            else:
                stage = STAGE_LABELS.get(span.name, span.name)
            for center, (calls, seconds) in span_centers.get(span.span_id, {}).items():
                cacc = pcenters.setdefault(stage, {}).setdefault(center, [0, 0.0])
                cacc[0] += calls
                cacc[1] += seconds
            kids = tracer.children(span, view="exec")
            exclusive = _exclusive_s(span, kids)
            if exclusive <= 0.0:
                continue
            stages.setdefault(stage, []).append(exclusive)
    out: dict[str, PipelineBreakdown] = {}
    for pipeline, stages in acc.items():
        pcenters = centers_acc.get(pipeline, {})
        rows = [
            StageTime(
                stage=stage,
                count=len(times),
                total_s=sum(times),
                share=(sum(times) / wall[pipeline]) if wall[pipeline] > 0 else 0.0,
                centers=_center_rows(pcenters.get(stage), sum(times)),
            )
            for stage, times in stages.items()
        ]
        # A stage can carry centers without ever having positive exclusive
        # time of its own (all its wall time sat in child spans); keep it
        # visible rather than dropping the centers on the floor.
        for stage, cmap in pcenters.items():
            if stage not in stages:
                rows.append(StageTime(stage, 0, 0.0, 0.0, centers=_center_rows(cmap, 0.0)))
        rows.sort(key=lambda r: r.total_s, reverse=True)
        # Wall time that no stage explains (non-nesting spans, clamped
        # exclusives): an explicit ``other`` stage instead of a silent
        # coverage shortfall.
        gap = wall[pipeline] - sum(r.total_s for r in rows)
        if gap > _RESIDUAL_EPS_S:
            rows.append(
                StageTime(
                    stage=OTHER,
                    count=0,
                    total_s=gap,
                    share=(gap / wall[pipeline]) if wall[pipeline] > 0 else 0.0,
                )
            )
        out[pipeline] = PipelineBreakdown(
            pipeline=pipeline,
            samples=samples[pipeline],
            wall_s=wall[pipeline],
            stages=tuple(rows),
        )
    return out


def render_breakdown(breakdowns: dict[str, PipelineBreakdown]) -> str:
    """Fixed-width tables, one per pipeline (the Fig. 5/6 view)."""
    from repro.bench.report import format_table

    blocks: list[str] = []
    for pipeline in ("storage", "retrieval"):
        bd = breakdowns.get(pipeline)
        if bd is None:
            continue
        fig = "Fig. 5" if pipeline == "storage" else "Fig. 6"
        rows = []
        for s in bd.stages:
            rows.append(
                [s.stage, s.count, f"{s.total_s * 1e3:.3f}", f"{s.mean_s * 1e3:.3f}",
                 f"{s.share * 100:.1f}%"]
            )
            for c in s.centers:
                c_share = (c.total_s / bd.wall_s * 100) if bd.wall_s > 0 else 0.0
                rows.append(
                    [f"  . {c.center}", c.calls or "", f"{c.total_s * 1e3:.3f}", "",
                     f"{c_share:.1f}%"]
                )
        rows.append(["TOTAL (wall)", bd.samples, f"{bd.wall_s * 1e3:.3f}", "", "100.0%"])
        blocks.append(
            format_table(
                f"{pipeline} breakdown ({fig}): {bd.samples} sample(s), "
                f"{bd.coverage * 100:.1f}% attributed",
                ["stage", "n", "total ms", "mean ms", "share"],
                rows,
            )
        )
    return "\n\n".join(blocks)
