"""Command-line interface: ``python -m repro <command>``.

Session-scoped demos of the framework (the substrate is in-process, so
every invocation stands up a fresh network — there is no daemon):

* ``demo``                 — one item through the full store/retrieve path
* ``ingest``               — batch-ingest synthetic traffic videos, print throughput
* ``figure {2,3,4,5,6}``   — regenerate one of the paper's evaluation figures
* ``query "<text>"``       — run a query against a freshly populated demo set
* ``chaos``                — run a seeded fault-injection scenario (``chaos list`` to enumerate)
* ``lint``                 — run the reprolint static analyzer (determinism + hygiene rules)
* ``flowcheck``            — run the interprocedural flow analyzer (taint + lock analysis)
* ``sanitize-run``         — run a chaos scenario with the runtime sanitizers enabled
* ``metrics``              — run a traced demo, print the metrics (Prometheus/JSON)
* ``trace``                — run a traced demo, print the span tree + Fig. 5/6 breakdown
* ``critpath``             — cross-node critical path of a committed tx (stage/node/msg)
* ``prof``                 — cost-center profile of a chaos scenario (or the traced demo)
* ``bench-diff``           — gate fresh BENCH results against the checked-in baseline
* ``explorer``             — browse the ledger: blocks, txs, provenance, trust, audit
* ``health``               — component health + SLIs for a live deployment
* ``top``                  — live dashboard over a running chaos scenario
* ``info``                 — version and default configuration
"""

from __future__ import annotations

import argparse
import json
import sys

import repro


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Blockchain-enabled storage/retrieval framework (IPPS 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="store + retrieve one item end to end")

    ingest = sub.add_parser("ingest", help="batch-ingest synthetic traffic videos")
    ingest.add_argument("--videos", type=int, default=3)
    ingest.add_argument("--frames", type=int, default=3)
    ingest.add_argument("--batch", type=int, default=16)
    ingest.add_argument("--consensus", choices=["solo", "bft"], default="bft")

    figure = sub.add_parser("figure", help="regenerate a paper figure's series")
    figure.add_argument("number", type=int, choices=[2, 3, 4, 5, 6])

    query = sub.add_parser("query", help="run a query over a demo dataset")
    query.add_argument("text", help="query text, e.g. \"vehicle_class = 'truck'\"")
    query.add_argument("--videos", type=int, default=3)
    query.add_argument("--fetch", action="store_true", help="also fetch raw bytes from IPFS")
    query.add_argument(
        "--verify",
        action="store_true",
        help="attach Merkle membership proofs and verify the answer against "
        "the index epoch root (needs an index-routable predicate)",
    )

    export = sub.add_parser("export", help="export a demo dataset slice as a signed bundle")
    export.add_argument("out", help="output file for the bundle")
    export.add_argument("--query", default="", help="query selecting what to export")
    export.add_argument("--videos", type=int, default=2)

    inspect = sub.add_parser("inspect-bundle", help="verify and summarize a bundle file")
    inspect.add_argument("path", help="bundle file to inspect")

    metrics = sub.add_parser(
        "metrics", help="run a traced store+retrieve demo and print its metrics"
    )
    metrics.add_argument("--items", type=int, default=3, help="items to store+retrieve")
    metrics.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
        help="exposition format (default: prometheus text)",
    )

    trace = sub.add_parser(
        "trace", help="run a traced store+retrieve demo and print the span tree"
    )
    trace.add_argument("--items", type=int, default=1, help="items to store+retrieve")
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="also write a Chrome trace_event JSON (chrome://tracing)")
    trace.add_argument("--breakdown", action="store_true",
                       help="print the per-stage Fig. 5/6 latency decomposition")

    crit = sub.add_parser(
        "critpath",
        help="critical path of a committed tx across client/peers/orderer/validators",
    )
    crit.add_argument("tx_id", help="tx id (prefix ok), or 'latest' for the most recent")
    crit.add_argument("--items", type=int, default=1, help="items to store+retrieve first")
    crit.add_argument("--json", action="store_true", dest="as_json")
    crit.add_argument("--out", default=None, metavar="FILE",
                      help="write the tx's cross-node Chrome trace (one process row per node)")

    prof = sub.add_parser(
        "prof",
        help="run a workload under the cost-center profiler and print the profile",
    )
    prof.add_argument("target", nargs="?", default="standard",
                      help="chaos scenario name (see `repro chaos list`), or 'demo' "
                           "for the traced store+retrieve demo (default: standard)")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--cycles", type=int, default=None,
                      help="override the scenario's cycle count")
    prof.add_argument("--items", type=int, default=3,
                      help="items for the 'demo' target (default 3)")
    prof.add_argument("--top", type=int, default=20,
                      help="cost-center rows to print (default 20)")
    prof.add_argument("--json", action="store_true", dest="as_json",
                      help="print the profile (centers/locks/queues/coverage) as JSON")
    prof.add_argument("--collapsed", default=None, metavar="FILE",
                      help="write collapsed stacks (flamegraph.pl input)")
    prof.add_argument("--out", default=None, metavar="FILE",
                      help="write a Chrome trace_event JSON of the cost-center tree")
    prof.add_argument("--emit", default=None, metavar="NAME",
                      help="emit a BENCH_<NAME>.json profile envelope for bench-diff")
    prof.add_argument("--min-coverage", type=float, default=None, metavar="FRAC",
                      help="fail (exit 1) unless cost centers explain at least FRAC "
                           "of fabric.invoke wall time")

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare fresh BENCH_*.json results against the checked-in baseline",
    )
    bench_diff.add_argument("--baseline", default="benchmarks/results",
                            help="baseline directory (default: benchmarks/results)")
    bench_diff.add_argument("--current", default=None,
                            help="directory with the fresh run "
                                 "(default: $REPRO_BENCH_DIR)")
    bench_diff.add_argument("--bench", action="append", default=None, metavar="NAME",
                            help="bench name(s) to compare (default: all in current dir)")
    bench_diff.add_argument("--tolerance", type=float, default=0.1,
                            help="relative tolerance for deterministic metrics (default 0.1)")
    bench_diff.add_argument("--timing-tolerance", type=float, default=None,
                            help="relative tolerance for wall-time metrics "
                                 "(default: report-only, no gating)")
    bench_diff.add_argument("--json", action="store_true", dest="as_json")

    chaos = sub.add_parser(
        "chaos", help="run a seeded fault-injection scenario against a live deployment"
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser("run", help="run one scenario and print its report")
    chaos_run.add_argument("scenario", help="scenario name (see `repro chaos list`)")
    chaos_run.add_argument("--seed", type=int, default=0)
    chaos_run.add_argument("--cycles", type=int, default=None,
                           help="override the scenario's cycle count")
    chaos_run.add_argument("--metrics", action="store_true",
                           help="also print resilience/chaos metrics after the run")
    chaos_run.add_argument("--json", action="store_true", dest="as_json",
                           help="print the summary as JSON (for CI)")
    chaos_run.add_argument("--alerts", action="store_true",
                           help="evaluate the standard alert rules every cycle and "
                                "verify the expected fire→resolve lifecycle (CI health gate)")
    chaos_run.add_argument("--sanitize", default="", metavar="MODES",
                           help="enable runtime sanitizers for the run: 'all' or a comma "
                                "list of divergence,ledger,locks,consensus,recovery")
    chaos_sub.add_parser("list", help="list available scenarios")

    lint = sub.add_parser(
        "lint", help="run reprolint (determinism + hygiene rules) over source paths"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--baseline", default=".reprolint-baseline.json",
                      help="accepted-findings baseline file (missing = empty)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="accept all current findings into the baseline and exit 0")

    flowcheck = sub.add_parser(
        "flowcheck",
        help="run the interprocedural flow analyzer (nondeterminism taint "
             "FLOW5xx + static lock analysis FLOW6xx) over source paths",
    )
    flowcheck.add_argument("paths", nargs="*", default=["src/repro"],
                           help="files or directories to analyze (default: src/repro)")
    flowcheck.add_argument("--format", choices=["text", "json"], default="text")
    flowcheck.add_argument("--baseline", default=".reproflow-baseline.json",
                           help="accepted-findings baseline file (missing = empty)")
    flowcheck.add_argument("--update-baseline", action="store_true",
                           help="accept all current findings into the baseline and exit 0")
    flowcheck.add_argument("--callgraph-out", default=None, metavar="FILE",
                           help="also dump the resolved call graph as JSON to FILE")

    sanitize = sub.add_parser(
        "sanitize-run",
        help="run a chaos scenario with the runtime sanitizers on and report findings",
    )
    sanitize.add_argument("scenario", nargs="?", default="standard",
                          help="scenario name (see `repro chaos list`)")
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument("--cycles", type=int, default=None,
                          help="override the scenario's cycle count")
    sanitize.add_argument("--sanitize", default="all", metavar="MODES",
                          help="modes to enable (default: all)")
    sanitize.add_argument("--json", action="store_true", dest="as_json",
                          help="print the combined summary as JSON (for CI)")

    explorer = sub.add_parser(
        "explorer", help="browse a demo ledger: blocks, txs, provenance, trust, audit"
    )
    explorer.add_argument(
        "what", nargs="?", default="summary",
        choices=["summary", "blocks", "block", "tx", "provenance", "trust", "audit"],
    )
    explorer.add_argument("arg", nargs="?", default=None,
                          help="block number / tx id / entry id, where applicable")
    explorer.add_argument("--videos", type=int, default=2)
    explorer.add_argument("--json", action="store_true", dest="as_json")

    health = sub.add_parser(
        "health", help="component health + rolling SLIs for a live deployment"
    )
    health.add_argument("--items", type=int, default=3, help="items to store first")
    health.add_argument("--json", action="store_true", dest="as_json")

    top = sub.add_parser(
        "top", help="live health/alert dashboard over a running chaos scenario"
    )
    top.add_argument("--scenario", default="standard")
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--cycles", type=int, default=None)
    top.add_argument("--plain", action="store_true",
                     help="one status line per cycle instead of redrawing the screen")

    sub.add_parser("info", help="version and defaults")
    return parser


def _cmd_demo() -> int:
    from repro.core import Client, Framework, FrameworkConfig
    from repro.trust import SourceTier

    framework = Framework(FrameworkConfig())
    client = Client(framework, framework.register_source("cli-cam", tier=SourceTier.TRUSTED))
    receipt = client.submit(
        b"cli demo payload" * 64,
        {"timestamp": 1.0, "camera_id": "cli-cam",
         "detections": [{"vehicle_class": "car", "confidence": 0.9}]},
    )
    print(f"stored  : entry {receipt.entry_id[:16]}… cid {receipt.cid[:24]}… "
          f"block {receipt.block_number} ({receipt.validation_code.value})")
    result = client.retrieve(receipt.entry_id)
    print(f"fetched : {len(result.data)} bytes, integrity verified: {result.verified}")
    lineage = client.provenance(receipt.entry_id)
    print(f"lineage : {' -> '.join(e['action'] for e in lineage)}")
    return 0


def _cmd_ingest(args) -> int:
    from repro.core import BatchIngestor, Framework, FrameworkConfig
    from repro.trust import SourceTier
    from repro.workloads.traffic import ingest_stream

    framework = Framework(
        FrameworkConfig(consensus=args.consensus, max_batch_size=args.batch)
    )
    ingestor = BatchIngestor(framework, record_provenance=False)
    items = list(ingest_stream(n_videos=args.videos, frames_per_video=args.frames))
    for source in sorted({i.source_id for i in items}):
        ingestor.register(framework.register_source(source, tier=SourceTier.TRUSTED))
    report = ingestor.ingest(items)
    print(f"sources   : {args.videos} cameras, {len(items)} frames")
    print(f"committed : {report.committed}/{report.submitted} "
          f"in {report.blocks} blocks ({args.consensus} ordering)")
    print(f"throughput: {report.tx_per_s:.1f} tx/s, {report.mib_per_s:.1f} MiB/s")
    return 0


def _cmd_figure(number: int) -> int:
    from repro.bench import (
        fig2_sample_record,
        fig3_confidence,
        fig4_extraction_scatter,
        fig5_storage_times,
        fig6_retrieval_times,
        format_table,
        human_size,
    )

    if number == 2:
        print(json.dumps(fig2_sample_record(), indent=2, sort_keys=True))
    elif number == 3:
        series = fig3_confidence()
        rows = [[s.kind, len(s.confidences), f"{s.mean:.3f}", f"{s.std:.3f}"]
                for s in series.values()]
        print(format_table("Figure 3: confidence, static vs drone",
                           ["source", "n", "mean", "std"], rows))
    elif number == 4:
        points = fig4_extraction_scatter(n_frames=30)
        rows = [[size, f"{t * 1e3:.4f}"] for size, t in points[:15]]
        print(format_table("Figure 4: extraction time (first 15 records)",
                           ["record bytes", "ms"], rows))
    elif number in (5, 6):
        fn = fig5_storage_times if number == 5 else fig6_retrieval_times
        timings = fn(sizes=(1 << 10, 64 << 10, 1 << 20), repeats=2)
        verb = "storage" if number == 5 else "retrieval"
        rows = [[human_size(t.size), f"{t.ipfs_only_s * 1e3:.3f}",
                 f"{t.with_blockchain_s * 1e3:.3f}", f"{t.overhead_s * 1e3:.3f}"]
                for t in timings]
        print(format_table(f"Figure {number}: {verb} time (ms)",
                           ["size", "IPFS only", "with blockchain", "overhead"], rows))
    return 0


def _cmd_query(args) -> int:
    from repro.core import BatchIngestor, Client, Framework, FrameworkConfig
    from repro.trust import SourceTier
    from repro.workloads.traffic import ingest_stream

    framework = Framework(FrameworkConfig(consensus="solo", max_batch_size=16))
    ingestor = BatchIngestor(framework, record_provenance=False)
    items = list(ingest_stream(n_videos=args.videos, frames_per_video=2))
    identity = None
    for source in sorted({i.source_id for i in items}):
        identity = framework.register_source(source, tier=SourceTier.TRUSTED)
        ingestor.register(identity)
    ingestor.ingest(items)
    client = Client(framework, identity)
    print(f"dataset: {len(items)} frames from {args.videos} cameras")
    print(f"plan   : {client.engine.plan(args.text).explain()}")
    rows = client.query(args.text, fetch_data=args.fetch)
    print(f"matched: {len(rows)} records")
    for row in rows[:10]:
        meta = row.record["metadata"]
        extra = f", {len(row.data)} raw bytes" if row.data is not None else ""
        print(f"  {row.entry_id[:12]}…  {meta.get('camera_id', '?'):<10} "
              f"t={meta.get('timestamp', 0):>10.1f}  "
              f"detections={len(meta.get('detections', []))}{extra}")
    if args.verify:
        from repro.errors import MerkleProofError, QueryError

        try:
            answer = client.engine.run_verified(args.text)
            checked = answer.verify()
        except (QueryError, MerkleProofError) as exc:
            print(f"verify : FAIL — {exc}")
            return 1
        print(
            f"verify : OK — {checked} record(s) verified by "
            f"{len(answer.proofs)} proof(s) against epoch root "
            f"{answer.root[:16]}… at height {answer.height}"
        )
    return 0


def _demo_client(videos: int):
    from repro.core import BatchIngestor, Client, Framework, FrameworkConfig
    from repro.trust import SourceTier
    from repro.workloads.traffic import ingest_stream

    framework = Framework(FrameworkConfig(consensus="solo", max_batch_size=16))
    ingestor = BatchIngestor(framework, record_provenance=True)
    items = list(ingest_stream(n_videos=videos, frames_per_video=2))
    identity = None
    for source in sorted({i.source_id for i in items}):
        identity = framework.register_source(source, tier=SourceTier.TRUSTED)
        ingestor.register(identity)
    ingestor.ingest(items)
    return Client(framework, identity), len(items)


def _cmd_export(args) -> int:
    from repro.core.archive import export_bundle

    client, n_items = _demo_client(args.videos)
    raw = export_bundle(client, args.query)
    with open(args.out, "wb") as fh:
        fh.write(raw)
    print(f"dataset : {n_items} frames ingested")
    print(f"exported: {args.out} ({len(raw)} bytes), query {args.query!r}")
    return 0


def _cmd_inspect_bundle(path: str) -> int:
    from repro.core.archive import import_bundle

    with open(path, "rb") as fh:
        raw = fh.read()
    bundle, store = import_bundle(raw)
    print(f"bundle  : {len(bundle.entries)} entries from channel {bundle.channel!r}")
    print(f"exporter: {bundle.exporter['name']}@{bundle.exporter['org']} (signature OK)")
    print(f"query   : {bundle.query_text!r}")
    print(f"blocks  : {len(store)} content-addressed blocks, all hash-verified")
    for entry in bundle.entries[:5]:
        meta = entry.record["metadata"]
        print(f"  {entry.entry_id[:12]}…  {meta.get('camera_id', '?'):<10} "
              f"t={meta.get('timestamp', 0):>10.1f}  provenance={len(entry.provenance)} events")
    return 0


def _traced_demo(n_items: int):
    """Store + retrieve ``n_items`` under an active tracer and registry.

    Returns ``(tracer, registry)`` after the run; the tracer is left
    installed so the caller can export spans, and must be disabled by
    the caller.
    """
    from repro import obs
    from repro.core import Client, Framework, FrameworkConfig
    from repro.fabric.monitor import ChannelMonitor
    from repro.trust import SourceTier

    registry = obs.MetricsRegistry()
    obs.enable(registry=registry)
    framework = Framework(FrameworkConfig())
    ChannelMonitor(framework.channel, registry)
    framework.validator_pool.registry = registry
    client = Client(
        framework, framework.register_source("obs-cam", tier=SourceTier.TRUSTED)
    )
    for i in range(n_items):
        receipt = client.submit(
            b"observability demo payload %d " % i * 32,
            {"timestamp": float(i), "camera_id": "obs-cam",
             "detections": [{"vehicle_class": "car", "confidence": 0.9}]},
        )
        client.retrieve(receipt.entry_id)
    return obs.get_tracer(), registry


def _cmd_metrics(args) -> int:
    from repro import obs

    tracer, registry = _traced_demo(args.items)
    try:
        if args.format == "json":
            print(obs.metrics_json(registry, indent=2))
        else:
            print(obs.render_prometheus(registry), end="")
    finally:
        obs.disable()
    return 0


def _cmd_trace(args) -> int:
    from repro import obs

    tracer, _registry = _traced_demo(args.items)
    try:
        for line in tracer.tree_lines():
            print(line)
        if args.breakdown:
            print()
            print(obs.render_breakdown(obs.pipeline_breakdown(tracer)))
        if args.out:
            obs.write_chrome_trace(args.out, tracer)
            print(f"\nchrome trace: {args.out} "
                  f"({len(tracer.finished)} spans; open in chrome://tracing)")
    finally:
        obs.disable()
    return 0


def _cmd_critpath(args) -> int:
    from repro import obs
    from repro.errors import ObservabilityError
    from repro.obs.critpath import critical_path, write_chrome_trace_by_node

    tracer, _registry = _traced_demo(args.items)
    try:
        try:
            crit = critical_path(tracer, args.tx_id)
        except ObservabilityError as exc:
            print(f"repro critpath: {exc}", file=sys.stderr)
            return 2
        if args.as_json:
            print(json.dumps(crit.to_dict(), indent=2, sort_keys=True))
        else:
            for line in crit.render_lines():
                print(line)
        if args.out:
            write_chrome_trace_by_node(args.out, tracer, trace_id=crit.trace_id)
            print(f"\nchrome trace (node = process row): {args.out}")
    finally:
        obs.disable()
    return 0


def _cmd_prof(args) -> int:
    from repro import obs

    registry = obs.MetricsRegistry()
    obs.set_registry(registry)
    profiler = obs.enable_profiler(registry=registry)
    try:
        if args.target == "demo":
            tracer, _registry = _traced_demo(args.items)
        else:
            from repro.chaos import get_scenario
            from repro.errors import ReproError

            tracer = obs.enable(registry=registry)
            try:
                scenario = get_scenario(args.target, seed=args.seed, n_cycles=args.cycles)
            except ReproError as exc:
                print(f"repro prof: {exc}", file=sys.stderr)
                return 2
            scenario.run()
        report = profiler.report()
        coverage = obs.invoke_coverage(tracer, profiler)
        if args.as_json:
            doc = report.to_dict()
            doc["invoke_coverage"] = coverage
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            for line in report.render_lines(args.top):
                print(line)
            print()
            print(f"fabric.invoke coverage: {coverage * 100:.1f}% of wall time "
                  f"attributed to cost centers")
            print(f"fingerprint           : {report.fingerprint}")
        if args.collapsed:
            obs.write_collapsed(args.collapsed, profiler)
            print(f"collapsed stacks      : {args.collapsed} (flamegraph.pl input)")
        if args.out:
            obs.write_chrome_trace_tree(args.out, profiler)
            print(f"chrome trace          : {args.out} (cost-center tree)")
        if args.emit:
            from repro.bench.report import emit_json

            path = emit_json(
                args.emit,
                report.series(),
                meta={
                    "target": args.target,
                    "fingerprint": report.fingerprint,
                    "invoke_coverage": coverage,
                },
                seed=args.seed,
            )
            print(f"profile envelope      : {path}")
        if args.min_coverage is not None and coverage < args.min_coverage:
            print(
                f"repro prof: coverage {coverage:.3f} below required "
                f"{args.min_coverage:.3f}",
                file=sys.stderr,
            )
            return 1
    finally:
        obs.disable()
        obs.disable_profiler()
    return 0


def _cmd_bench_diff(args) -> int:
    import os

    from repro.errors import ObservabilityError
    from repro.obs.benchtrend import compare_dirs

    current = args.current or os.environ.get("REPRO_BENCH_DIR")
    if not current:
        print("repro bench-diff: no current directory "
              "(pass --current or set REPRO_BENCH_DIR)", file=sys.stderr)
        return 2
    try:
        report = compare_dirs(
            args.baseline, current,
            names=args.bench,
            tolerance=args.tolerance,
            timing_tolerance=args.timing_tolerance,
        )
    except ObservabilityError as exc:
        print(f"repro bench-diff: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in report.render_lines():
            print(line)
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    from repro.chaos import SCENARIOS, get_scenario
    from repro.obs.alerts import ChaosAlertProbe
    from repro.obs.metrics import MetricsRegistry, set_registry

    if args.chaos_command == "list":
        for name, factory in sorted(SCENARIOS.items()):
            doc = (factory.__doc__ or "").strip().splitlines()[0] if factory.__doc__ else ""
            print(f"{name:<12} {doc}")
        return 0

    registry = MetricsRegistry()
    set_registry(registry)
    scenario = get_scenario(args.scenario, seed=args.seed, n_cycles=args.cycles)
    sanitize_spec = getattr(args, "sanitize", "")
    if sanitize_spec:
        import dataclasses

        from repro.analysis.runtime import parse_modes
        from repro.errors import AnalysisError

        try:
            parse_modes(sanitize_spec)  # fail fast on a bad spec
        except AnalysisError as exc:
            print(f"repro chaos: {exc}", file=sys.stderr)
            return 2
        scenario.config = dataclasses.replace(scenario.config, sanitize=sanitize_spec)
    probe = None
    if args.alerts:
        probe = ChaosAlertProbe(registry=registry)
        scenario.on_cycle = probe
    report = scenario.run()
    summary = report.summary()
    sanitize_ok = True
    if sanitize_spec:
        from repro.analysis.runtime import active_sanitizer

        sanitizer = active_sanitizer()
        if sanitizer is not None:
            san_report = sanitizer.finalize()
            sanitize_ok = san_report.ok
            summary["sanitizers"] = san_report.to_dict()
    alerts_ok = True
    if probe is not None:
        alerts_ok, problems = probe.verify(args.scenario)
        summary["alerts"] = {
            "ok": alerts_ok,
            "fingerprint": probe.engine.fingerprint() if probe.engine else None,
            "log": [e.to_dict() for e in probe.engine.log] if probe.engine else [],
            "problems": problems,
        }
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"scenario   : {summary['scenario']} (seed {summary['seed']})")
        print(f"cycles     : {summary['submitted_ok']}/{summary['cycles']} submitted, "
              f"{summary['degraded_cycles']} degraded")
        print(f"faults     : {summary['faults_injected']} injected")
        print(f"data loss  : {summary['data_loss']} "
              f"({'ZERO — all stored entries survived' if summary['data_loss'] == 0 else 'entries lost'})")
        print(f"fingerprint: {summary['fingerprint']}")
        failed = [c for c in report.cycles
                  if c.submit_error or c.retrieve_error or c.repair_error]
        for c in failed[:20]:
            errs = "/".join(filter(None, (c.submit_error, c.retrieve_error, c.repair_error)))
            faults = f"  [{', '.join(c.faults)}]" if c.faults else ""
            print(f"  cycle {c.cycle:>3}: {errs}{faults}")
        if probe is not None and probe.engine is not None:
            print("alert log  :")
            for line in probe.engine.render_lines():
                print(f"  {line}")
            print(f"alert check: {'PASS' if alerts_ok else 'FAIL'}")
            for problem in summary["alerts"]["problems"]:
                print(f"  !! {problem}")
        if "sanitizers" in summary:
            print(f"sanitizers : {'PASS' if sanitize_ok else 'FAIL'} "
                  f"({', '.join(summary['sanitizers']['modes'])})")
            for f in summary["sanitizers"]["findings"]:
                print(f"  !! {f['rule_id']} {f['path']}:{f['line']}: {f['message']}")
    if args.metrics:
        from repro.obs import render_prometheus

        print()
        print(render_prometheus(registry), end="")
    return 0 if report.data_loss == 0 and alerts_ok and sanitize_ok else 1


def _cmd_lint(args) -> int:
    """Exit codes are pre-commit-friendly: 0 clean (or fully baselined),
    1 new findings, 2 usage error (bad path / baseline / rule id)."""
    from repro.analysis.baseline import diff_baseline, load_baseline, write_baseline
    from repro.analysis.linter import lint_paths
    from repro.errors import AnalysisError

    try:
        findings = lint_paths(args.paths)
        accepted = load_baseline(args.baseline)
    except AnalysisError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} finding(s) -> {args.baseline}")
        return 0
    new = diff_baseline(findings, accepted)
    baselined = len(findings) - len(new)
    if args.format == "json":
        print(json.dumps(
            {
                "paths": list(args.paths),
                "findings": [f.to_dict() for f in new],
                "baselined": baselined,
                "ok": not new,
            },
            indent=2, sort_keys=True,
        ))
    else:
        for finding in new:
            print(finding.render())
        print(f"reprolint: {len(new)} new finding(s), {baselined} baselined")
    return 1 if new else 0


def _cmd_flowcheck(args) -> int:
    """Same exit-code contract as ``repro lint``: 0 clean (or fully
    baselined), 1 new findings, 2 usage error."""
    from repro.analysis.baseline import diff_baseline, load_baseline, write_baseline
    from repro.analysis.flow import analyze_paths
    from repro.errors import AnalysisError

    try:
        report = analyze_paths(args.paths)
        accepted = load_baseline(args.baseline)
    except AnalysisError as exc:
        print(f"repro flowcheck: {exc}", file=sys.stderr)
        return 2
    if args.callgraph_out:
        try:
            with open(args.callgraph_out, "w", encoding="utf-8") as fh:
                json.dump(report.program.to_dict(), fh, indent=2, sort_keys=True)
        except OSError as exc:
            print(f"repro flowcheck: cannot write callgraph: {exc}", file=sys.stderr)
            return 2
    findings = report.findings
    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} finding(s) -> {args.baseline}")
        return 0
    new = diff_baseline(findings, accepted)
    baselined = len(findings) - len(new)
    if args.format == "json":
        print(json.dumps(
            {
                "paths": list(args.paths),
                "findings": [f.to_dict() for f in new],
                "baselined": baselined,
                "stats": report.stats,
                "ok": not new,
            },
            indent=2, sort_keys=True,
        ))
    else:
        for finding in new:
            print(finding.render())
        print(
            f"repro flowcheck: {len(new)} new finding(s), {baselined} baselined "
            f"({report.stats['modules']} modules, "
            f"{report.stats['functions']} functions, "
            f"{report.stats['call_edges']} call edges)"
        )
    return 1 if new else 0


def _cmd_sanitize_run(args) -> int:
    import dataclasses

    from repro.analysis.runtime import active_sanitizer, parse_modes
    from repro.chaos import get_scenario
    from repro.errors import AnalysisError
    from repro.obs.metrics import MetricsRegistry, set_registry

    try:
        parse_modes(args.sanitize)
    except AnalysisError as exc:
        print(f"repro sanitize-run: {exc}", file=sys.stderr)
        return 2
    set_registry(MetricsRegistry())
    scenario = get_scenario(args.scenario, seed=args.seed, n_cycles=args.cycles)
    scenario.config = dataclasses.replace(scenario.config, sanitize=args.sanitize)
    report = scenario.run()
    sanitizer = active_sanitizer()
    san_report = sanitizer.finalize() if sanitizer is not None else None
    if args.as_json:
        summary = report.summary()
        summary["sanitizers"] = san_report.to_dict() if san_report else None
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"scenario   : {args.scenario} (seed {args.seed}), "
              f"data loss {report.data_loss}")
        if san_report is not None:
            for line in san_report.render().splitlines():
                print(line)
        else:
            print("sanitizers : none enabled")
    ok = report.data_loss == 0 and (san_report is None or san_report.ok)
    return 0 if ok else 1


def _cmd_explorer(args) -> int:
    from repro.obs.explorer import LedgerExplorer

    client, n_items = _demo_client(args.videos)
    framework = client.framework
    explorer = LedgerExplorer(framework.channel, ipfs=framework.ipfs)

    def emit(payload) -> None:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))

    if args.what == "summary":
        summary = explorer.summary()
        if args.as_json:
            emit(summary)
            return 0
        print(f"channel   : {summary['channel']} (height {summary['height']})")
        print(f"orgs      : {', '.join(summary['orgs'])}")
        print(f"chaincodes: {', '.join(summary['chaincodes'])}")
        print(f"txs       : {summary['tx_by_code']}")
        for name, peer in summary["peers"].items():
            print(f"  {name:<14} height={peer['height']:<4} "
                  f"state_keys={peer['state_keys']:<5} online={peer['online']}")
        return 0
    if args.what == "blocks":
        blocks = explorer.blocks()
        if args.as_json:
            emit(blocks)
            return 0
        for b in blocks:
            txs = ", ".join(f"{t['chaincode']}.{t['fn']}({t['code']})"
                            for t in b["transactions"])
            print(f"block {b['number']:>3}  {b['hash'][:16]}…  {b['tx_count']} txs: {txs}")
        return 0
    if args.what == "block":
        emit(explorer.block_view(int(args.arg or 0)))
        return 0
    if args.what == "tx":
        if not args.arg:
            print("usage: repro explorer tx <tx_id>", file=sys.stderr)
            return 2
        emit(explorer.tx_view(args.arg))
        return 0
    if args.what == "provenance":
        entry_ids = [args.arg] if args.arg else explorer.entry_ids()
        for entry_id in entry_ids:
            trail = explorer.provenance_trail(entry_id)
            if args.as_json:
                emit({"entry_id": entry_id, "trail": trail})
                continue
            chain = " -> ".join(f"{e['action']}@{e['actor']}" for e in trail)
            print(f"{entry_id[:16]}…  {chain}")
        return 0
    if args.what == "trust":
        # The demo ingest scores sources engine-side only; snapshot the
        # scores on-chain so there is a timeline to chart.
        for source_id in framework.trust.sources():
            framework.record_trust_on_chain(source_id)
        for source_id in explorer.trust_sources():
            timeline = explorer.trust_timeline(source_id)
            if args.as_json:
                emit({"source_id": source_id, "timeline": timeline})
                continue
            scores = " -> ".join(f"{t['score']:.3f}" for t in timeline)
            print(f"{source_id:<12} {len(timeline)} updates: {scores}")
        return 0
    # audit
    report = explorer.audit_chain()
    if args.as_json:
        emit(report.to_dict())
    else:
        print(f"dataset: {n_items} frames ingested")
        for line in report.render_lines():
            print(line)
    return 0 if report.ok else 1


def _cmd_health(args) -> int:
    from repro.core import Client, Framework, FrameworkConfig
    from repro.crypto.cid import CID
    from repro.ipfs.replication import ReplicationManager
    from repro.obs.health import HealthMonitor
    from repro.obs.metrics import MetricsRegistry
    from repro.trust import SourceTier

    framework = Framework(
        FrameworkConfig(consensus="bft", peers_per_org=2, n_ipfs_nodes=3)
    )
    client = Client(
        framework, framework.register_source("health-cam", tier=SourceTier.TRUSTED)
    )
    manager = ReplicationManager(framework.ipfs, replication_factor=2)
    for i in range(args.items):
        receipt = client.submit(
            b"health probe payload %d " % i * 32,
            {"timestamp": float(i), "camera_id": "health-cam", "detections": []},
        )
        manager.replicate(CID.parse(receipt.cid))
    monitor = HealthMonitor(
        framework, registry=MetricsRegistry(), replication=manager
    )
    report = monitor.check()
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"deployment: bft, 2 orgs x 2 peers, 3 ipfs nodes, "
              f"{args.items} items stored")
        for line in report.render_lines():
            print(line)
    return 0 if report.healthy else 1


def _cmd_top(args) -> int:
    from repro.chaos import get_scenario
    from repro.obs.alerts import AlertEngine, ChaosAlertProbe
    from repro.obs.metrics import MetricsRegistry, set_registry

    registry = MetricsRegistry()
    set_registry(registry)
    scenario = get_scenario(args.scenario, seed=args.seed, n_cycles=args.cycles)
    probe = ChaosAlertProbe(registry=registry)
    n_cycles = scenario.n_cycles

    def draw(cycle: int, framework, manager) -> None:
        probe(cycle, framework, manager)
        report = probe.reports[-1]
        engine: AlertEngine = probe.engine
        if args.plain:
            active = ",".join(engine.active()) or "-"
            print(f"cycle {cycle:>3}/{n_cycles}  {report.status.label.upper():<9} "
                  f"alerts: {active}")
            return
        lines = [
            f"repro top — scenario {scenario.name} (seed {scenario.seed})  "
            f"cycle {cycle + 1}/{n_cycles}",
            "",
            *report.render_lines(),
            "",
            f"alerts firing: {', '.join(engine.active()) or 'none'}",
            "recent transitions:",
            *[f"  {line}" for line in engine.render_lines()[-8:]],
        ]
        sys.stdout.write("\x1b[H\x1b[2J" + "\n".join(lines) + "\n")
        sys.stdout.flush()

    scenario.on_cycle = draw
    report = scenario.run()
    ok, problems = probe.verify(args.scenario)
    print()
    print(f"run complete: {report.summary()['submitted_ok']}/{n_cycles} cycles "
          f"submitted, data loss {report.data_loss}")
    print("alert log:")
    for line in probe.engine.render_lines() if probe.engine else []:
        print(f"  {line}")
    for problem in problems:
        print(f"  !! {problem}")
    return 0 if report.data_loss == 0 else 1


def _cmd_info() -> int:
    from repro.core import FrameworkConfig

    config = FrameworkConfig()
    print(f"repro {repro.__version__}")
    print(f"default deployment: orgs={list(config.orgs)}, consensus={config.consensus}, "
          f"validators={config.n_validators}, ipfs nodes={config.n_ipfs_nodes}, "
          f"chunk={config.chunk_size // 1024} KiB")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "figure":
        return _cmd_figure(args.number)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "inspect-bundle":
        return _cmd_inspect_bundle(args.path)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "critpath":
        return _cmd_critpath(args)
    if args.command == "prof":
        return _cmd_prof(args)
    if args.command == "bench-diff":
        return _cmd_bench_diff(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "flowcheck":
        return _cmd_flowcheck(args)
    if args.command == "sanitize-run":
        return _cmd_sanitize_run(args)
    if args.command == "explorer":
        return _cmd_explorer(args)
    if args.command == "health":
        return _cmd_health(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "info":
        return _cmd_info()
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
