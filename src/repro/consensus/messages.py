"""Wire messages for the consensus protocols (PBFT and Raft)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any


# ---------------------------------------------------------------------------
# PBFT
# ---------------------------------------------------------------------------


class Phase(str, Enum):
    PRE_PREPARE = "pre-prepare"
    PREPARE = "prepare"
    COMMIT = "commit"


@dataclass(frozen=True)
class ClientRequest:
    """A payload a client asks the cluster to order and validate.

    ``n_items > 1`` marks a *batched* request: one consensus instance that
    orders several transactions at once. Replicas then vote per item (see
    :class:`Prepare`/:class:`Commit`), so agreement cost amortizes across
    the batch while per-transaction validity is still decided individually.
    """

    request_id: str
    payload: Any
    n_items: int = 1


@dataclass(frozen=True)
class PrePrepare:
    view: int
    seq: int
    digest: str
    request: ClientRequest


@dataclass(frozen=True)
class Prepare:
    view: int
    seq: int
    digest: str
    replica: str
    # The replica's independent validation verdict for the request; the
    # cluster decides transaction validity by a 2/3 quorum of these votes
    # (paper §III-A: "Validators then vote on the transaction's validity").
    # For batched requests ``valid`` is the aggregate (all items valid) and
    # ``item_votes`` carries the per-item verdicts, one per batch item.
    valid: bool
    item_votes: tuple[bool, ...] = ()

    def item_vote(self, i: int) -> bool:
        return self.item_votes[i] if self.item_votes else self.valid


@dataclass(frozen=True)
class Commit:
    view: int
    seq: int
    digest: str
    replica: str
    valid: bool
    item_votes: tuple[bool, ...] = ()

    def item_vote(self, i: int) -> bool:
        return self.item_votes[i] if self.item_votes else self.valid


@dataclass(frozen=True)
class Checkpoint:
    """Periodic proof of progress: replicas agreeing on the log prefix up
    to ``seq`` may garbage-collect that prefix's protocol state."""

    seq: int
    digest: str
    replica: str


@dataclass(frozen=True)
class ViewChange:
    new_view: int
    replica: str
    # Requests the replica saw pre-prepared but not yet committed; the new
    # primary re-proposes them so nothing accepted is lost.
    pending: tuple[ClientRequest, ...] = field(default_factory=tuple)
    # Highest sequence number this replica has *prepared* (sent a COMMIT
    # for). Any decided seq has 2f+1 commits, so at least f+1 honest
    # replicas prepared it — every view-change quorum therefore contains a
    # replica reporting max_seq at or above every decided slot, and the new
    # primary proposes strictly past it (the seq part of PBFT's new-view
    # computation, without shipping full prepared certificates).
    max_seq: int = -1


@dataclass(frozen=True)
class NewView:
    new_view: int
    primary: str


# ---------------------------------------------------------------------------
# Raft
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteReply:
    term: int
    voter: str
    granted: bool


@dataclass(frozen=True)
class LogEntry:
    term: int
    payload: Any


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclass(frozen=True)
class AppendReply:
    term: int
    follower: str
    success: bool
    match_index: int


@dataclass(frozen=True)
class InstallSnapshot:
    """Raft log compaction: ships the committed prefix to a follower whose
    next needed entry was already compacted away on the leader."""

    term: int
    leader: str
    last_included_index: int
    last_included_term: int
    payloads: tuple[Any, ...]  # the committed prefix, in order
