"""Consensus substrate: PBFT-style BFT (the paper's validator protocol) and
Raft (the crash-fault-tolerant baseline for ablations)."""

from repro.consensus.bft import Behaviour, BftCluster, BftReplica, Decision
from repro.consensus.messages import (
    AppendEntries,
    AppendReply,
    Checkpoint,
    ClientRequest,
    Commit,
    LogEntry,
    NewView,
    Phase,
    Prepare,
    PrePrepare,
    RequestVote,
    ViewChange,
    VoteReply,
)
from repro.consensus.raft import RaftCluster, RaftNode, Role

__all__ = [
    "Behaviour",
    "BftCluster",
    "BftReplica",
    "Decision",
    "AppendEntries",
    "AppendReply",
    "Checkpoint",
    "ClientRequest",
    "Commit",
    "LogEntry",
    "NewView",
    "Phase",
    "Prepare",
    "PrePrepare",
    "RequestVote",
    "ViewChange",
    "VoteReply",
    "RaftCluster",
    "RaftNode",
    "Role",
]
