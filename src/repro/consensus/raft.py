"""Raft consensus: the crash-fault-tolerant baseline for the BFT ablation.

Raft orders the same log with a simple majority (f+1 of 2f+1) and no
Byzantine defences: one round-trip per entry in the steady state versus
PBFT's three all-to-all phases. The ablation bench uses this contrast to
price the paper's choice of BFT ("how much does Byzantine tolerance cost
per transaction?").

Implemented per the Raft paper's Figure 2: randomized election timeouts,
RequestVote with log-up-to-date checks, AppendEntries with consistency
probing and follower log repair, majority-match commit advancement, and
log compaction with InstallSnapshot for followers that fall behind a
compacted leader. Membership changes are out of scope.

Log positions are 1-based *counts*: ``commit_index`` is the number of
committed entries, ``_global_len`` the total. After compaction the first
``len(_snapshot)`` positions live in the snapshot; the in-memory ``log``
holds the suffix.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable

from repro.consensus.messages import (
    AppendEntries,
    AppendReply,
    InstallSnapshot,
    LogEntry,
    RequestVote,
    VoteReply,
)
from repro.errors import ConsensusError
from repro.net import Message, NetNode, SimNetwork
from repro.util.rng import rng_for


class Role(str, Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


class RaftNode(NetNode):
    """One Raft server."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        cluster: "RaftCluster",
        election_timeout: tuple[float, float] = (0.15, 0.3),
        heartbeat_interval: float = 0.05,
    ) -> None:
        super().__init__(name, network)
        self.cluster = cluster
        self.role = Role.FOLLOWER
        self.term = 0
        self.voted_for: str | None = None
        self.log: list[LogEntry] = []
        self.commit_index = 0  # count of committed entries (global)
        self._snapshot: list[Any] = []  # payloads of the compacted prefix
        self._snapshot_term = 0
        self._votes: set[str] = set()
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._election_timeout = election_timeout
        self._heartbeat_interval = heartbeat_interval
        self._rng = rng_for(cluster.seed, "raft", name)
        self._timer_epoch = 0
        self._reset_election_timer()

    # -- log geometry ------------------------------------------------------------

    @property
    def _offset(self) -> int:
        return len(self._snapshot)

    @property
    def _global_len(self) -> int:
        return self._offset + len(self.log)

    def _term_at(self, position: int) -> int:
        """Term of the entry at 1-based ``position`` (0 = before genesis).

        Positions inside the compacted prefix only ever get asked for the
        boundary (``position == offset``); the snapshot term covers it.
        """
        if position == 0:
            return 0
        if position <= self._offset:
            return self._snapshot_term
        return self.log[position - self._offset - 1].term

    def _last_log_term(self) -> int:
        return self.log[-1].term if self.log else self._snapshot_term

    # -- timers ----------------------------------------------------------------

    def _reset_election_timer(self) -> None:
        self._timer_epoch += 1
        epoch = self._timer_epoch
        delay = float(self._rng.uniform(*self._election_timeout))
        self.after(delay, lambda: self._election_timeout_fired(epoch))

    def _election_timeout_fired(self, epoch: int) -> None:
        if epoch != self._timer_epoch or self.role is Role.LEADER:
            return
        if not self.network.is_up(self.name):
            # Crashed node: keep the timer alive so a restart resumes Raft.
            self._reset_election_timer()
            return
        self._start_election()

    def _start_election(self) -> None:
        self.role = Role.CANDIDATE
        self.term += 1
        self.voted_for = self.name
        self._votes = {self.name}
        self.broadcast(
            RequestVote(
                term=self.term,
                candidate=self.name,
                last_log_index=self._global_len,
                last_log_term=self._last_log_term(),
            ),
            kind="RequestVote",
        )
        self._reset_election_timer()
        self._maybe_win()

    def _maybe_win(self) -> None:
        if self.role is Role.CANDIDATE and len(self._votes) >= self.cluster.majority:
            self._become_leader()

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self._next_index = {p: self._global_len for p in self.cluster.node_names}
        self._match_index = {p: 0 for p in self.cluster.node_names}
        self._match_index[self.name] = self._global_len
        self.cluster.leader_changes += 1
        self._send_heartbeats()

    def _send_heartbeats(self) -> None:
        if self.role is not Role.LEADER:
            return
        if self.network.is_up(self.name):
            for peer in self.cluster.node_names:
                if peer != self.name:
                    self._replicate_to(peer)
        self.after(self._heartbeat_interval, self._send_heartbeats)

    # -- client entry -------------------------------------------------------------

    def propose(self, payload: Any) -> bool:
        """Append a client payload if this node is the leader."""
        if self.role is not Role.LEADER:
            return False
        self.log.append(LogEntry(term=self.term, payload=payload))
        self._match_index[self.name] = self._global_len
        for peer in self.cluster.node_names:
            if peer != self.name:
                self._replicate_to(peer)
        self._advance_commit()
        return True

    def _replicate_to(self, peer: str) -> None:
        next_idx = self._next_index.get(peer, self._global_len)
        if next_idx < self._offset:
            # The follower needs entries we compacted away: ship the snapshot.
            self.send(
                peer,
                InstallSnapshot(
                    term=self.term,
                    leader=self.name,
                    last_included_index=self._offset,
                    last_included_term=self._snapshot_term,
                    payloads=tuple(self._snapshot),
                ),
                size_bytes=256 + 64 * len(self._snapshot),
                kind="InstallSnapshot",
            )
            return
        entries = tuple(self.log[next_idx - self._offset :])
        self.send(
            peer,
            AppendEntries(
                term=self.term,
                leader=self.name,
                prev_log_index=next_idx,
                prev_log_term=self._term_at(next_idx),
                entries=entries,
                leader_commit=self.commit_index,
            ),
            size_bytes=256 + 64 * len(entries),
            kind="AppendEntries",
        )

    # -- log compaction -----------------------------------------------------------

    def compact(self) -> int:
        """Fold the committed prefix into the snapshot; returns entries
        compacted. Safe on any role — only committed entries move."""
        n = self.commit_index - self._offset
        if n <= 0:
            return 0
        moved = self.log[:n]
        self._snapshot.extend(e.payload for e in moved)
        self._snapshot_term = moved[-1].term
        del self.log[:n]
        return n

    def _on_install_snapshot(self, msg: InstallSnapshot) -> None:
        self._observe_term(msg.term)
        if msg.term < self.term:
            self.send(
                msg.leader,
                AppendReply(term=self.term, follower=self.name, success=False, match_index=0),
                kind="AppendReply",
            )
            return
        self.role = Role.FOLLOWER
        self._reset_election_timer()
        if msg.last_included_index > self.commit_index:
            # Adopt wholesale: everything we had is a prefix of (or diverges
            # from) the committed snapshot, which wins by definition.
            previous_commit = self.commit_index
            self._snapshot = list(msg.payloads)
            self._snapshot_term = msg.last_included_term
            self.log = []
            self.commit_index = msg.last_included_index
            for position in range(previous_commit + 1, self.commit_index + 1):
                self.cluster.notify_commit(
                    self.name, position, LogEntry(term=msg.last_included_term,
                                                  payload=self._snapshot[position - 1])
                )
        self.send(
            msg.leader,
            AppendReply(
                term=self.term,
                follower=self.name,
                success=True,
                match_index=max(self.commit_index, msg.last_included_index),
            ),
            kind="AppendReply",
        )

    # -- message handling ------------------------------------------------------------

    def on_message(self, msg: Message) -> None:
        payload = msg.payload
        if isinstance(payload, RequestVote):
            self._on_request_vote(payload)
        elif isinstance(payload, VoteReply):
            self._on_vote_reply(payload)
        elif isinstance(payload, AppendEntries):
            self._on_append(payload)
        elif isinstance(payload, AppendReply):
            self._on_append_reply(payload)
        elif isinstance(payload, InstallSnapshot):
            self._on_install_snapshot(payload)

    def _observe_term(self, term: int) -> None:
        if term > self.term:
            self.term = term
            self.role = Role.FOLLOWER
            self.voted_for = None

    def _on_request_vote(self, msg: RequestVote) -> None:
        self._observe_term(msg.term)
        grant = False
        if msg.term == self.term and self.voted_for in (None, msg.candidate):
            up_to_date = (msg.last_log_term, msg.last_log_index) >= (
                self._last_log_term(),
                self._global_len,
            )
            if up_to_date:
                grant = True
                self.voted_for = msg.candidate
                self._reset_election_timer()
        self.send(
            msg.candidate,
            VoteReply(term=self.term, voter=self.name, granted=grant),
            kind="VoteReply",
        )

    def _on_vote_reply(self, msg: VoteReply) -> None:
        self._observe_term(msg.term)
        if self.role is Role.CANDIDATE and msg.term == self.term and msg.granted:
            self._votes.add(msg.voter)
            self._maybe_win()

    def _on_append(self, msg: AppendEntries) -> None:
        self._observe_term(msg.term)
        if msg.term < self.term:
            self.send(
                msg.leader,
                AppendReply(term=self.term, follower=self.name, success=False, match_index=0),
                kind="AppendReply",
            )
            return
        # Valid leader for our term: stay/become follower, reset timer.
        self.role = Role.FOLLOWER
        self._reset_election_timer()
        # Consistency check at prev_log_index. Positions at or below our
        # snapshot boundary are committed, hence consistent by construction.
        consistent = True
        if msg.prev_log_index > self._global_len:
            consistent = False
        elif msg.prev_log_index > self._offset:
            consistent = self._term_at(msg.prev_log_index) == msg.prev_log_term
        if not consistent:
            self.send(
                msg.leader,
                AppendReply(term=self.term, follower=self.name, success=False, match_index=0),
                kind="AppendReply",
            )
            return
        # Append, truncating any conflicting suffix.
        position = msg.prev_log_index  # count of entries before the batch
        for entry in msg.entries:
            if position < self._offset:
                position += 1  # already compacted & committed here
                continue
            li = position - self._offset
            if li < len(self.log):
                if self.log[li].term != entry.term:
                    del self.log[li:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
            position += 1
        if msg.leader_commit > self.commit_index:
            self._commit_to(min(msg.leader_commit, self._global_len))
        self.send(
            msg.leader,
            AppendReply(
                term=self.term, follower=self.name, success=True, match_index=position
            ),
            kind="AppendReply",
        )

    def _on_append_reply(self, msg: AppendReply) -> None:
        self._observe_term(msg.term)
        if self.role is not Role.LEADER or msg.term != self.term:
            return
        if msg.success:
            self._match_index[msg.follower] = max(
                self._match_index.get(msg.follower, 0), msg.match_index
            )
            self._next_index[msg.follower] = self._match_index[msg.follower]
            self._advance_commit()
        else:
            # Back off and retry one entry earlier.
            self._next_index[msg.follower] = max(0, self._next_index.get(msg.follower, 1) - 1)
            self._replicate_to(msg.follower)

    def _advance_commit(self) -> None:
        """Commit the highest position replicated on a majority in this term."""
        for n in range(self._global_len, self.commit_index, -1):
            if self._term_at(n) != self.term:
                break  # only commit entries from the current term (Raft §5.4.2)
            replicated = sum(1 for m in self._match_index.values() if m >= n)
            if replicated >= self.cluster.majority:
                self._commit_to(n)
                break

    def _commit_to(self, n: int) -> None:
        while self.commit_index < n:
            position = self.commit_index + 1
            entry = self.log[position - self._offset - 1]
            self.commit_index += 1
            self.cluster.notify_commit(self.name, self.commit_index, entry)

    # -- inspection -----------------------------------------------------------------

    def committed_payloads(self) -> list[Any]:
        live = [e.payload for e in self.log[: self.commit_index - self._offset]]
        return list(self._snapshot) + live


class RaftCluster:
    """Builds and drives a Raft group on one SimNetwork."""

    def __init__(
        self,
        n_nodes: int = 3,
        network: SimNetwork | None = None,
        seed: int = 0,
        on_commit: Callable[[str, int, LogEntry], None] | None = None,
    ) -> None:
        if n_nodes < 2:
            raise ConsensusError("Raft needs at least 2 nodes")
        self.network = network or SimNetwork()
        self.seed = seed
        self.node_names = [f"raft-{i}" for i in range(n_nodes)]
        self._on_commit = on_commit
        self.leader_changes = 0
        self.nodes: dict[str, RaftNode] = {
            name: RaftNode(name, self.network, self) for name in self.node_names
        }

    @property
    def majority(self) -> int:
        return len(self.node_names) // 2 + 1

    def notify_commit(self, node: str, index: int, entry: LogEntry) -> None:
        if self._on_commit is not None:
            self._on_commit(node, index, entry)

    def leader(self) -> RaftNode | None:
        leaders = [
            n
            for n in self.nodes.values()
            if n.role is Role.LEADER and self.network.is_up(n.name)
        ]
        if not leaders:
            return None
        # With a partition there may be a stale leader; highest term wins.
        return max(leaders, key=lambda n: n.term)

    def elect(self, max_time: float = 10.0) -> RaftNode:
        """Run the network until a leader emerges."""
        deadline = self.network.clock.now() + max_time
        while self.network.clock.now() < deadline:
            self.network.run(until=self.network.clock.now() + 0.1)
            current = self.leader()
            if current is not None:
                return current
        raise ConsensusError("no leader elected within time bound")

    def submit(self, payload: Any, max_time: float = 10.0) -> None:
        """Propose through the current leader, electing one if needed."""
        leader = self.leader() or self.elect(max_time=max_time)
        if not leader.propose(payload):
            raise ConsensusError("leader lost its role mid-propose")

    def run(self, until: float | None = None) -> None:
        self.network.run(until=until)

    def committed_payloads(self, node: str | None = None) -> list[Any]:
        target = self.nodes[node] if node else (self.leader() or self.nodes[self.node_names[0]])
        return target.committed_payloads()
