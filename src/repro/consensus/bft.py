"""PBFT-style Byzantine fault tolerant consensus over the simulated network.

This is the consensus the paper's validators run (§III, §III-A): the primary
pre-prepares a client request; every replica independently validates it (the
hook where the validation smart contract executes), broadcasts its PREPARE
vote, and after a 2f-strong prepare quorum broadcasts COMMIT; a request is
*ordered* once 2f+1 commits arrive. Transaction *validity* is decided
separately from ordering, by counting the validators' verdict votes — a
transaction is accepted only if at least 2/3 of replicas voted valid, the
paper's acceptance rule. Invalid transactions are still ordered (so every
replica agrees on what was rejected), mirroring Fabric's validated-flag
commit.

Byzantine behaviour injection (:class:`Behaviour`) covers the faults the
paper's threat model names: crashed validators, silent ones, equivocators
that send conflicting digests, and corrupt validators that endorse invalid
transactions / reject valid ones. With n = 3f+1 replicas the protocol
tolerates f such faults; tests and the ablation bench drive it past that
bound to show where agreement degrades.

A lightweight view-change fires when a replica's commit timer expires:
replicas vote for view v+1, and on 2f+1 votes the new primary re-proposes
pending requests. Two safety rules carry PBFT's cross-view agreement
guarantee without shipping full prepared certificates: an honest replica
never prepares two different digests at one sequence number (even across
views), and view-change votes report the sender's highest prepared seq so
the new primary proposes strictly past every slot the quorum may have
decided. Repeatedly-misbehaving replicas can be reported to a
:class:`repro.trust.ValidatorPool` by the caller via per-decision vote data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

from repro.consensus.messages import (
    Checkpoint,
    ClientRequest,
    Commit,
    NewView,
    Prepare,
    PrePrepare,
    ViewChange,
)
from repro.errors import ConsensusError
from repro.net import Message, NetNode, SimNetwork
from repro.obs.prof import profiled
from repro.obs.tracer import span as obs_span
from repro.util.serialization import canonical_json


class Behaviour(str, Enum):
    """Fault model of a single replica."""

    NORMAL = "normal"
    CRASHED = "crashed"          # participates in nothing
    SILENT = "silent"            # receives but never sends
    EQUIVOCATE = "equivocate"    # primary-only: conflicting pre-prepares
    WRONG_DIGEST = "wrong-digest"  # votes on corrupted digests
    ALWAYS_VALID = "always-valid"    # endorses everything, even invalid
    ALWAYS_INVALID = "always-invalid"  # rejects everything, even valid


@dataclass(frozen=True)
class Decision:
    """One slot of the agreed log, identical on every honest replica.

    For a batched request (``request.n_items > 1``) the slot carries one
    verdict *per item*: ``item_accepted[i]`` is item i's 2/3-quorum outcome
    and ``item_votes[replica][i]`` that replica's vote on item i. The
    aggregate ``accepted``/``votes`` fields summarize the whole batch
    (accepted iff every item was accepted) so single-transaction consumers
    keep working unchanged.
    """

    seq: int
    view: int
    request: ClientRequest
    accepted: bool           # >= 2/3 of commit votes said "valid" (every item)
    valid_votes: int
    invalid_votes: int
    votes: dict[str, bool] = field(default_factory=dict, compare=False)
    item_accepted: tuple[bool, ...] = ()
    item_votes: dict[str, tuple[bool, ...]] = field(default_factory=dict, compare=False)


def _digest(request: ClientRequest) -> str:
    return hashlib.sha256(
        canonical_json({"id": request.request_id, "payload": request.payload})
    ).hexdigest()


@dataclass
class _SlotState:
    pre_prepare: PrePrepare | None = None
    prepares: dict[str, Prepare] = field(default_factory=dict)
    commits: dict[str, Commit] = field(default_factory=dict)
    my_verdict: tuple[bool, ...] | None = None  # one verdict per batch item
    sent_prepare: bool = False
    sent_commit: bool = False
    decided: bool = False
    decision: Decision | None = None


class BftReplica(NetNode):
    """One PBFT replica/validator."""

    def __init__(
        self,
        name: str,
        network: SimNetwork,
        cluster: "BftCluster",
        behaviour: Behaviour = Behaviour.NORMAL,
    ) -> None:
        super().__init__(name, network)
        self.cluster = cluster
        self.behaviour = behaviour
        self.view = 0
        self.log: list[Decision] = []
        self._slots: dict[tuple[int, int], _SlotState] = {}
        self._next_seq = 0  # primary-only counter
        self._assigned: set[str] = set()  # request ids this primary proposed
        self._decided_seqs: set[int] = set()
        # seq -> digest this replica has *prepared* (sent COMMIT for). An
        # honest replica never prepares two different digests at one seq —
        # even across views — which is what makes conflicting decisions at
        # the same slot impossible with at most f faults (see
        # _on_pre_prepare's guard).
        self._prepared_digest: dict[int, str] = {}
        self._view_votes: dict[int, dict[str, ViewChange]] = {}
        self._pending_timeouts: dict[str, bool] = {}
        self._rearms: dict[str, int] = {}  # view changes triggered per request
        self._checkpoint_votes: dict[tuple[int, str], set[str]] = {}
        self.stable_checkpoint = -1  # highest garbage-collected sequence
        if behaviour is Behaviour.CRASHED:
            network.set_node_up(name, False)

    # -- identity helpers ----------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.cluster.replica_names)

    @property
    def f(self) -> int:
        return (self.n - 1) // 3

    def is_primary(self) -> bool:
        return self.cluster.primary_for(self.view) == self.name

    def _quorum(self) -> int:
        # 2f+1 of 3f+1: the classic BFT quorum (>= two-thirds).
        return 2 * self.f + 1

    # -- sending with fault model ---------------------------------------------

    def _cast(self, payload: Any, size: int = 512) -> None:
        if self.behaviour in (Behaviour.CRASHED, Behaviour.SILENT):
            return
        self.broadcast(payload, size_bytes=size, kind=type(payload).__name__)
        # Loopback: a replica processes its own votes immediately.
        self._dispatch(payload)

    # -- client entry point -----------------------------------------------------

    def on_request(self, request: ClientRequest) -> None:
        """Handle a client request: primary proposes, others arm a timeout."""
        if not self.is_primary():
            self._arm_timeout(request)
            return
        if self.behaviour in (Behaviour.CRASHED, Behaviour.SILENT):
            return  # a dead primary stalls the slot until view change
        if request.request_id in self._assigned:
            return  # duplicate delivery (clients broadcast requests)
        self._assigned.add(request.request_id)
        seq = self._next_seq
        self._next_seq += 1
        digest = _digest(request)
        if self.behaviour is Behaviour.EQUIVOCATE:
            # Send conflicting digests to different halves of the cluster.
            for i, dst in enumerate(self.cluster.replica_names):
                if dst == self.name:
                    continue
                forged = digest if i % 2 == 0 else digest[::-1]
                self.send(
                    dst,
                    PrePrepare(self.view, seq, forged, request),
                    kind="PrePrepare",
                )
            self._dispatch(PrePrepare(self.view, seq, digest, request))
            return
        self._cast(PrePrepare(self.view, seq, digest, request))

    def _arm_timeout(self, request: ClientRequest) -> None:
        """Expect the request to commit within the view timeout."""
        self._pending_timeouts[request.request_id] = False
        self.after(self.cluster.view_timeout, lambda: self._check_timeout(request))

    def _check_timeout(self, request: ClientRequest) -> None:
        if self._pending_timeouts.get(request.request_id):
            return  # committed in time
        rearms = self._rearms.get(request.request_id, 0)
        if rearms >= self.cluster.max_view_changes:
            # Give up on this request: unbounded re-arming turns one lost
            # request into a permanent view-change storm under message
            # loss. Past the cap, recovery belongs to the client's retry
            # (which re-submits under a fresh request id).
            self._pending_timeouts.pop(request.request_id, None)
            return
        self._rearms[request.request_id] = rearms + 1
        self._start_view_change(self.view + 1, pending=(request,))
        # Re-arm: if the next primary is also faulty, keep rotating views.
        self.after(self.cluster.view_timeout, lambda: self._check_timeout(request))

    # -- message handling -----------------------------------------------------------

    def on_message(self, msg: Message) -> None:
        if self.behaviour is Behaviour.CRASHED:
            return
        with profiled("consensus.handle"):
            self._dispatch(msg.payload)

    def _dispatch(self, payload: Any) -> None:
        if isinstance(payload, ClientRequest):
            self.on_request(payload)
        elif isinstance(payload, PrePrepare):
            self._on_pre_prepare(payload)
        elif isinstance(payload, Prepare):
            self._on_prepare(payload)
        elif isinstance(payload, Commit):
            self._on_commit(payload)
        elif isinstance(payload, Checkpoint):
            self._on_checkpoint(payload)
        elif isinstance(payload, ViewChange):
            self._on_view_change(payload)
        elif isinstance(payload, NewView):
            self._on_new_view(payload)

    def _slot(self, view: int, seq: int) -> _SlotState:
        return self._slots.setdefault((view, seq), _SlotState())

    def _verdict_for(self, request: ClientRequest) -> tuple[bool, ...]:
        """Per-item validation verdicts for a (possibly batched) request."""
        n = max(1, request.n_items)
        if self.behaviour is Behaviour.ALWAYS_VALID:
            return (True,) * n
        if self.behaviour is Behaviour.ALWAYS_INVALID:
            return (False,) * n
        # The validation smart contract executes here (paper §III step 6).
        with obs_span("consensus.validate") as sp:
            sp.set_attr("replica", self.name)
            sp.set_attr("request", request.request_id)
            sp.set_attr("items", n)
            with profiled("consensus.validate"):
                verdict = self.cluster.validate(self.name, request)
        if isinstance(verdict, (tuple, list)):
            if len(verdict) != n:
                raise ConsensusError(
                    f"validator returned {len(verdict)} verdicts for a "
                    f"{n}-item request {request.request_id!r}"
                )
            return tuple(bool(v) for v in verdict)
        return (bool(verdict),) * n

    def _vote_digest(self, digest: str) -> str:
        if self.behaviour is Behaviour.WRONG_DIGEST:
            return digest[::-1]
        return digest

    def _on_pre_prepare(self, msg: PrePrepare) -> None:
        if msg.view != self.view:
            return
        # Cross-view safety guard: once prepared at this seq, never help a
        # later view's primary order a *different* request there. A decision
        # needs 2f+1 commits (>= f+1 honest preparers); two conflicting
        # decisions would need an honest replica to prepare both digests at
        # one seq, which this refusal rules out.
        prior = self._prepared_digest.get(msg.seq)
        if prior is not None and prior != msg.digest:
            return
        slot = self._slot(msg.view, msg.seq)
        if slot.pre_prepare is not None and slot.pre_prepare.digest != msg.digest:
            return  # equivocation detected: keep the first, ignore the fork
        # Honest replicas check the primary's digest against the request.
        if self.behaviour is Behaviour.NORMAL and _digest(msg.request) != msg.digest:
            return
        slot.pre_prepare = msg
        if slot.sent_prepare:
            return
        slot.sent_prepare = True
        # Independent validation — "each peer executes the smart contract
        # independently" (paper §III step 6).
        slot.my_verdict = self._verdict_for(msg.request)
        self._cast(
            Prepare(
                msg.view,
                msg.seq,
                self._vote_digest(msg.digest),
                self.name,
                all(slot.my_verdict),
                item_votes=slot.my_verdict,
            )
        )
        self._maybe_progress(msg.view, msg.seq)

    def _on_prepare(self, msg: Prepare) -> None:
        if msg.view != self.view:
            return
        slot = self._slot(msg.view, msg.seq)
        slot.prepares[msg.replica] = msg
        self._maybe_progress(msg.view, msg.seq)

    def _on_commit(self, msg: Commit) -> None:
        if msg.view != self.view:
            return
        slot = self._slot(msg.view, msg.seq)
        slot.commits[msg.replica] = msg
        if slot.decided and slot.decision is not None and slot.pre_prepare is not None:
            # Straggler commits keep enriching the decision's vote record so
            # accountability (validator flagging) judges every validator that
            # eventually voted, not just the first quorum. The verdict itself
            # never changes — the thresholds are mutually exclusive.
            if msg.digest == slot.pre_prepare.digest:
                slot.decision.votes.setdefault(msg.replica, msg.valid)
                n_items = len(slot.decision.item_accepted) or 1
                slot.decision.item_votes.setdefault(
                    msg.replica, tuple(msg.item_vote(i) for i in range(n_items))
                )
            return
        self._maybe_progress(msg.view, msg.seq)

    def _maybe_progress(self, view: int, seq: int) -> None:
        slot = self._slot(view, seq)
        if slot.pre_prepare is None:
            return
        digest = slot.pre_prepare.digest
        matching_prepares = [p for p in slot.prepares.values() if p.digest == digest]
        # Prepared: pre-prepare + 2f prepares matching the digest (own included).
        if not slot.sent_commit and len(matching_prepares) >= 2 * self.f + 1:
            slot.sent_commit = True
            self._prepared_digest.setdefault(seq, digest)
            n_items = max(1, slot.pre_prepare.request.n_items)
            verdict = slot.my_verdict if slot.my_verdict is not None else (False,) * n_items
            self._cast(
                Commit(
                    view,
                    seq,
                    self._vote_digest(digest),
                    self.name,
                    all(verdict),
                    item_votes=verdict,
                )
            )
        matching_commits = [c for c in slot.commits.values() if c.digest == digest]
        if slot.decided or len(matching_commits) < self._quorum():
            return
        # Validity thresholds are arrival-order independent and mutually
        # exclusive: with n = 3f+1 votes, "valid >= 2f+1" and
        # "invalid >= f+1" cannot both hold (2f+1 + f+1 > n), and honest
        # replicas vote identically, so every replica reaches one verdict —
        # applied independently to each item of a batched request.
        n_items = max(1, slot.pre_prepare.request.n_items)
        item_accepted: list[bool] = []
        for i in range(n_items):
            valid_i = sum(1 for c in matching_commits if c.item_vote(i))
            invalid_i = len(matching_commits) - valid_i
            if valid_i >= self._quorum():
                item_accepted.append(True)
            elif invalid_i >= self.f + 1:
                item_accepted.append(False)
            else:
                return  # ordered but some item's verdict not yet determined
        slot.decided = True
        self._decide(view, seq, slot, matching_commits, tuple(item_accepted))

    def _decide(
        self,
        view: int,
        seq: int,
        slot: _SlotState,
        commits: list[Commit],
        item_accepted: tuple[bool, ...],
    ) -> None:
        if seq in self._decided_seqs:
            return
        self._decided_seqs.add(seq)
        votes = {c.replica: c.valid for c in commits}
        valid = sum(1 for v in votes.values() if v)
        invalid = len(votes) - valid
        request = slot.pre_prepare.request  # type: ignore[union-attr]
        item_votes = {
            c.replica: tuple(c.item_vote(i) for i in range(len(item_accepted)))
            for c in commits
        }
        decision = Decision(
            seq=seq,
            view=view,
            request=request,
            accepted=all(item_accepted),
            valid_votes=valid,
            invalid_votes=invalid,
            votes=votes,
            item_accepted=item_accepted,
            item_votes=item_votes,
        )
        slot.decision = decision
        self.log.append(decision)
        self._pending_timeouts[request.request_id] = True
        self.cluster.notify_decision(self.name, decision)
        self._maybe_checkpoint()

    # -- checkpointing / log GC -----------------------------------------------

    def _log_digest(self, up_to_seq: int) -> str:
        """Digest of the decided log prefix — what checkpoints agree on."""
        prefix = sorted(
            (d.seq, d.request.request_id, d.accepted)
            for d in self.log
            if d.seq <= up_to_seq
        )
        return hashlib.sha256(canonical_json([list(p) for p in prefix])).hexdigest()

    def log_frontier(self, up_to_seq: int | None = None) -> tuple[int, str]:
        """Public checkpoint view of the decided log: ``(seq, prefix digest)``.

        With no argument, the frontier is the replica's highest decided
        sequence. Durable-storage checkpoints persist this pair so a
        restarted validator can prove its log prefix is the one that was
        persisted (see :mod:`repro.storage.persistence`).
        """
        seq = (
            up_to_seq
            if up_to_seq is not None
            else max((d.seq for d in self.log), default=-1)
        )
        return seq, self._log_digest(seq)

    def _maybe_checkpoint(self) -> None:
        interval = self.cluster.checkpoint_interval
        if interval <= 0:
            return
        decided = {d.seq for d in self.log}
        # Checkpoint at the highest contiguous multiple-of-interval frontier.
        target = -1
        seq = self.stable_checkpoint + interval
        while set(range(0, seq + 1)) <= decided | set(range(0, self.stable_checkpoint + 1)):
            target = seq
            seq += interval
        if target < 0:
            return
        digest = self._log_digest(target)
        self._cast(Checkpoint(seq=target, digest=digest, replica=self.name), size=128)

    def _on_checkpoint(self, msg: Checkpoint) -> None:
        if msg.seq <= self.stable_checkpoint:
            return
        votes = self._checkpoint_votes.setdefault((msg.seq, msg.digest), set())
        votes.add(msg.replica)
        if len(votes) >= self._quorum():
            self._gc_to(msg.seq)

    def _gc_to(self, seq: int) -> None:
        """A checkpoint at ``seq`` is stable: discard protocol state for
        every slot at or below it (the decided log itself is kept)."""
        self.stable_checkpoint = max(self.stable_checkpoint, seq)
        for key in [k for k in self._slots if k[1] <= seq]:
            del self._slots[key]
        for prepared_seq in [s for s in self._prepared_digest if s <= seq]:
            del self._prepared_digest[prepared_seq]
        for key in [k for k in self._checkpoint_votes if k[0] <= seq]:
            del self._checkpoint_votes[key]

    # -- view change -------------------------------------------------------------

    def _max_prepared_seq(self) -> int:
        """Highest seq this replica prepared (a stable checkpoint implies
        everything at or below it was decided, hence prepared)."""
        return max(max(self._prepared_digest, default=-1), self.stable_checkpoint)

    def _start_view_change(self, new_view: int, pending: tuple[ClientRequest, ...] = ()) -> None:
        if new_view <= self.view:
            return
        self._cast(
            ViewChange(
                new_view=new_view,
                replica=self.name,
                pending=pending,
                max_seq=self._max_prepared_seq(),
            )
        )

    def _on_view_change(self, msg: ViewChange) -> None:
        if msg.new_view <= self.view:
            return
        votes = self._view_votes.setdefault(msg.new_view, {})
        votes[msg.replica] = msg
        if self.name not in votes and len(votes) > self.f:
            # PBFT's amplification rule: once f+1 peers vouch for a higher
            # view, at least one honest replica timed out — join the view
            # change so desynced views reconverge under message loss. The
            # loopback of our own vote re-enters this handler and runs the
            # quorum check below with the updated vote set.
            self._cast(
                ViewChange(
                    new_view=msg.new_view,
                    replica=self.name,
                    pending=(),
                    max_seq=self._max_prepared_seq(),
                )
            )
            return
        if len(votes) >= self._quorum():
            self._enter_view(msg.new_view)
            if self.is_primary():
                # Continue past every slot the quorum may have decided: any
                # decided seq was prepared by >= f+1 honest replicas, and a
                # 2f+1 vote quorum intersects them — so the reported
                # max_seq frontier covers it and re-proposals land on fresh
                # sequence numbers instead of colliding with old decisions.
                safe_seq = max(vc.max_seq for vc in votes.values())
                self._next_seq = max(self._next_seq, safe_seq + 1)
                self._cast(NewView(new_view=self.view, primary=self.name))
                # Re-propose every pending request reported by the quorum.
                seen: set[str] = set()
                for vc in votes.values():
                    for req in vc.pending:
                        if req.request_id not in seen and req.request_id not in (
                            d.request.request_id for d in self.log
                        ):
                            seen.add(req.request_id)
                            self.on_request(req)

    def _on_new_view(self, msg: NewView) -> None:
        if msg.new_view > self.view:
            self._enter_view(msg.new_view)

    def _enter_view(self, view: int) -> None:
        self.view = view
        # Primary's sequence counter continues past anything it has decided.
        if self._decided_seqs:
            self._next_seq = max(self._next_seq, max(self._decided_seqs) + 1)


class BftCluster:
    """Builds and drives a set of PBFT replicas on one SimNetwork.

    ``validator(replica_name, request)`` is the per-replica validation hook —
    the framework plugs chaincode execution in here. For batched requests
    (``n_items > 1``) it may return a sequence of per-item verdicts; a bare
    bool applies to every item. ``on_decision`` fires once per
    (replica, decision).
    """

    def __init__(
        self,
        n_replicas: int = 4,
        network: SimNetwork | None = None,
        validator: Callable[[str, ClientRequest], bool] | None = None,
        behaviours: dict[str, Behaviour] | None = None,
        view_timeout: float = 5.0,
        on_decision: Callable[[str, Decision], None] | None = None,
        checkpoint_interval: int = 0,
        max_view_changes: int = 8,
    ) -> None:
        if n_replicas < 4:
            raise ConsensusError("PBFT needs n >= 4 (n = 3f+1, f >= 1)")
        self.network = network or SimNetwork()
        self.replica_names = [f"validator-{i}" for i in range(n_replicas)]
        self._validator = validator or (lambda name, req: True)
        self.view_timeout = view_timeout
        self.max_view_changes = max_view_changes
        self.checkpoint_interval = checkpoint_interval
        self._on_decision = on_decision
        behaviours = behaviours or {}
        self.replicas: dict[str, BftReplica] = {
            name: BftReplica(
                name, self.network, self, behaviours.get(name, Behaviour.NORMAL)
            )
            for name in self.replica_names
        }
        self._client_seq = 0

    # -- cluster facts ---------------------------------------------------------

    @property
    def f(self) -> int:
        return (len(self.replica_names) - 1) // 3

    def primary_for(self, view: int) -> str:
        return self.replica_names[view % len(self.replica_names)]

    def validate(self, replica: str, request: ClientRequest):
        return self._validator(replica, request)

    def notify_decision(self, replica: str, decision: Decision) -> None:
        if self._on_decision is not None:
            self._on_decision(replica, decision)

    # -- driving ------------------------------------------------------------------

    def submit(
        self, payload: Any, request_id: str | None = None, n_items: int = 1
    ) -> ClientRequest:
        """Inject a client request at a non-primary replica (worst case path).

        ``n_items > 1`` submits a batched request: one consensus instance
        whose replicas vote per item (agreement amortized over the batch).
        """
        if request_id is None:
            request_id = f"req-{self._client_seq}"
            self._client_seq += 1
        request = ClientRequest(request_id=request_id, payload=payload, n_items=n_items)
        # Clients broadcast the request to every replica (the PBFT variant
        # with client broadcast): the primary proposes it, the others arm
        # commit timeouts so a dead primary triggers a view change.
        with obs_span("consensus.round") as sp:
            sp.set_attr("request", request.request_id)
            sp.set_attr("items", n_items)
            for replica in self.replicas.values():
                if self.network.is_up(replica.name):
                    with profiled("consensus.handle"):
                        replica.on_request(request)
        return request

    def run(self, until: float | None = None) -> None:
        if self.network.pending() == 0:
            self.network.run(until=until)  # nothing queued: no span noise
            return
        with obs_span("consensus.run") as sp:
            sp.set_attr("events", self.network.run(until=until))

    # -- inspection ------------------------------------------------------------------

    def honest_replicas(self) -> list[BftReplica]:
        return [
            r
            for r in self.replicas.values()
            if r.behaviour in (Behaviour.NORMAL, Behaviour.ALWAYS_VALID, Behaviour.ALWAYS_INVALID)
            and self.network.is_up(r.name)
        ]

    def decided_log(self) -> list[Decision]:
        """The agreed log, taken from any honest NORMAL replica with the
        longest log (all honest logs must be prefix-consistent)."""
        normals = [
            r
            for r in self.replicas.values()
            if r.behaviour is Behaviour.NORMAL and self.network.is_up(r.name)
        ]
        if not normals:
            raise ConsensusError("no honest replica available")
        best = max(normals, key=lambda r: len(r.log))
        return sorted(best.log, key=lambda d: d.seq)

    def log_prefix_consistent(self) -> bool:
        """PBFT's safety property, checked directly: no two live honest
        NORMAL replicas may have decided the same sequence number
        differently — different request, or different verdicts. A replica
        can legitimately be *missing* a seq (it was down or partitioned
        when that slot decided), so logs are compared per shared seq, not
        positionally. Used by the consensus sanitizer (SAN306)."""
        by_seq: dict[int, tuple] = {}
        for replica in self.replicas.values():
            if replica.behaviour is not Behaviour.NORMAL or not self.network.is_up(replica.name):
                continue
            for d in replica.log:
                key = (d.request.request_id, d.accepted, d.item_accepted)
                if by_seq.setdefault(d.seq, key) != key:
                    return False
        return True

    def agreement_reached(self, request_id: str) -> bool:
        """Did every live honest replica decide this request identically?"""
        decisions = []
        for replica in self.replicas.values():
            if replica.behaviour is not Behaviour.NORMAL or not self.network.is_up(replica.name):
                continue
            mine = [d for d in replica.log if d.request.request_id == request_id]
            if not mine:
                return False
            decisions.append((mine[0].seq, mine[0].accepted))
        return len(set(decisions)) == 1 and bool(decisions)
