"""Query AST: filter expressions over on-chain metadata records.

Records are the JSON documents the Data Upload chaincode stores (Figure 2
metadata plus envelope fields). Field paths use dots into nested objects
(``metadata.timestamp``, ``metadata.location.lat``); the special path
``vehicle_class`` matches any detection in the record — the common "frames
containing a truck" query shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import QueryError

# Paths that quantify over an array of sub-records rather than a scalar:
# the predicate matches when ANY element matches.
ARRAY_PATHS = {
    "vehicle_class": "metadata.detections",
    "color": "metadata.detections",
    "violation_type": "metadata.violations",
}
# Backwards-compatible alias (original name for the detections subset).
DETECTION_PATHS = set(ARRAY_PATHS)


def get_path(record: dict, path: str) -> Any:
    """Resolve a dotted path; missing segments yield None."""
    current: Any = record
    for part in path.split("."):
        if not isinstance(current, dict) or part not in current:
            return None
        current = current[part]
    return current


class Expr:
    """Base filter expression."""

    def matches(self, record: dict) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class Compare(Expr):
    field: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unknown operator {self.op!r}")

    def matches(self, record: dict) -> bool:
        if self.field in ARRAY_PATHS:
            elements = get_path(record, ARRAY_PATHS[self.field]) or []
            return any(self._cmp(e.get(self.field)) for e in elements)
        return self._cmp(get_path(record, self.field))

    def _cmp(self, actual: Any) -> bool:
        if actual is None:
            return False
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False  # cross-type comparisons never match


@dataclass(frozen=True)
class InSet(Expr):
    field: str
    values: tuple[Any, ...]

    def matches(self, record: dict) -> bool:
        if self.field in ARRAY_PATHS:
            elements = get_path(record, ARRAY_PATHS[self.field]) or []
            return any(e.get(self.field) in self.values for e in elements)
        return get_path(record, self.field) in self.values


@dataclass(frozen=True)
class And(Expr):
    parts: tuple[Expr, ...]

    def matches(self, record: dict) -> bool:
        return all(p.matches(record) for p in self.parts)


@dataclass(frozen=True)
class Or(Expr):
    parts: tuple[Expr, ...]

    def matches(self, record: dict) -> bool:
        return any(p.matches(record) for p in self.parts)


@dataclass(frozen=True)
class Not(Expr):
    inner: Expr

    def matches(self, record: dict) -> bool:
        return not self.inner.matches(record)


@dataclass(frozen=True)
class TrueExpr(Expr):
    """Matches everything (empty WHERE clause)."""

    def matches(self, record: dict) -> bool:
        return True


@dataclass(frozen=True)
class Query:
    """A complete query: projection + filter + ordering + limit."""

    where: Expr = field(default_factory=TrueExpr)
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    # Projection: dotted paths to keep; None = whole records. entry_id and
    # cid are always preserved so results stay retrievable.
    select: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit < 0:
            raise QueryError("limit must be non-negative")
        if self.select is not None and not self.select:
            raise QueryError("SELECT needs at least one field")

    def apply_post(self, records: list[dict]) -> list[dict]:
        """Ordering, limit, and projection, applied after filtering."""
        out = records
        if self.order_by is not None:
            path = self.order_by
            out = sorted(
                out,
                key=lambda r: (get_path(r, path) is None, get_path(r, path)),
                reverse=self.descending,
            )
        if self.limit is not None:
            out = out[: self.limit]
        if self.select is not None:
            out = [self._project(r) for r in out]
        return out

    def _project(self, record: dict) -> dict:
        projected: dict = {}
        for path in ("entry_id", "cid"):
            if path in record:
                projected[path] = record[path]
        for path in self.select or ():
            value = get_path(record, path)
            if value is not None:
                _set_path(projected, path, value)
        return projected


def _set_path(doc: dict, path: str, value) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        current = current.setdefault(part, {})
    current[parts[-1]] = value


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten top-level ANDs — what the planner inspects for index use."""
    if isinstance(expr, And):
        out: list[Expr] = []
        for part in expr.parts:
            out.extend(conjuncts(part))
        return out
    if isinstance(expr, TrueExpr):
        return []
    return [expr]
