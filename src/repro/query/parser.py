"""Parser for the framework's small query language.

Grammar (case-insensitive keywords)::

    query   := [ "SELECT" field { "," field } ]
               [ "WHERE" ] [ or_expr ]
               [ "ORDER" "BY" field [ "ASC" | "DESC" ] ]
               [ "LIMIT" int ]
    or_expr := and_expr { "OR" and_expr }
    and_expr:= unary { "AND" unary }
    unary   := "NOT" unary | "(" or_expr ")" | comparison
    comparison := field op value | field "IN" "(" value {"," value} ")"
    op      := "=" | "!=" | ">" | ">=" | "<" | "<="
    value   := 'string' | number | true | false

Examples the examples/ scripts run::

    camera_id = 'cam-07' AND metadata.timestamp >= 1000
    vehicle_class IN ('truck', 'bus') ORDER BY metadata.timestamp DESC LIMIT 5
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryParseError
from repro.query.ast import And, Compare, Expr, InSet, Not, Or, Query, TrueExpr

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op>>=|<=|!=|=|>|<)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<comma>,)
      | (?P<word>[A-Za-z_][A-Za-z0-9_.~-]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "where", "and", "or", "not", "in", "order", "by", "asc", "desc",
    "limit", "true", "false",
}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise QueryParseError(f"cannot tokenize query at: {remainder[:20]!r}")
        pos = match.end()
        for kind, value in match.groupdict().items():
            if value is not None:
                if kind == "word" and value.lower() in _KEYWORDS:
                    tokens.append(_Token("keyword", value.lower()))
                else:
                    tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self.pos += 1
        return token

    def accept_keyword(self, *words: str) -> str | None:
        token = self.peek()
        if token is not None and token.kind == "keyword" and token.text in words:
            self.pos += 1
            return token.text
        return None

    def expect(self, kind: str) -> _Token:
        token = self.next()
        if token.kind != kind:
            raise QueryParseError(f"expected {kind}, got {token.text!r}")
        return token

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Query:
        select: tuple[str, ...] | None = None
        if self.accept_keyword("select"):
            fields = [self.expect("word").text]
            while self.peek() is not None and self.peek().kind == "comma":
                self.next()
                fields.append(self.expect("word").text)
            select = tuple(fields)
        self.accept_keyword("where")
        where: Expr = TrueExpr()
        token = self.peek()
        if token is not None and not (token.kind == "keyword" and token.text in ("order", "limit")):
            where = self.parse_or()
        order_by = None
        descending = False
        if self.accept_keyword("order"):
            if not self.accept_keyword("by"):
                raise QueryParseError("ORDER must be followed by BY")
            order_by = self.expect("word").text
            if self.accept_keyword("desc"):
                descending = True
            else:
                self.accept_keyword("asc")
        limit = None
        if self.accept_keyword("limit"):
            limit_token = self.expect("number")
            if "." in limit_token.text:
                raise QueryParseError("LIMIT must be an integer")
            limit = int(limit_token.text)
        if self.peek() is not None:
            raise QueryParseError(f"trailing input at {self.peek().text!r}")
        return Query(
            where=where,
            order_by=order_by,
            descending=descending,
            limit=limit,
            select=select,
        )

    def parse_or(self) -> Expr:
        parts = [self.parse_and()]
        while self.accept_keyword("or"):
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Expr:
        parts = [self.parse_unary()]
        while self.accept_keyword("and"):
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_unary(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self.parse_unary())
        token = self.peek()
        if token is not None and token.kind == "lparen":
            self.next()
            inner = self.parse_or()
            self.expect("rparen")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        field = self.expect("word").text
        if self.accept_keyword("in"):
            self.expect("lparen")
            values = [self.parse_value()]
            while self.peek() is not None and self.peek().kind == "comma":
                self.next()
                values.append(self.parse_value())
            self.expect("rparen")
            return InSet(field=field, values=tuple(values))
        op_token = self.next()
        if op_token.kind != "op":
            raise QueryParseError(f"expected comparison operator, got {op_token.text!r}")
        return Compare(field=field, op=op_token.text, value=self.parse_value())

    def parse_value(self):
        token = self.next()
        if token.kind == "string":
            return token.text[1:-1].replace("\\'", "'")
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            return token.text == "true"
        raise QueryParseError(f"expected a value, got {token.text!r}")


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`repro.query.ast.Query`."""
    tokens = _tokenize(text)
    if not tokens:
        return Query()
    return _Parser(tokens).parse_query()
