"""Hybrid query engine: parse → plan (index selection) → execute across the
blockchain (metadata) and IPFS (raw data) with integrity verification."""

from repro.query.ast import (
    And,
    Compare,
    Expr,
    InSet,
    Not,
    Or,
    Query,
    TrueExpr,
    conjuncts,
    get_path,
)
from repro.query.aggregate import (
    Avg,
    Count,
    Max,
    Metric,
    Min,
    Std,
    Sum,
    aggregate,
    explode,
    time_series,
)
from repro.query.executor import QueryEngine, QueryRow, QueryStats, VerifiedAnswer
from repro.query.parser import parse_query
from repro.query.planner import AccessPath, IndexRoute, Plan, plan_query

__all__ = [
    "And",
    "Compare",
    "Expr",
    "InSet",
    "Not",
    "Or",
    "Query",
    "TrueExpr",
    "conjuncts",
    "get_path",
    "Avg",
    "Count",
    "Max",
    "Metric",
    "Min",
    "Std",
    "Sum",
    "aggregate",
    "explode",
    "time_series",
    "QueryEngine",
    "QueryRow",
    "QueryStats",
    "VerifiedAnswer",
    "parse_query",
    "AccessPath",
    "IndexRoute",
    "Plan",
    "plan_query",
]
