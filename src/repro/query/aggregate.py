"""Aggregation over query results: the analyst's summary layer.

The paper's users — "law enforcement and analysts" — rarely want raw rows;
they want counts per camera, average confidence per vehicle class, traffic
volume over time. This module aggregates the record dictionaries the query
engine returns (group-by, count/sum/avg/min/max, time-bucketed series),
including aggregation *over detections* (one record holds many) via the
``explode`` option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import QueryError
from repro.query.ast import get_path


@dataclass(frozen=True)
class Metric:
    """One named aggregation over a field path (None path = row count)."""

    name: str
    kind: str  # count | sum | avg | min | max | std
    path: str | None = None

    _KINDS = ("count", "sum", "avg", "min", "max", "std")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise QueryError(f"unknown metric kind {self.kind!r}")
        if self.kind != "count" and self.path is None:
            raise QueryError(f"metric {self.kind!r} needs a field path")

    def compute(self, rows: list[dict]) -> float | int:
        if self.kind == "count":
            return len(rows)
        values = [
            v
            for v in (get_path(r, self.path) for r in rows)  # type: ignore[arg-type]
            if isinstance(v, (int, float))
        ]
        if not values:
            return 0
        arr = np.asarray(values, dtype=float)
        return {
            "sum": float(arr.sum()),
            "avg": float(arr.mean()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "std": float(arr.std()),
        }[self.kind]


def Count(name: str = "count") -> Metric:
    return Metric(name=name, kind="count")


def Avg(path: str, name: str | None = None) -> Metric:
    return Metric(name=name or f"avg({path})", kind="avg", path=path)


def Sum(path: str, name: str | None = None) -> Metric:
    return Metric(name=name or f"sum({path})", kind="sum", path=path)


def Min(path: str, name: str | None = None) -> Metric:
    return Metric(name=name or f"min({path})", kind="min", path=path)


def Max(path: str, name: str | None = None) -> Metric:
    return Metric(name=name or f"max({path})", kind="max", path=path)


def Std(path: str, name: str | None = None) -> Metric:
    return Metric(name=name or f"std({path})", kind="std", path=path)


def explode(records: list[dict], path: str) -> list[dict]:
    """Flatten a list-valued field into one row per element.

    Each output row is the parent record plus the element's fields merged
    at the top level (element keys win). ``explode(rows,
    "metadata.detections")`` turns frame records into detection rows.
    """
    out: list[dict] = []
    for record in records:
        items = get_path(record, path)
        if not isinstance(items, list):
            continue
        for item in items:
            if isinstance(item, dict):
                merged = dict(record)
                merged.update(item)
                out.append(merged)
    return out


def aggregate(
    records: list[dict],
    metrics: list[Metric],
    group_by: str | None = None,
    key_fn: Callable[[dict], Any] | None = None,
) -> dict[Any, dict[str, float | int]]:
    """Group records and compute each metric per group.

    ``group_by`` is a field path; ``key_fn`` overrides it for computed
    keys (e.g. time buckets). With neither, everything is one group keyed
    ``"all"``.
    """
    if group_by is not None and key_fn is not None:
        raise QueryError("pass group_by or key_fn, not both")
    if not metrics:
        raise QueryError("at least one metric is required")
    if key_fn is None:
        if group_by is None:
            key_fn = lambda r: "all"
        else:
            key_fn = lambda r: get_path(r, group_by)
    groups: dict[Any, list[dict]] = {}
    for record in records:
        groups.setdefault(key_fn(record), []).append(record)
    return {
        key: {m.name: m.compute(rows) for m in metrics}
        for key, rows in sorted(groups.items(), key=lambda kv: str(kv[0]))
    }


def time_series(
    records: list[dict],
    metrics: list[Metric],
    time_path: str = "metadata.timestamp",
    bucket_s: float = 600.0,
) -> dict[float, dict[str, float | int]]:
    """Aggregate into fixed time buckets keyed by bucket start time."""
    if bucket_s <= 0:
        raise QueryError("bucket_s must be positive")

    def key_fn(record: dict):
        ts = get_path(record, time_path)
        if not isinstance(ts, (int, float)):
            return None
        return float(int(ts // bucket_s) * bucket_s)

    out = aggregate(records, metrics, key_fn=key_fn)
    out.pop(None, None)  # records without a timestamp fall out of the series
    return out
