"""Query planner: choose the cheapest on-chain access path.

The Data Upload chaincode maintains composite-key indexes by source,
camera, vehicle class, and time bucket. The planner inspects the query's
top-level conjuncts for a predicate one of those indexes can serve, emits
the corresponding chaincode call, and keeps the whole filter as a residual
(indexes narrow the candidate set; the residual guarantees correctness).
With no usable predicate it falls back to the full ``list_all`` scan.

When the same predicate is servable by the peers' block-incremental
authenticated index (:mod:`repro.index`), the plan additionally carries an
:class:`IndexRoute` — the executor prefers it (a direct posting lookup on
an in-sync peer, no chaincode scan) and falls back to the chaincode access
path when no peer serves the index at the snapshot height.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import Compare, Expr, InSet, Query, conjuncts


@dataclass(frozen=True)
class AccessPath:
    """One chaincode invocation that yields candidate records."""

    fn: str
    args: tuple[str, ...]
    index: str  # human-readable name for EXPLAIN-style output


@dataclass(frozen=True)
class IndexRoute:
    """One posting lookup in the authenticated secondary index.

    Equality predicates carry ``(dim, value)``; time-window predicates
    carry ``time_range`` (``[lower, upper)``, upper already widened the
    same way as the chaincode access path).
    """

    dim: str
    value: str = ""
    time_range: tuple[float, float] | None = None

    def describe(self) -> str:
        if self.time_range is not None:
            return f"{self.dim}[{self.time_range[0]}, {self.time_range[1]})"
        return f"{self.dim}={self.value}"


@dataclass(frozen=True)
class Plan:
    paths: tuple[AccessPath, ...]
    residual: Expr
    full_scan: bool
    index_route: IndexRoute | None = None

    def explain(self) -> str:
        if self.full_scan:
            return "FULL SCAN data:* -> filter"
        steps = ", ".join(f"{p.index}({', '.join(p.args)})" for p in self.paths)
        out = f"INDEX {steps} -> filter"
        if self.index_route is not None:
            out += f" [authenticated route: {self.index_route.describe()}]"
        return out


# field -> (index name, chaincode fn); equality predicates only.
_EQUALITY_INDEXES = {
    "source_id": ("by_source", "list_by_source"),
    "camera_id": ("by_camera", "list_by_camera"),
    "metadata.camera_id": ("by_camera", "list_by_camera"),
    "vehicle_class": ("by_class", "list_by_vehicle_class"),
    "violation_type": ("by_violation", "list_by_violation"),
}

# field -> posting dimension in the peers' authenticated index.
_INDEX_DIMS = {
    "source_id": "source",
    "camera_id": "camera",
    "metadata.camera_id": "camera",
    "vehicle_class": "class",
    "violation_type": "violation",
}

_TIME_FIELD = "metadata.timestamp"


def plan_query(query: Query) -> Plan:
    parts = conjuncts(query.where)

    # Preference order: the most selective index first — source/camera
    # pinpoint one device; vehicle class is broader; time range broader still.
    for field in ("source_id", "camera_id", "metadata.camera_id"):
        path = _equality_path(parts, field)
        if path is not None:
            return Plan(
                paths=(path,),
                residual=query.where,
                full_scan=False,
                index_route=IndexRoute(dim=_INDEX_DIMS[field], value=path.args[0]),
            )

    for field in ("violation_type", "vehicle_class"):
        path = _equality_path(parts, field)
        if path is not None:
            return Plan(
                paths=(path,),
                residual=query.where,
                full_scan=False,
                index_route=IndexRoute(dim=_INDEX_DIMS[field], value=path.args[0]),
            )

    time_path = _time_range_path(parts)
    if time_path is not None:
        return Plan(
            paths=(time_path,),
            residual=query.where,
            full_scan=False,
            index_route=IndexRoute(
                dim="time",
                time_range=(float(time_path.args[0]), float(time_path.args[1])),
            ),
        )

    return Plan(
        paths=(AccessPath(fn="list_all", args=(), index="full"),),
        residual=query.where,
        full_scan=True,
    )


def _equality_path(parts: list[Expr], field: str) -> AccessPath | None:
    index, fn = _EQUALITY_INDEXES[field]
    for part in parts:
        if isinstance(part, Compare) and part.field == field and part.op == "=":
            return AccessPath(fn=fn, args=(str(part.value),), index=index)
        if isinstance(part, InSet) and part.field == field and len(part.values) == 1:
            return AccessPath(fn=fn, args=(str(part.values[0]),), index=index)
    return None


def _time_range_path(parts: list[Expr]) -> AccessPath | None:
    lower, upper = None, None
    for part in parts:
        if not isinstance(part, Compare) or part.field != _TIME_FIELD:
            continue
        if not isinstance(part.value, (int, float)):
            continue
        if part.op in (">", ">="):
            lower = part.value if lower is None else max(lower, part.value)
        elif part.op in ("<", "<="):
            upper = part.value if upper is None else min(upper, part.value)
        elif part.op == "=":
            lower = upper = part.value
    if lower is None or upper is None:
        return None  # half-open ranges would scan unbounded buckets
    # list_by_time_range filters [start, end); widen the upper edge so
    # "<= t" and "= t" include t itself.
    return AccessPath(
        fn="list_by_time_range",
        args=(str(float(lower)), str(float(upper) + 1e-9)),
        index="by_time",
    )
