"""Query engine: the paper's hybrid on-chain / off-chain retrieval path.

Figure 1's retrieval flow (Ⓐ–Ⓓ): the user's query goes to the query
processor, which routes the metadata part to the *blockchain query
executor* (a chaincode read on a peer — no ordering, no consensus cost)
and, when raw data is requested, the CID part to the *database query
executor* (an IPFS fetch). Every fetched payload is verified against the
on-chain record twice over — the CID must hash-match the bytes (content
addressing) and the stored SHA-256 ``data_hash`` must match as well — the
"verification of retrieved data against its metadata stored on the
blockchain" the paper guarantees.

When the plan carries an :class:`~repro.query.planner.IndexRoute`, the
metadata half is served from a peer's block-incremental authenticated
index (:mod:`repro.index`) instead of a chaincode scan: a posting lookup
plus direct world-state point reads, sublinear in chain height. The
chaincode access path remains the fallback (and the parity oracle — the
``index`` sanitizer cross-checks the two answers byte-for-byte).
:meth:`QueryEngine.run_verified` additionally attaches Merkle membership
proofs a light client can check against a trusted epoch root without
replaying the chain.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from dataclasses import dataclass, field

from repro.analysis.lockcheck import guard_shared, make_lock
from repro.crypto.cid import CID
from repro.errors import EncodingError, IntegrityError, QueryError
from repro.fabric.channel import Channel
from repro.fabric.identity import Identity
from repro.ipfs.cluster import IpfsCluster
from repro.obs.metrics import get_registry
from repro.obs.prof import profiled
from repro.obs.tracer import span as obs_span
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.planner import IndexRoute, Plan, plan_query
from repro.util.parallel import parallel_map

_DATA_PREFIX = "data:"


@dataclass(frozen=True)
class QueryRow:
    """One result: the on-chain record, optionally joined with raw bytes.

    ``verified`` is only True when the fetched bytes were actually checked
    against an on-chain ``data_hash`` — a record with no stored hash comes
    back ``verified=False`` even under ``verify=True``, never silently
    passing (the CID content-address check still ran either way).
    """

    record: dict
    data: bytes | None = None
    verified: bool = False

    @property
    def entry_id(self) -> str:
        return self.record["entry_id"]

    @property
    def cid(self) -> str:
        return self.record["cid"]


@dataclass
class QueryStats:
    queries: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    bytes_fetched: int = 0
    integrity_checks: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    index_hits: int = 0     # queries answered from the authenticated index
    index_misses: int = 0   # index-routable queries that fell back to scan


@dataclass(frozen=True)
class VerifiedAnswer:
    """An indexed query answer plus the proofs that authenticate it.

    ``records`` are the matching on-chain records (metadata only, no
    projection — proofs bind full record bytes); ``proofs`` are the
    posting proofs covering them; ``root`` is the epoch digest they verify
    against at chain ``height``. :meth:`verify` is the light-client check:
    no chain access, just the proofs, the records, and a trusted root.
    """

    records: tuple[dict, ...]
    proofs: tuple  # tuple[PostingProof, ...]
    root: str
    height: int

    def verify(self, trusted_root: str | None = None) -> int:
        from repro.index import verify_answer_records

        return verify_answer_records(
            list(self.records), self.proofs, trusted_root or self.root
        )


@dataclass
class QueryEngine:
    """Routes queries across the blockchain and IPFS executors."""

    channel: Channel
    cluster: IpfsCluster
    identity: Identity
    retrieval_chaincode: str = "data_retrieval"
    stats: QueryStats = field(default_factory=QueryStats)
    # Metadata-only results cached per query text, valid while the chain
    # height is unchanged (any new block may contain new matching records).
    cache_enabled: bool = True
    # Worker threads fetching payloads concurrently share the stats object;
    # the lock keeps its counters exact.
    fetch_workers: int | None = None
    # Route plans through the peers' authenticated secondary index when one
    # is attached and in sync (fall back to chaincode scans otherwise).
    use_index: bool = True
    # The cache is bounded: at most this many distinct query texts, FIFO
    # eviction (deterministic — dict preserves insertion order).
    cache_max_entries: int = 256
    _cache: dict[str, tuple[int, list["QueryRow"]]] = field(default_factory=dict)
    # make_lock: a plain Lock normally; instrumented for lock-order and
    # guarded-write checking when the repro.analysis sanitizers are active.
    _stats_lock: threading.Lock = field(
        default_factory=lambda: make_lock("query.stats"), repr=False
    )

    def __post_init__(self) -> None:
        # Under the locks sanitizer, any _cache mutation outside
        # _stats_lock surfaces as a SAN402 finding.
        self._cache = guard_shared(self._cache, self._stats_lock, "query.cache")

    # -- planning -------------------------------------------------------------

    def plan(self, query: Query | str) -> Plan:
        if isinstance(query, str):
            query = parse_query(query)
        return plan_query(query)

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        query: Query | str,
        fetch_data: bool = False,
        verify: bool = True,
    ) -> list[QueryRow]:
        """Execute a query; optionally join raw IPFS data per row.

        Metadata-only results (``fetch_data=False``) are cached per query
        text while the chain height is unchanged — reads are the hot path
        of the paper's retrieval story, and an unchanged chain cannot
        change their answer. The cache entry is keyed on the chain height
        observed *before* execution: a block committed mid-query makes the
        stored snapshot stale against the new height, so the next run
        re-executes instead of serving pre-commit rows as fresh. The cache
        holds at most ``cache_max_entries`` query texts (FIFO eviction).

        With ``fetch_data=True`` the per-row IPFS payloads are fetched
        concurrently on a thread pool (``fetch_workers`` caps the pool).
        """
        with obs_span("query.run") as sp:
            if isinstance(query, str):
                sp.set_attr("query", query[:80])
            sp.set_attr("fetch_data", fetch_data)
            # Snapshot the height first: the result set reflects the chain
            # as of *at most* this height, and the cache must not claim
            # freshness beyond it.
            height_snapshot = self.channel.height()
            cache_key = None
            if self.cache_enabled and not fetch_data and isinstance(query, str):
                cache_key = query
                with self._stats_lock:
                    cached = self._cache.get(cache_key)
                    if cached is not None and cached[0] == height_snapshot:
                        self.stats.cache_hits += 1
                        self.stats.queries += 1
                        sp.set_attr("cache_hit", True)
                        return list(cached[1])
            with obs_span("query.plan"):
                if isinstance(query, str):
                    query = parse_query(query)
                plan = plan_query(query)
            route = plan.index_route if self.use_index else None
            candidates = None
            if route is not None:
                candidates = self._execute_index(route, height_snapshot)
            used_index = candidates is not None
            if route is not None:
                get_registry().counter(
                    "query_index_route_total",
                    {"route": "index" if used_index else "fallback"},
                ).inc()
            if candidates is None:
                candidates = self._execute_paths(plan)
            matched = [r for r in candidates if plan.residual.matches(r)]
            matched = query.apply_post(matched)
            if used_index:
                self._check_index_parity(query, plan, matched)
            if fetch_data:
                fetched = parallel_map(
                    lambda record: self.fetch_payload_verified(record, verify=verify),
                    matched,
                    max_workers=self.fetch_workers,
                    queue="query.fetch",
                )
                rows = [
                    QueryRow(record=record, data=data, verified=verified)
                    for record, (data, verified) in zip(matched, fetched)
                ]
            else:
                rows = [QueryRow(record=record) for record in matched]
            with self._stats_lock:
                self.stats.queries += 1
                self.stats.rows_scanned += len(candidates)
                self.stats.rows_returned += len(rows)
                if route is not None:
                    if used_index:
                        self.stats.index_hits += 1
                    else:
                        self.stats.index_misses += 1
                if cache_key is not None:
                    self._cache_store(cache_key, height_snapshot, rows)
            sp.set_attr("rows", len(rows))
            sp.set_attr("index_route", used_index)
            return rows

    def run_verified(self, query: Query | str) -> VerifiedAnswer:
        """Execute an index-routable query and attach membership proofs.

        The answer's posting proofs authenticate every returned record
        against the index's current epoch root — a light client verifies
        with :meth:`VerifiedAnswer.verify` (optionally against a root it
        trusts out-of-band, e.g. one journaled in the WAL or reported by
        the explorer) without replaying the chain. ``ORDER BY``/``LIMIT``
        apply; ``SELECT`` projection does not (proofs bind whole records).
        """
        if isinstance(query, str):
            query = parse_query(query)
        plan = plan_query(query)
        route = plan.index_route
        if route is None:
            raise QueryError(
                "query has no index-routable predicate; membership proofs "
                "need an equality or time-window predicate on an indexed field"
            )
        height = self.channel.height()
        peer = self._index_peer(height)
        if peer is None:
            raise QueryError(
                "no online peer serves the authenticated index at the "
                "current chain height"
            )
        index = peer.index
        if route.time_range is not None:
            dims = [("time", v) for v in index.time_buckets(*route.time_range)]
            entry_ids = index.lookup_time_range(*route.time_range)
        else:
            # An unindexed value has nothing to prove: the answer is empty
            # with zero proofs (absence proofs are out of scope).
            dims = [(route.dim, route.value)] if index.has(route.dim, route.value) else []
            entry_ids = index.lookup(route.dim, route.value)
        proofs = tuple(index.prove(dim, value) for dim, value in dims)
        candidates = self._load_records(peer, entry_ids)
        matched = [r for r in candidates if plan.residual.matches(r)]
        matched = dataclasses.replace(query, select=None).apply_post(matched)
        with self._stats_lock:
            self.stats.queries += 1
            self.stats.rows_scanned += len(candidates)
            self.stats.rows_returned += len(matched)
            self.stats.index_hits += 1
        return VerifiedAnswer(
            records=tuple(matched),
            proofs=proofs,
            root=index.root(),
            height=index.height,
        )

    # -- the blockchain executors ---------------------------------------------

    def _execute_paths(self, plan: Plan) -> list[dict]:
        seen: set[str] = set()
        out: list[dict] = []
        with obs_span("query.chain_read") as sp:
            sp.set_attr("paths", len(plan.paths))
            for path in plan.paths:
                raw = self.channel.query(
                    self.identity, self.retrieval_chaincode, path.fn, list(path.args)
                )
                for record in json.loads(raw):
                    entry_id = record.get("entry_id")
                    if entry_id is None or entry_id in seen:
                        continue
                    seen.add(entry_id)
                    out.append(record)
            # Candidates in entry-id order on every path (chaincode index
            # scans arrive bucket-major; the authenticated index arrives
            # sorted) so LIMIT-without-ORDER-BY is deterministic and the
            # two routes stay byte-identical.
            out.sort(key=lambda r: r["entry_id"])
            sp.set_attr("rows", len(out))
        return out

    def _index_peer(self, height: int):
        """An online peer whose ledger *and* index are at ``height``."""
        indexing = getattr(self.channel, "indexing", None)
        if indexing is not None:
            return indexing.reference_peer(height)
        for name in sorted(self.channel.peers):
            peer = self.channel.peers[name]
            if (
                peer.online
                and peer.ledger.height == height
                and getattr(peer, "index", None) is not None
                and peer.index.height == height
            ):
                return peer
        return None

    @staticmethod
    def _load_records(peer, entry_ids: list[str]) -> list[dict]:
        out = []
        for entry_id in entry_ids:
            raw = peer.world.get(_DATA_PREFIX + entry_id)
            if raw is not None:
                out.append(json.loads(raw))
        return out

    def _execute_index(self, route: IndexRoute, height: int) -> list[dict] | None:
        """Serve candidates from a peer's secondary index; None = fall back.

        A posting lookup plus point reads of the matching records — no
        chaincode range scan, no per-query proposal signing. ``entry_ids``
        come back sorted, so candidates are already in entry-id order.
        """
        peer = self._index_peer(height)
        if peer is None:
            return None
        with obs_span("query.index_read") as sp:
            if route.time_range is not None:
                entry_ids = peer.index.lookup_time_range(*route.time_range)
            else:
                entry_ids = peer.index.lookup(route.dim, route.value)
            out = self._load_records(peer, entry_ids)
            sp.set_attr("rows", len(out))
        return out

    def _check_index_parity(self, query: Query, plan: Plan, matched: list[dict]) -> None:
        """SAN309: under the ``index`` sanitizer, re-run the chaincode scan
        path and require a byte-identical answer."""
        from repro.analysis.runtime import active_sanitizer

        sanitizer = active_sanitizer()
        if sanitizer is None or "index" not in sanitizer.modes:
            return
        scanned = [r for r in self._execute_paths(plan) if plan.residual.matches(r)]
        scanned = query.apply_post(scanned)
        sanitizer.check_query_parity(plan.explain(), matched, scanned)

    # -- cache (callers hold _stats_lock) ----------------------------------------

    def _cache_store(self, key: str, height: int, rows: list[QueryRow]) -> None:
        if key not in self._cache:
            while len(self._cache) >= max(1, self.cache_max_entries):
                oldest = next(iter(self._cache))
                del self._cache[oldest]
                self.stats.cache_evictions += 1
                get_registry().counter("query_cache_evictions_total").inc()
        self._cache[key] = (height, list(rows))

    # -- point lookups ---------------------------------------------------------------

    def get(self, entry_id: str, fetch_data: bool = False, verify: bool = True) -> QueryRow:
        with obs_span("query.get") as sp:
            sp.set_attr("entry_id", entry_id)
            raw = self.channel.query(
                self.identity, self.retrieval_chaincode, "get_data", [entry_id]
            )
            record = json.loads(raw)
            data, verified = None, False
            if fetch_data:
                data, verified = self.fetch_payload_verified(record, verify=verify)
            return QueryRow(record=record, data=data, verified=verified)

    # -- the off-chain executor ----------------------------------------------------------

    def fetch_payload(self, record: dict, verify: bool = True) -> bytes:
        """Fetch the raw bytes for a record from IPFS and verify integrity."""
        data, _ = self.fetch_payload_verified(record, verify=verify)
        return data

    def fetch_payload_verified(
        self, record: dict, verify: bool = True
    ) -> tuple[bytes, bool]:
        """Fetch a record's bytes and report whether integrity was *proven*.

        Returns ``(data, verified)``. ``verified`` is True only when the
        record carried an on-chain ``data_hash`` and the bytes matched it;
        a record with no stored hash yields ``verified=False`` rather than
        pretending the check passed. A hash mismatch raises
        :class:`~repro.errors.IntegrityError`. A missing *or malformed*
        ``cid`` field raises a typed :class:`~repro.errors.QueryError`
        (never a raw parse exception).
        """
        with obs_span("query.fetch") as sp:
            try:
                cid = CID.parse(record["cid"])
            except KeyError:
                raise QueryError("record has no CID") from None
            except (EncodingError, ValueError, TypeError, AttributeError) as exc:
                # EncodingError: undecodable CID text; TypeError/Attribute-
                # Error: a non-string cid field (e.g. a number or null).
                raise QueryError(
                    f"record for entry {record.get('entry_id')!r} has a "
                    f"malformed CID: {exc}"
                ) from exc
            data = self.cluster.cat(cid)
            sp.set_attr("bytes", len(data))
            with self._stats_lock:
                self.stats.bytes_fetched += len(data)
            if not verify:
                return data, False
            with obs_span("query.verify") as vsp:
                stored_hash = record.get("data_hash")
                if stored_hash is None:
                    # Nothing on-chain to verify against: the CID check
                    # (content addressing) ran, but the paper's metadata
                    # cross-check could not — surface that honestly.
                    vsp.set_attr("missing_data_hash", True)
                    return data, False
                with self._stats_lock:
                    self.stats.integrity_checks += 1
                with profiled("crypto.hash", n_bytes=len(data)):
                    actual = hashlib.sha256(data).hexdigest()
                if actual != stored_hash:
                    raise IntegrityError(
                        f"data for entry {record.get('entry_id')} does not match the "
                        f"on-chain hash (expected {stored_hash[:12]}…, got {actual[:12]}…)"
                    )
                return data, True
