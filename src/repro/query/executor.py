"""Query engine: the paper's hybrid on-chain / off-chain retrieval path.

Figure 1's retrieval flow (Ⓐ–Ⓓ): the user's query goes to the query
processor, which routes the metadata part to the *blockchain query
executor* (a chaincode read on a peer — no ordering, no consensus cost)
and, when raw data is requested, the CID part to the *database query
executor* (an IPFS fetch). Every fetched payload is verified against the
on-chain record twice over — the CID must hash-match the bytes (content
addressing) and the stored SHA-256 ``data_hash`` must match as well — the
"verification of retrieved data against its metadata stored on the
blockchain" the paper guarantees.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field

from repro.analysis.lockcheck import make_lock
from repro.crypto.cid import CID
from repro.errors import IntegrityError, QueryError
from repro.fabric.channel import Channel
from repro.fabric.identity import Identity
from repro.ipfs.cluster import IpfsCluster
from repro.obs.tracer import span as obs_span
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.planner import Plan, plan_query
from repro.util.parallel import parallel_map


@dataclass(frozen=True)
class QueryRow:
    """One result: the on-chain record, optionally joined with raw bytes.

    ``verified`` is only True when the fetched bytes were actually checked
    against an on-chain ``data_hash`` — a record with no stored hash comes
    back ``verified=False`` even under ``verify=True``, never silently
    passing (the CID content-address check still ran either way).
    """

    record: dict
    data: bytes | None = None
    verified: bool = False

    @property
    def entry_id(self) -> str:
        return self.record["entry_id"]

    @property
    def cid(self) -> str:
        return self.record["cid"]


@dataclass
class QueryStats:
    queries: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    bytes_fetched: int = 0
    integrity_checks: int = 0
    cache_hits: int = 0


@dataclass
class QueryEngine:
    """Routes queries across the blockchain and IPFS executors."""

    channel: Channel
    cluster: IpfsCluster
    identity: Identity
    retrieval_chaincode: str = "data_retrieval"
    stats: QueryStats = field(default_factory=QueryStats)
    # Metadata-only results cached per query text, valid while the chain
    # height is unchanged (any new block may contain new matching records).
    cache_enabled: bool = True
    # Worker threads fetching payloads concurrently share the stats object;
    # the lock keeps its counters exact.
    fetch_workers: int | None = None
    _cache: dict[str, tuple[int, list["QueryRow"]]] = field(default_factory=dict)
    # make_lock: a plain Lock normally; instrumented for lock-order and
    # guarded-write checking when the repro.analysis sanitizers are active.
    _stats_lock: threading.Lock = field(
        default_factory=lambda: make_lock("query.stats"), repr=False
    )

    # -- planning -------------------------------------------------------------

    def plan(self, query: Query | str) -> Plan:
        if isinstance(query, str):
            query = parse_query(query)
        return plan_query(query)

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        query: Query | str,
        fetch_data: bool = False,
        verify: bool = True,
    ) -> list[QueryRow]:
        """Execute a query; optionally join raw IPFS data per row.

        Metadata-only results (``fetch_data=False``) are cached per query
        text while the chain height is unchanged — reads are the hot path
        of the paper's retrieval story, and an unchanged chain cannot
        change their answer. The cache entry is keyed on the chain height
        observed *before* execution: a block committed mid-query makes the
        stored snapshot stale against the new height, so the next run
        re-executes instead of serving pre-commit rows as fresh.

        With ``fetch_data=True`` the per-row IPFS payloads are fetched
        concurrently on a thread pool (``fetch_workers`` caps the pool).
        """
        with obs_span("query.run") as sp:
            if isinstance(query, str):
                sp.set_attr("query", query[:80])
            sp.set_attr("fetch_data", fetch_data)
            # Snapshot the height first: the result set reflects the chain
            # as of *at most* this height, and the cache must not claim
            # freshness beyond it.
            height_snapshot = self.channel.height()
            cache_key = None
            if self.cache_enabled and not fetch_data and isinstance(query, str):
                cache_key = query
                cached = self._cache.get(cache_key)
                if cached is not None and cached[0] == height_snapshot:
                    self.stats.cache_hits += 1
                    self.stats.queries += 1
                    sp.set_attr("cache_hit", True)
                    return list(cached[1])
            with obs_span("query.plan"):
                if isinstance(query, str):
                    query = parse_query(query)
                plan = plan_query(query)
            candidates = self._execute_paths(plan)
            self.stats.queries += 1
            self.stats.rows_scanned += len(candidates)
            matched = [r for r in candidates if plan.residual.matches(r)]
            matched = query.apply_post(matched)
            if fetch_data:
                fetched = parallel_map(
                    lambda record: self.fetch_payload_verified(record, verify=verify),
                    matched,
                    max_workers=self.fetch_workers,
                )
                rows = [
                    QueryRow(record=record, data=data, verified=verified)
                    for record, (data, verified) in zip(matched, fetched)
                ]
            else:
                rows = [QueryRow(record=record) for record in matched]
            self.stats.rows_returned += len(rows)
            sp.set_attr("rows", len(rows))
            if cache_key is not None:
                self._cache[cache_key] = (height_snapshot, list(rows))
            return rows

    def _execute_paths(self, plan: Plan) -> list[dict]:
        seen: set[str] = set()
        out: list[dict] = []
        with obs_span("query.chain_read") as sp:
            sp.set_attr("paths", len(plan.paths))
            for path in plan.paths:
                raw = self.channel.query(
                    self.identity, self.retrieval_chaincode, path.fn, list(path.args)
                )
                for record in json.loads(raw):
                    entry_id = record.get("entry_id")
                    if entry_id is None or entry_id in seen:
                        continue
                    seen.add(entry_id)
                    out.append(record)
            sp.set_attr("rows", len(out))
        return out

    # -- point lookups ---------------------------------------------------------------

    def get(self, entry_id: str, fetch_data: bool = False, verify: bool = True) -> QueryRow:
        with obs_span("query.get") as sp:
            sp.set_attr("entry_id", entry_id)
            raw = self.channel.query(
                self.identity, self.retrieval_chaincode, "get_data", [entry_id]
            )
            record = json.loads(raw)
            data, verified = None, False
            if fetch_data:
                data, verified = self.fetch_payload_verified(record, verify=verify)
            return QueryRow(record=record, data=data, verified=verified)

    # -- the off-chain executor ----------------------------------------------------------

    def fetch_payload(self, record: dict, verify: bool = True) -> bytes:
        """Fetch the raw bytes for a record from IPFS and verify integrity."""
        data, _ = self.fetch_payload_verified(record, verify=verify)
        return data

    def fetch_payload_verified(
        self, record: dict, verify: bool = True
    ) -> tuple[bytes, bool]:
        """Fetch a record's bytes and report whether integrity was *proven*.

        Returns ``(data, verified)``. ``verified`` is True only when the
        record carried an on-chain ``data_hash`` and the bytes matched it;
        a record with no stored hash yields ``verified=False`` rather than
        pretending the check passed. A hash mismatch raises
        :class:`~repro.errors.IntegrityError`.
        """
        with obs_span("query.fetch") as sp:
            try:
                cid = CID.parse(record["cid"])
            except KeyError:
                raise QueryError("record has no CID") from None
            data = self.cluster.cat(cid)
            sp.set_attr("bytes", len(data))
            with self._stats_lock:
                self.stats.bytes_fetched += len(data)
            if not verify:
                return data, False
            with obs_span("query.verify") as vsp:
                stored_hash = record.get("data_hash")
                if stored_hash is None:
                    # Nothing on-chain to verify against: the CID check
                    # (content addressing) ran, but the paper's metadata
                    # cross-check could not — surface that honestly.
                    vsp.set_attr("missing_data_hash", True)
                    return data, False
                with self._stats_lock:
                    self.stats.integrity_checks += 1
                actual = hashlib.sha256(data).hexdigest()
                if actual != stored_hash:
                    raise IntegrityError(
                        f"data for entry {record.get('entry_id')} does not match the "
                        f"on-chain hash (expected {stored_hash[:12]}…, got {actual[:12]}…)"
                    )
                return data, True
