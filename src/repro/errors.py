"""Exception hierarchy for the repro framework.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
framework failures without masking programming errors (``TypeError`` etc.).
The hierarchy mirrors the subsystem layout: crypto, storage (IPFS-like),
fabric (blockchain), consensus, trust, and query errors each get a branch.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


# ---------------------------------------------------------------------------
# Encoding / crypto
# ---------------------------------------------------------------------------


class EncodingError(ReproError):
    """Malformed varint / base58 / multihash / CID input."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A digital signature failed verification."""


class MerkleProofError(CryptoError):
    """A Merkle inclusion proof failed verification."""


# ---------------------------------------------------------------------------
# Storage (IPFS-like subsystem)
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for content-addressed storage failures."""


class BlockNotFoundError(StorageError):
    """A block CID was not present in any reachable blockstore."""

    def __init__(self, cid: object) -> None:
        super().__init__(f"block not found: {cid}")
        self.cid = cid


class InvalidBlockError(StorageError):
    """Block bytes do not hash to the CID they were presented under."""


class PinError(StorageError):
    """Invalid pin/unpin operation (e.g. unpinning a CID never pinned)."""


class DagError(StorageError):
    """Malformed Merkle-DAG node or link structure."""


class DurabilityError(StorageError):
    """Invalid use of the durable-store/WAL layer, or a WAL record that no
    longer reproduces the outcome it recorded."""


class WalCorruptionError(DurabilityError):
    """A complete WAL frame failed its checksum — the medium lies, and
    nothing after the bad frame can be trusted; fall back to state transfer."""


class RecoveryError(DurabilityError):
    """Crash recovery could not complete (no usable donor, or donors at the
    same height disagree on the state digest)."""


# ---------------------------------------------------------------------------
# Network simulator
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class NodeUnreachableError(NetworkError):
    """Destination node is down or partitioned away."""


# ---------------------------------------------------------------------------
# Fabric (HLF-like subsystem)
# ---------------------------------------------------------------------------


class FabricError(ReproError):
    """Base class for blockchain subsystem failures."""


class IdentityError(FabricError):
    """Unknown, unauthorized, or revoked identity."""


@dataclass(frozen=True)
class EndorsementAttempt:
    """One peer (or org) tried during endorsement and why it failed.

    ``kind`` classifies the failure so failover logic and chaos tests can
    assert on causes: ``"offline"`` (the peer was down), ``"no_peers"``
    (an org had no online peer at all), or the raising error's class name
    for anything else (e.g. ``"ChaincodeNotFoundError"``).
    """

    peer: str
    org: str
    kind: str
    error: str = ""


class EndorsementError(FabricError):
    """A transaction proposal failed to gather a satisfying endorsement set.

    Carries the per-peer :class:`EndorsementAttempt` trail so callers (and
    chaos tests) can see which peers/orgs were tried and why each failed.
    """

    def __init__(self, message: str, attempts: tuple[EndorsementAttempt, ...] | list = ()) -> None:
        super().__init__(message)
        self.attempts: tuple[EndorsementAttempt, ...] = tuple(attempts)

    def attempted_orgs(self) -> list[str]:
        return sorted({a.org for a in self.attempts})

    def attempted_peers(self) -> list[str]:
        return [a.peer for a in self.attempts if a.peer]


class ChaincodeError(FabricError):
    """A chaincode invocation raised or returned an application error."""


class ChaincodeNotFoundError(FabricError):
    """Invoked chaincode name is not installed on the channel."""


class AccessDeniedError(FabricError):
    """The on-chain ACL denies this identity's org access to an entry."""


class MVCCConflictError(FabricError):
    """Read-set version mismatch detected at commit (phantom/stale read)."""


class LedgerError(FabricError):
    """Corrupt or inconsistent ledger structure (broken hash chain etc.)."""


class OrderingError(FabricError):
    """The ordering service rejected or failed to order a transaction."""


# ---------------------------------------------------------------------------
# Consensus
# ---------------------------------------------------------------------------


class ConsensusError(ReproError):
    """Base class for consensus-protocol failures."""


class QuorumNotReachedError(ConsensusError):
    """Fewer than the required quorum of validators agreed."""


class ViewChangeError(ConsensusError):
    """View change could not complete (too many faulty replicas)."""


# ---------------------------------------------------------------------------
# Trust
# ---------------------------------------------------------------------------


class TrustError(ReproError):
    """Base class for trust-engine failures."""


class UntrustedSourceError(TrustError):
    """A submission was rejected because the source's trust score is too low."""


# ---------------------------------------------------------------------------
# Resilience
# ---------------------------------------------------------------------------


class ResilienceError(ReproError):
    """Base class for failures surfaced by the resilience layer."""


class RetryExhaustedError(ResilienceError):
    """An operation kept failing after every allowed retry attempt."""

    def __init__(self, op: str, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"operation {op!r} failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.op = op
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the dependency is being given time to heal."""

    def __init__(self, dependency: str, retry_after_s: float) -> None:
        super().__init__(
            f"circuit for {dependency!r} is open; retry in {retry_after_s:.3f}s"
        )
        self.dependency = dependency
        self.retry_after_s = retry_after_s


class FailoverExhaustedError(ResilienceError):
    """Every candidate target of a failover group failed."""

    def __init__(self, op: str, attempts: tuple = ()) -> None:
        detail = "; ".join(f"{a.target}: {a.error}" for a in attempts) or "no candidates"
        super().__init__(f"failover for {op!r} exhausted: {detail}")
        self.op = op
        self.attempts = tuple(attempts)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class ObservabilityError(ReproError):
    """Invalid use of the metrics/tracing layer (bad buckets, negative
    counter increments, malformed label sets)."""


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-engine failures."""


class QueryParseError(QueryError):
    """The query text could not be parsed."""


class IntegrityError(QueryError):
    """Retrieved off-chain data does not match its on-chain hash/CID."""


# ---------------------------------------------------------------------------
# Static analysis / sanitizers
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Invalid use of the analysis tooling (unknown rule id, bad sanitizer
    mode spec, unreadable lint target)."""
