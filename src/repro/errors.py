"""Exception hierarchy for the repro framework.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
framework failures without masking programming errors (``TypeError`` etc.).
The hierarchy mirrors the subsystem layout: crypto, storage (IPFS-like),
fabric (blockchain), consensus, trust, and query errors each get a branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


# ---------------------------------------------------------------------------
# Encoding / crypto
# ---------------------------------------------------------------------------


class EncodingError(ReproError):
    """Malformed varint / base58 / multihash / CID input."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A digital signature failed verification."""


class MerkleProofError(CryptoError):
    """A Merkle inclusion proof failed verification."""


# ---------------------------------------------------------------------------
# Storage (IPFS-like subsystem)
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for content-addressed storage failures."""


class BlockNotFoundError(StorageError):
    """A block CID was not present in any reachable blockstore."""

    def __init__(self, cid: object) -> None:
        super().__init__(f"block not found: {cid}")
        self.cid = cid


class InvalidBlockError(StorageError):
    """Block bytes do not hash to the CID they were presented under."""


class PinError(StorageError):
    """Invalid pin/unpin operation (e.g. unpinning a CID never pinned)."""


class DagError(StorageError):
    """Malformed Merkle-DAG node or link structure."""


# ---------------------------------------------------------------------------
# Network simulator
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class NodeUnreachableError(NetworkError):
    """Destination node is down or partitioned away."""


# ---------------------------------------------------------------------------
# Fabric (HLF-like subsystem)
# ---------------------------------------------------------------------------


class FabricError(ReproError):
    """Base class for blockchain subsystem failures."""


class IdentityError(FabricError):
    """Unknown, unauthorized, or revoked identity."""


class EndorsementError(FabricError):
    """A transaction proposal failed to gather a satisfying endorsement set."""


class ChaincodeError(FabricError):
    """A chaincode invocation raised or returned an application error."""


class ChaincodeNotFoundError(FabricError):
    """Invoked chaincode name is not installed on the channel."""


class AccessDeniedError(FabricError):
    """The on-chain ACL denies this identity's org access to an entry."""


class MVCCConflictError(FabricError):
    """Read-set version mismatch detected at commit (phantom/stale read)."""


class LedgerError(FabricError):
    """Corrupt or inconsistent ledger structure (broken hash chain etc.)."""


class OrderingError(FabricError):
    """The ordering service rejected or failed to order a transaction."""


# ---------------------------------------------------------------------------
# Consensus
# ---------------------------------------------------------------------------


class ConsensusError(ReproError):
    """Base class for consensus-protocol failures."""


class QuorumNotReachedError(ConsensusError):
    """Fewer than the required quorum of validators agreed."""


class ViewChangeError(ConsensusError):
    """View change could not complete (too many faulty replicas)."""


# ---------------------------------------------------------------------------
# Trust
# ---------------------------------------------------------------------------


class TrustError(ReproError):
    """Base class for trust-engine failures."""


class UntrustedSourceError(TrustError):
    """A submission was rejected because the source's trust score is too low."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class ObservabilityError(ReproError):
    """Invalid use of the metrics/tracing layer (bad buckets, negative
    counter increments, malformed label sets)."""


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for query-engine failures."""


class QueryParseError(QueryError):
    """The query text could not be parsed."""


class IntegrityError(QueryError):
    """Retrieved off-chain data does not match its on-chain hash/CID."""
