"""Pinning: marking blocks the garbage collector must keep.

Two pin types, as in IPFS: *direct* pins protect a single block; *recursive*
pins protect the block and everything reachable from it. The node auto-pins
everything it adds, so GC only ever reclaims content fetched on behalf of
other peers or explicitly unpinned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.cid import CID
from repro.errors import PinError
from repro.ipfs.dag import DagService


@dataclass
class PinManager:
    direct: set[CID] = field(default_factory=set)
    recursive: set[CID] = field(default_factory=set)

    def pin(self, cid: CID, recursive: bool = True) -> None:
        if recursive:
            self.direct.discard(cid)
            self.recursive.add(cid)
        else:
            if cid in self.recursive:
                raise PinError(f"{cid} is already recursively pinned")
            self.direct.add(cid)

    def unpin(self, cid: CID) -> None:
        if cid in self.recursive:
            self.recursive.discard(cid)
        elif cid in self.direct:
            self.direct.discard(cid)
        else:
            raise PinError(f"{cid} is not pinned")

    def is_pinned(self, cid: CID) -> bool:
        return cid in self.direct or cid in self.recursive

    def live_set(self, dag: DagService) -> set[CID]:
        """All CIDs protected from GC: direct pins + recursive closures."""
        live: set[CID] = set(self.direct)
        for root in self.recursive:
            live |= dag.referenced_cids(root)
        return live


@dataclass(frozen=True)
class GCResult:
    removed: int
    reclaimed_bytes: int
    kept: int


def collect_garbage(blockstore, pins: PinManager, dag: DagService) -> GCResult:
    """Mark-and-sweep: delete every block not in the pin live set."""
    live = pins.live_set(dag)
    removed = 0
    reclaimed = 0
    kept = 0
    for cid in list(blockstore.cids()):
        if cid in live:
            kept += 1
            continue
        reclaimed += len(blockstore.get(cid).data)
        blockstore.delete(cid)
        removed += 1
    return GCResult(removed=removed, reclaimed_bytes=reclaimed, kept=kept)
