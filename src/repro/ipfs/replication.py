"""Replication manager: keep every tracked file on k cluster nodes.

A bare IPFS node only holds what it added or fetched; if that node dies,
the content dies with it. The replication manager (the role ipfs-cluster
plays in real deployments) tracks root CIDs, places each on
``replication_factor`` nodes chosen by rendezvous (highest-random-weight)
hashing — stable under membership churn — and ``repair()`` re-replicates
anything under-replicated after failures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.cid import CID
from repro.errors import StorageError
from repro.ipfs.cluster import IpfsCluster
from repro.ipfs.dag import DagService


def _rendezvous_score(cid: CID, peer_id: str) -> int:
    return int.from_bytes(
        hashlib.sha256(f"{cid.encode()}|{peer_id}".encode()).digest()[:8], "big"
    )


@dataclass
class ReplicationStatus:
    cid: CID
    desired: int
    holders: list[str]

    @property
    def healthy(self) -> bool:
        return len(self.holders) >= self.desired


@dataclass
class ReplicationManager:
    cluster: IpfsCluster
    replication_factor: int = 2
    _tracked: set[CID] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise StorageError("replication factor must be >= 1")

    # -- placement ---------------------------------------------------------------

    def placement(self, cid: CID) -> list[str]:
        """The nodes that *should* hold ``cid`` (rendezvous hashing).

        Only online nodes are candidates — placing a replica on a crashed
        node would count phantom copies toward the replication factor."""
        peers = self.cluster.online_peer_ids()
        k = min(self.replication_factor, len(peers))
        return sorted(peers, key=lambda p: -_rendezvous_score(cid, p))[:k]

    def holders(self, cid: CID) -> list[str]:
        """Online nodes that actually hold the complete subgraph under ``cid``."""
        out = []
        for peer_id, node in self.cluster.nodes.items():
            if not node.online or not node.blockstore.has(cid):
                continue
            try:
                dag = DagService(node.blockstore)
                for _ in dag.walk(cid):
                    pass
            except StorageError:
                continue  # partial copy doesn't count
            out.append(peer_id)
        return out

    # -- operations ----------------------------------------------------------------

    def replicate(self, cid: CID) -> ReplicationStatus:
        """Track ``cid`` and copy it to its placement set."""
        self._tracked.add(cid)
        return self._ensure(cid)

    def _ensure(self, cid: CID) -> ReplicationStatus:
        current = set(self.holders(cid))
        if not current:
            raise StorageError(f"no cluster node holds {cid}; cannot replicate")
        for target_id in self.placement(cid):
            if target_id in current:
                continue
            target = self.cluster.nodes[target_id]
            providers = sorted(current)
            target.cat(cid, providers=providers)  # pulls all blocks via bitswap
            target.pin(cid)
            # Announce the new replica so reads can discover it after the
            # original adder crashes (what ipfs-cluster does on pin).
            self.cluster.dht.provide(target_id, cid)
            current.add(target_id)
        return self.status(cid)

    def status(self, cid: CID) -> ReplicationStatus:
        return ReplicationStatus(
            cid=cid,
            desired=min(self.replication_factor, len(self.cluster.online_peer_ids())),
            holders=self.holders(cid),
        )

    def repair(self) -> list[ReplicationStatus]:
        """Re-replicate every tracked CID that lost holders; returns the
        statuses of the CIDs that needed work."""
        repaired = []
        for cid in sorted(self._tracked):
            status = self.status(cid)
            if not status.healthy:
                repaired.append(self._ensure(cid))
        return repaired

    def tracked(self) -> list[CID]:
        return sorted(self._tracked)
