"""Blockstores: where blocks physically live on a node.

:class:`MemoryBlockstore` backs tests and benchmarks; :class:`FSBlockstore`
persists blocks under a sharded directory layout (two-character fan-out of
the CID string, like go-ipfs's flatfs) so a directory never accumulates
millions of entries. Both share the :class:`Blockstore` interface, and both
count puts/gets/bytes for the storage-time benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Protocol

from repro.crypto.cid import CID
from repro.errors import BlockNotFoundError
from repro.ipfs.block import Block


@dataclass
class BlockstoreStats:
    puts: int = 0
    gets: int = 0
    hits: int = 0
    misses: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class Blockstore(Protocol):
    """Minimal storage interface the DAG and bitswap layers build on."""

    stats: BlockstoreStats

    def put(self, block: Block) -> None: ...
    def get(self, cid: CID) -> Block: ...
    def has(self, cid: CID) -> bool: ...
    def delete(self, cid: CID) -> None: ...
    def cids(self) -> Iterator[CID]: ...
    def __len__(self) -> int: ...


@dataclass
class MemoryBlockstore:
    """Dict-backed blockstore; deduplicates identical blocks by CID."""

    _blocks: dict[CID, bytes] = field(default_factory=dict)
    stats: BlockstoreStats = field(default_factory=BlockstoreStats)

    def put(self, block: Block) -> None:
        self.stats.puts += 1
        if block.cid not in self._blocks:
            self._blocks[block.cid] = block.data
            self.stats.bytes_written += len(block.data)

    def get(self, cid: CID) -> Block:
        self.stats.gets += 1
        try:
            data = self._blocks[cid]
        except KeyError:
            self.stats.misses += 1
            raise BlockNotFoundError(cid) from None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        return Block(cid=cid, data=data)

    def has(self, cid: CID) -> bool:
        return cid in self._blocks

    def delete(self, cid: CID) -> None:
        self._blocks.pop(cid, None)

    def cids(self) -> Iterator[CID]:
        yield from list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def total_bytes(self) -> int:
        return sum(len(d) for d in self._blocks.values())

    def corrupt(self, cid: CID, data: bytes) -> None:
        """Chaos hook: overwrite the bytes stored for ``cid`` without
        touching the key, simulating silent bit rot. Reads keep succeeding
        with wrong bytes until a verify/quarantine pass catches them."""
        if cid not in self._blocks:
            raise BlockNotFoundError(cid)
        self._blocks[cid] = data


class FSBlockstore:
    """Filesystem blockstore with two-character shard directories.

    A block for CID ``bafy...xyz`` lives at ``root/<last2>/<cid>.blk``;
    sharding on the *suffix* (like go-ipfs) spreads base32 CIDs uniformly.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = BlockstoreStats()

    def _path(self, cid: CID) -> Path:
        text = cid.encode()
        return self.root / text[-2:] / f"{text}.blk"

    def put(self, block: Block) -> None:
        self.stats.puts += 1
        path = self._path(block.cid)
        if path.exists():
            return
        path.parent.mkdir(exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(block.data)
        os.replace(tmp, path)  # atomic publish: readers never see partial blocks
        self.stats.bytes_written += len(block.data)

    def get(self, cid: CID) -> Block:
        self.stats.gets += 1
        path = self._path(cid)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            raise BlockNotFoundError(cid) from None
        self.stats.hits += 1
        self.stats.bytes_read += len(data)
        # Verify on read: disk corruption must not propagate silently.
        return Block.verified(cid, data)

    def has(self, cid: CID) -> bool:
        return self._path(cid).exists()

    def delete(self, cid: CID) -> None:
        try:
            self._path(cid).unlink()
        except FileNotFoundError:
            pass

    def cids(self) -> Iterator[CID]:
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix == ".blk":
                    yield CID.parse(entry.stem)

    def __len__(self) -> int:
        return sum(1 for _ in self.cids())
