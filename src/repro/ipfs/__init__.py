"""IPFS-like content-addressed storage substrate: chunking, blockstores,
Merkle DAG, UnixFS files, Kademlia DHT, bitswap exchange, pinning and GC."""

from repro.ipfs.bitswap import BitswapStats, Engine, Ledger
from repro.ipfs.block import Block
from repro.ipfs.blockstore import (
    Blockstore,
    BlockstoreStats,
    FSBlockstore,
    MemoryBlockstore,
)
from repro.ipfs.chunker import (
    DEFAULT_CHUNK_SIZE,
    Chunker,
    FixedSizeChunker,
    RollingChunker,
)
from repro.ipfs.cluster import ClusterStat, IpfsCluster
from repro.ipfs.dag import DagLink, DagNode, DagService
from repro.ipfs.dht import DhtNode, DhtRegistry, RoutingTable, key_for_cid, key_for_peer
from repro.ipfs.node import IpfsNode, NodeStat
from repro.ipfs.pin import GCResult, PinManager, collect_garbage
from repro.ipfs.unixfs import AddResult, UnixFS

__all__ = [
    "BitswapStats",
    "Engine",
    "Ledger",
    "Block",
    "Blockstore",
    "BlockstoreStats",
    "FSBlockstore",
    "MemoryBlockstore",
    "DEFAULT_CHUNK_SIZE",
    "Chunker",
    "FixedSizeChunker",
    "RollingChunker",
    "ClusterStat",
    "IpfsCluster",
    "DagLink",
    "DagNode",
    "DagService",
    "DhtNode",
    "DhtRegistry",
    "RoutingTable",
    "key_for_cid",
    "key_for_peer",
    "IpfsNode",
    "NodeStat",
    "GCResult",
    "PinManager",
    "collect_garbage",
    "AddResult",
    "UnixFS",
]
