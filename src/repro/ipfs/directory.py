"""UnixFS directories and gateway-style path resolution.

Files alone don't organize a city's footage; IPFS structures content as
directories — DAG nodes whose *named* links point at files or further
directories, all content-addressed, so one root CID pins an entire dataset
layout (``/<root>/cam-03/2026-07-07/frame-000121.raw``). This module adds:

* :func:`add_directory` / :func:`add_tree` — build directory nodes over
  stored files;
* :func:`resolve_path` — the gateway operation: walk ``<cid>/a/b/c`` down
  named links to the target CID;
* :func:`list_directory` — enumerate an entry's children.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cid import CID, CODEC_DAG_JSON
from repro.errors import DagError
from repro.ipfs.blockstore import Blockstore
from repro.ipfs.dag import DagLink, DagNode, DagService

# Payload marker distinguishing directory nodes from file-tree nodes.
_DIR_NODE_DATA = b"unixfs:dir"


@dataclass(frozen=True)
class DirEntry:
    name: str
    cid: CID
    size: int
    is_dir: bool


def _validate_name(name: str) -> None:
    if not name or "/" in name:
        raise DagError(f"invalid directory entry name {name!r}")


def add_directory(blockstore: Blockstore, entries: dict[str, tuple[CID, int]]) -> CID:
    """Create a directory node linking named children.

    ``entries`` maps name → (cid, total size). Names are sorted so the
    same contents always produce the same directory CID.
    """
    links = []
    for name in sorted(entries):
        _validate_name(name)
        cid, size = entries[name]
        links.append(DagLink(name=name, cid=cid, tsize=size))
    node = DagNode(data=_DIR_NODE_DATA, links=tuple(links))
    return DagService(blockstore).put(node)


def add_tree(unixfs, tree: dict) -> CID:
    """Build a nested directory structure from a dict of dicts/bytes.

    ``{"cams": {"a.raw": b"...", "b.raw": b"..."}, "README": b"hi"}``
    becomes two directory nodes and three files, returning the root CID.
    """
    entries: dict[str, tuple[CID, int]] = {}
    for name, value in tree.items():
        _validate_name(name)
        if isinstance(value, dict):
            child = add_tree(unixfs, value)
            size = DagService(unixfs.blockstore).get(child).total_size()
            entries[name] = (child, size)
        elif isinstance(value, (bytes, bytearray)):
            result = unixfs.add_file(bytes(value))
            entries[name] = (result.cid, result.size)
        else:
            raise DagError(f"tree values must be bytes or dicts, got {type(value).__name__}")
    return add_directory(unixfs.blockstore, entries)


def is_directory(blockstore: Blockstore, cid: CID) -> bool:
    if cid.codec != CODEC_DAG_JSON:
        return False
    node = DagService(blockstore).get(cid)
    return node.data == _DIR_NODE_DATA


def list_directory(blockstore: Blockstore, cid: CID) -> list[DirEntry]:
    if not is_directory(blockstore, cid):
        raise DagError(f"{cid} is not a directory")
    node = DagService(blockstore).get(cid)
    out = []
    for link in node.links:
        out.append(
            DirEntry(
                name=link.name,
                cid=link.cid,
                size=link.tsize,
                is_dir=is_directory(blockstore, link.cid),
            )
        )
    return out


def resolve_path(blockstore: Blockstore, path: str) -> CID:
    """Resolve ``"<cid>/seg/seg"`` (optionally ``/ipfs/``-prefixed) to the
    target's CID, walking named directory links."""
    text = path.strip("/")
    if text.startswith("ipfs/"):
        text = text[len("ipfs/"):]
    segments = [s for s in text.split("/") if s]
    if not segments:
        raise DagError("empty IPFS path")
    current = CID.parse(segments[0])
    for segment in segments[1:]:
        if not is_directory(blockstore, current):
            raise DagError(f"cannot descend into non-directory at {segment!r}")
        node = DagService(blockstore).get(current)
        match = next((l for l in node.links if l.name == segment), None)
        if match is None:
            raise DagError(f"path segment {segment!r} not found")
        current = match.cid
    return current
