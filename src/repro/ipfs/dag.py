"""Merkle DAG: linked nodes of named, sized links plus a data payload.

This is the UnixFS substrate's structural layer, equivalent to IPFS's dag-pb
but serialized as canonical dag-json (deterministic bytes → deterministic
CIDs). A :class:`DagNode` holds opaque data plus ordered links; a
:class:`DagService` persists nodes into a blockstore and re-reads them with
hash verification.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from typing import Iterator

from repro.crypto.cid import CID, CODEC_DAG_JSON
from repro.errors import DagError
from repro.ipfs.block import Block
from repro.ipfs.blockstore import Blockstore
from repro.util.serialization import canonical_json, from_canonical_json


@dataclass(frozen=True)
class DagLink:
    """A named edge to a child node, carrying the child's cumulative size.

    ``tsize`` (total size) is the full byte size of the subgraph under the
    link — what lets a reader report a file's size without touching leaves.
    """

    name: str
    cid: CID
    tsize: int

    def __post_init__(self) -> None:
        if self.tsize < 0:
            raise DagError("link tsize must be non-negative")


@dataclass(frozen=True)
class DagNode:
    """An immutable DAG node: payload bytes plus ordered child links."""

    data: bytes = b""
    links: tuple[DagLink, ...] = field(default_factory=tuple)

    def serialize(self) -> bytes:
        """Canonical dag-json rendering; identical nodes byte-match."""
        doc = {
            "data": base64.b64encode(self.data).decode("ascii"),
            "links": [
                {"name": l.name, "cid": l.cid.encode(), "tsize": l.tsize}
                for l in self.links
            ],
        }
        return canonical_json(doc)

    @classmethod
    def deserialize(cls, raw: bytes) -> "DagNode":
        doc = from_canonical_json(raw)
        if not isinstance(doc, dict) or "data" not in doc or "links" not in doc:
            raise DagError("malformed DAG node document")
        try:
            data = base64.b64decode(doc["data"], validate=True)
            links = tuple(
                DagLink(name=l["name"], cid=CID.parse(l["cid"]), tsize=int(l["tsize"]))
                for l in doc["links"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DagError(f"malformed DAG node: {exc}") from exc
        return cls(data=data, links=links)

    def cid(self) -> CID:
        return CID.for_data(self.serialize(), codec=CODEC_DAG_JSON)

    def to_block(self) -> Block:
        return Block.for_data(self.serialize(), codec=CODEC_DAG_JSON)

    def total_size(self) -> int:
        """Bytes in this node's payload plus all linked subgraphs."""
        return len(self.data) + sum(l.tsize for l in self.links)


class DagService:
    """Put/get DAG nodes against a blockstore, with traversal helpers."""

    def __init__(self, blockstore: Blockstore) -> None:
        self.blockstore = blockstore

    def put(self, node: DagNode) -> CID:
        block = node.to_block()
        self.blockstore.put(block)
        return block.cid

    def get(self, cid: CID) -> DagNode:
        if cid.codec != CODEC_DAG_JSON:
            raise DagError(f"CID {cid} is not a DAG node (codec {cid.codec_name})")
        return DagNode.deserialize(self.blockstore.get(cid).data)

    def walk(self, root: CID) -> Iterator[tuple[CID, DagNode | None]]:
        """Depth-first pre-order walk of all blocks under ``root``.

        Yields ``(cid, node)`` for DAG nodes and ``(cid, None)`` for leaf
        (raw) blocks. Visits shared subgraphs once — the DAG may be a
        diamond, not a tree, after deduplication.
        """
        seen: set[CID] = set()
        stack = [root]
        while stack:
            cid = stack.pop()
            if cid in seen:
                continue
            seen.add(cid)
            if cid.codec == CODEC_DAG_JSON:
                node = self.get(cid)
                yield cid, node
                # Reverse to preserve left-to-right pre-order with a stack.
                stack.extend(l.cid for l in reversed(node.links))
            else:
                yield cid, None

    def referenced_cids(self, root: CID) -> set[CID]:
        """All CIDs reachable from ``root``, including it."""
        return {cid for cid, _ in self.walk(root)}
