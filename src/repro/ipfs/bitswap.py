"""Bitswap-like block exchange between IPFS nodes.

Each node runs an :class:`Engine` holding a per-peer :class:`Ledger` of
bytes exchanged. A fetch (`want`) asks candidate providers in debt-friendly
order; the serving engine applies a reciprocity policy — peers deep in debt
get refused once past a grace allowance, the incentive mechanism real
bitswap uses to discourage freeloading. Every received block is verified
against its CID before it touches the local store.

Transfers are in-process (the cluster holds all nodes), but every exchange
is metered, and an optional :class:`repro.net.SimNetwork` hook charges the
simulated clock for request/response latency and transfer time so
experiments can report network-realistic fetch times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.cid import CID
from repro.errors import BlockNotFoundError, InvalidBlockError
from repro.ipfs.block import Block
from repro.ipfs.blockstore import Blockstore
from repro.obs.metrics import get_registry


@dataclass
class Ledger:
    """Bytes exchanged with one peer, from the local engine's viewpoint."""

    peer: str
    bytes_sent: int = 0
    bytes_received: int = 0
    blocks_sent: int = 0
    blocks_received: int = 0

    def debt_ratio(self) -> float:
        """How much this peer owes us: sent / (received + 1)."""
        return self.bytes_sent / (self.bytes_received + 1.0)


@dataclass
class BitswapStats:
    blocks_fetched: int = 0
    blocks_served: int = 0
    fetch_failures: int = 0
    refusals: int = 0
    duplicate_wants: int = 0
    corrupt_rejected: int = 0


class Engine:
    """One node's bitswap engine."""

    # A peer may take this many bytes before reciprocity kicks in.
    GRACE_BYTES = 8 * 1024 * 1024
    MAX_DEBT_RATIO = 4.0

    def __init__(self, peer_id: str, blockstore: Blockstore) -> None:
        self.peer_id = peer_id
        self.blockstore = blockstore
        self.ledgers: dict[str, Ledger] = {}
        self.wantlist: set[CID] = set()
        self.stats = BitswapStats()
        # Crashed engines neither serve nor fetch; the cluster flips this.
        self.online = True
        # Resolution of peer id -> Engine, injected by the cluster/swarm.
        self._peers: dict[str, "Engine"] = {}

    def connect(self, other: "Engine") -> None:
        """Create a bidirectional session between two engines."""
        self._peers[other.peer_id] = other
        other._peers[self.peer_id] = self

    def disconnect(self, peer_id: str) -> None:
        """Tear down the session with ``peer_id`` (both directions)."""
        other = self._peers.pop(peer_id, None)
        if other is not None:
            other._peers.pop(self.peer_id, None)

    def disconnect_all(self) -> None:
        """Tear down every session (node decommission)."""
        for peer_id in list(self._peers):
            self.disconnect(peer_id)

    def peers(self) -> list[str]:
        """Peer ids with an open session, sorted."""
        return sorted(self._peers)

    def ledger_for(self, peer: str) -> Ledger:
        return self.ledgers.setdefault(peer, Ledger(peer=peer))

    # -- serving side ----------------------------------------------------------

    def handle_want(self, requester: str, cid: CID) -> Block | None:
        """Serve a block if we have it and the requester isn't freeloading."""
        if not self.online:
            return None
        ledger = self.ledger_for(requester)
        over_grace = ledger.bytes_sent > self.GRACE_BYTES
        if over_grace and ledger.debt_ratio() > self.MAX_DEBT_RATIO:
            self.stats.refusals += 1
            return None
        if not self.blockstore.has(cid):
            return None
        block = self.blockstore.get(cid)
        ledger.bytes_sent += len(block)
        ledger.blocks_sent += 1
        self.stats.blocks_served += 1
        return block

    # -- fetching side ------------------------------------------------------------

    def want(
        self,
        cid: CID,
        providers: list[str],
        on_transfer: Callable[[str, int], None] | None = None,
    ) -> Block:
        """Fetch ``cid`` from the first provider that serves it.

        Providers are tried in descending debt-ratio order (peers that owe
        us are most likely to serve). ``on_transfer(peer, nbytes)`` lets the
        caller charge a network model for the transfer.
        """
        if self.blockstore.has(cid):
            self.stats.duplicate_wants += 1
            return self.blockstore.get(cid)
        self.wantlist.add(cid)
        try:
            ordered = sorted(
                (p for p in providers if p != self.peer_id and p in self._peers),
                key=lambda p: -self.ledger_for(p).debt_ratio(),
            )
            for peer in ordered:
                block = self._peers[peer].handle_want(self.peer_id, cid)
                if block is None:
                    continue
                try:
                    verified = Block.verified(block.cid, block.data)  # trust no peer
                except InvalidBlockError:
                    # Corrupted bytes from this peer — reject and keep trying
                    # the remaining providers rather than poisoning the store.
                    self.stats.corrupt_rejected += 1
                    get_registry().counter(
                        "ipfs_corrupt_blocks_total", {"peer": peer}
                    ).inc()
                    continue
                ledger = self.ledger_for(peer)
                ledger.bytes_received += len(verified)
                ledger.blocks_received += 1
                self.stats.blocks_fetched += 1
                self.blockstore.put(verified)
                if on_transfer is not None:
                    on_transfer(peer, len(verified))
                return verified
            self.stats.fetch_failures += 1
            raise BlockNotFoundError(cid)
        finally:
            self.wantlist.discard(cid)
