"""Chunkers: split file bytes into blocks for the Merkle DAG.

Two strategies, mirroring IPFS:

* :class:`FixedSizeChunker` — go-ipfs's default (256 KiB chunks). O(1) per
  chunk; chunk boundaries shift on insertion, hurting dedup.
* :class:`RollingChunker` — content-defined chunking (CDC). Cut points are
  chosen where a rolling hash of the last ``window`` bytes hits a boundary
  condition, so an insertion only reshuffles nearby chunks and identical
  regions of different files dedup to identical blocks.

The rolling hash here is a windowed sum of per-byte gear values, computed
with a vectorized NumPy prefix-sum rather than a byte-at-a-time loop: the
whole file's boundary predicate is evaluated in a handful of array ops,
which keeps CDC from dominating the storage path that Figure 5 measures.
"""

from __future__ import annotations

from typing import Iterator, Protocol

import numpy as np

from repro.util.rng import rng_for

DEFAULT_CHUNK_SIZE = 256 * 1024  # go-ipfs default


class Chunker(Protocol):
    """Splits a byte string into consecutive chunks covering it exactly."""

    def chunks(self, data: bytes) -> Iterator[bytes]:
        ...


class FixedSizeChunker:
    """Split into fixed-size chunks (last one may be short)."""

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size

    def chunks(self, data: bytes) -> Iterator[bytes]:
        if not data:
            yield b""
            return
        for start in range(0, len(data), self.chunk_size):
            yield data[start : start + self.chunk_size]


class RollingChunker:
    """Content-defined chunking via a windowed gear-hash boundary predicate.

    A byte position ``i`` ends a chunk when the sum of gear values over the
    trailing ``window`` bytes is ``0 mod mask+1`` — on random data this fires
    with probability ``1/(mask+1)`` per position, giving a mean chunk size of
    roughly ``mask+1`` bytes. ``min_size``/``max_size`` clamp the
    pathological cases (a long run with no boundary, or boundaries every few
    bytes in low-entropy data).
    """

    def __init__(
        self,
        target_size: int = DEFAULT_CHUNK_SIZE,
        min_size: int | None = None,
        max_size: int | None = None,
        window: int = 48,
        seed: int = 0x1BF5,
    ) -> None:
        if target_size < 2:
            raise ValueError("target_size must be >= 2")
        self.target_size = target_size
        self.min_size = min_size if min_size is not None else target_size // 4
        self.max_size = max_size if max_size is not None else target_size * 4
        if not 0 < self.min_size <= self.max_size:
            raise ValueError("need 0 < min_size <= max_size")
        if self.min_size > target_size or target_size > self.max_size:
            raise ValueError("need min_size <= target_size <= max_size")
        self.window = window
        # Gear table: one random 64-bit value per byte value. Seeded so the
        # same content always chunks identically across runs and machines.
        self._gear = rng_for(seed, "chunker", "gear").integers(
            0, 2**62, size=256, dtype=np.int64
        )
        # Boundary fires when windowed sum mod mask_mod == 0.
        self._mask_mod = max(2, target_size - self.window)

    def _boundaries(self, data: bytes) -> np.ndarray:
        """Candidate cut positions (exclusive end offsets), vectorized."""
        values = self._gear[np.frombuffer(data, dtype=np.uint8)]
        prefix = np.concatenate(([0], np.cumsum(values)))
        w = min(self.window, len(data))
        # windowed[i] = sum of gear values for bytes (i-w, i]; defined for i >= w.
        windowed = prefix[w:] - prefix[:-w]
        hits = np.nonzero(windowed % self._mask_mod == 0)[0] + w
        return hits

    def chunks(self, data: bytes) -> Iterator[bytes]:
        if not data:
            yield b""
            return
        hits = self._boundaries(data)
        start = 0
        hit_idx = 0
        n = len(data)
        while start < n:
            lo = start + self.min_size
            hi = min(start + self.max_size, n)
            # First boundary candidate in [lo, hi); otherwise cut at hi.
            hit_idx = int(np.searchsorted(hits, lo, side="left"))
            cut = hi
            if hit_idx < len(hits) and hits[hit_idx] < hi:
                cut = int(hits[hit_idx])
            if n - cut < 1 and cut != n:  # pragma: no cover - defensive
                cut = n
            yield data[start:cut]
            start = cut


def chunk_sizes(chunker: Chunker, data: bytes) -> list[int]:
    """Sizes of the chunks ``chunker`` produces for ``data`` (test helper)."""
    return [len(c) for c in chunker.chunks(data)]
