"""Kademlia-style DHT for provider routing.

Peers and content share one 256-bit key space (SHA-256 of the peer id or the
CID string); distance is XOR. Each peer keeps a routing table of k-buckets
indexed by common-prefix length and answers two queries: *closest peers to a
key* and *providers of a CID*. Publishing a provider record stores it on the
``k`` peers closest to the CID's key — the same replication rule as IPFS's
provider subsystem — so lookups converge in O(log n) iterative steps.

The lookup here is the standard iterative algorithm run synchronously (the
in-process registry stands in for the RPC layer); hop counts are recorded so
experiments can check the O(log n) routing property.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.analysis.lockcheck import make_lock
from repro.crypto.cid import CID

K_BUCKET_SIZE = 20
ALPHA = 3  # parallelism of iterative lookups (batch size per round)
KEY_BITS = 256


def key_for_peer(peer_id: str) -> int:
    return int.from_bytes(hashlib.sha256(b"peer:" + peer_id.encode()).digest(), "big")


def key_for_cid(cid: CID) -> int:
    return int.from_bytes(hashlib.sha256(b"cid:" + cid.encode().encode()).digest(), "big")


def xor_distance(a: int, b: int) -> int:
    return a ^ b


def bucket_index(own_key: int, other_key: int) -> int:
    """Index of the k-bucket for ``other_key``: 255 - common prefix length."""
    d = own_key ^ other_key
    if d == 0:
        raise ValueError("a peer has no bucket for itself")
    return d.bit_length() - 1


@dataclass
class RoutingTable:
    """K-buckets of known peers, least-recently-seen first."""

    own_key: int
    bucket_size: int = K_BUCKET_SIZE
    _buckets: dict[int, list[str]] = field(default_factory=dict)
    _keys: dict[str, int] = field(default_factory=dict)

    def add(self, peer_id: str) -> None:
        key = key_for_peer(peer_id)
        if key == self.own_key:
            return
        idx = bucket_index(self.own_key, key)
        bucket = self._buckets.setdefault(idx, [])
        if peer_id in bucket:
            # Move to tail: most recently seen.
            bucket.remove(peer_id)
            bucket.append(peer_id)
            return
        if len(bucket) >= self.bucket_size:
            # Kademlia evicts the least-recently-seen when full (we skip the
            # liveness ping; the simulator's peers don't silently vanish).
            bucket.pop(0)
        bucket.append(peer_id)
        self._keys[peer_id] = key

    def remove(self, peer_id: str) -> None:
        key = self._keys.pop(peer_id, None)
        if key is None:
            return
        idx = bucket_index(self.own_key, key)
        bucket = self._buckets.get(idx, [])
        if peer_id in bucket:
            bucket.remove(peer_id)

    def peers(self) -> list[str]:
        return [p for bucket in self._buckets.values() for p in bucket]

    def closest(self, key: int, count: int) -> list[str]:
        """The ``count`` known peers closest to ``key`` by XOR distance."""
        return sorted(self.peers(), key=lambda p: xor_distance(key_for_peer(p), key))[
            :count
        ]

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class DhtNode:
    """One peer's DHT state: routing table plus locally stored records."""

    def __init__(self, peer_id: str, registry: "DhtRegistry", bucket_size: int = K_BUCKET_SIZE) -> None:
        self.peer_id = peer_id
        self.key = key_for_peer(peer_id)
        self.table = RoutingTable(own_key=self.key, bucket_size=bucket_size)
        self.providers: dict[CID, set[str]] = {}
        self._registry = registry

    # RPC surface (what remote peers may ask) --------------------------------

    def rpc_closest_peers(self, key: int, count: int = K_BUCKET_SIZE) -> list[str]:
        return self.table.closest(key, count)

    def rpc_add_provider(self, cid: CID, provider: str) -> None:
        self.providers.setdefault(cid, set()).add(provider)

    def rpc_get_providers(self, cid: CID) -> set[str]:
        return set(self.providers.get(cid, ()))


class DhtRegistry:
    """The peer swarm: creates nodes, runs iterative lookups between them.

    Stands in for the libp2p RPC layer; `lookup_hops` is incremented per
    peer queried so tests can assert logarithmic routing cost.
    """

    def __init__(self, replication: int = K_BUCKET_SIZE, bucket_size: int = K_BUCKET_SIZE) -> None:
        self.nodes: dict[str, DhtNode] = {}
        self.replication = replication
        self.bucket_size = bucket_size
        # Concurrent cat()/add() workers run lookups in parallel; the hop
        # counter is the only cross-thread mutable state in the registry.
        self._stats_lock = make_lock("dht.stats")
        self.lookup_hops = 0

    # -- membership ----------------------------------------------------------

    def join(self, peer_id: str, bootstrap: str | None = None) -> DhtNode:
        """Add a peer; if ``bootstrap`` given, fill its table via a self-lookup."""
        if peer_id in self.nodes:
            raise ValueError(f"peer {peer_id!r} already joined")
        node = DhtNode(peer_id, self, bucket_size=self.bucket_size)
        self.nodes[peer_id] = node
        if bootstrap is not None:
            boot = self._require(bootstrap)
            node.table.add(bootstrap)
            boot.table.add(peer_id)
            # Self-lookup populates buckets along the path (standard join).
            for found in self.iterative_find_peers(peer_id, node.key):
                node.table.add(found)
        return node

    def leave(self, peer_id: str) -> None:
        self.nodes.pop(peer_id, None)
        for node in self.nodes.values():
            node.table.remove(peer_id)

    def _require(self, peer_id: str) -> DhtNode:
        try:
            return self.nodes[peer_id]
        except KeyError:
            raise ValueError(f"unknown peer {peer_id!r}") from None

    # -- iterative lookup ------------------------------------------------------

    def iterative_find_peers(self, requester: str, key: int) -> list[str]:
        """Iteratively find the ``replication`` closest live peers to ``key``."""
        start = self._require(requester)
        shortlist = set(start.table.closest(key, ALPHA)) or set(
            list(self.nodes)[:ALPHA]
        )
        shortlist.discard(requester)
        queried: set[str] = set()
        while True:
            candidates = sorted(
                (p for p in shortlist if p not in queried and p in self.nodes),
                key=lambda p: xor_distance(key_for_peer(p), key),
            )[:ALPHA]
            if not candidates:
                break
            progressed = False
            for peer in candidates:
                queried.add(peer)
                with self._stats_lock:
                    self.lookup_hops += 1
                for learned in self.nodes[peer].rpc_closest_peers(key):
                    if learned != requester and learned not in shortlist:
                        shortlist.add(learned)
                        progressed = True
                start.table.add(peer)
            if not progressed and len(queried) >= self.replication:
                break
        live = [p for p in shortlist if p in self.nodes]
        return sorted(live, key=lambda p: xor_distance(key_for_peer(p), key))[
            : self.replication
        ]

    # -- provider records --------------------------------------------------------

    def provide(self, provider: str, cid: CID) -> int:
        """Announce that ``provider`` holds ``cid``; returns replicas stored."""
        key = key_for_cid(cid)
        targets = self.iterative_find_peers(provider, key)
        if not targets:
            targets = [provider]
        for target in targets:
            self.nodes[target].rpc_add_provider(cid, provider)
        # Provider also remembers its own record (mirrors IPFS behaviour).
        self._require(provider).rpc_add_provider(cid, provider)
        return len(targets)

    def find_providers(self, requester: str, cid: CID) -> set[str]:
        """Collect provider records from the peers closest to the CID's key."""
        key = key_for_cid(cid)
        found: set[str] = set(self._require(requester).rpc_get_providers(cid))
        for peer in self.iterative_find_peers(requester, key):
            with self._stats_lock:
                self.lookup_hops += 1
            found |= self.nodes[peer].rpc_get_providers(cid)
        return {p for p in found if p in self.nodes}
