"""IpfsNode: one peer's complete stack — blockstore, UnixFS, pins, bitswap.

The node is the unit the paper deploys two of ("two IPFS nodes for
decentralized storage"). ``add_bytes`` is step ③ of the paper's Figure 1
(store data, obtain CID); ``cat`` is step Ⓒ (fetch raw data by CID),
fetching missing blocks from providers over bitswap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cid import CID
from repro.errors import BlockNotFoundError
from repro.ipfs.bitswap import Engine
from repro.ipfs.blockstore import Blockstore, MemoryBlockstore
from repro.ipfs.chunker import Chunker
from repro.ipfs.dag import DagService
from repro.ipfs.pin import GCResult, PinManager, collect_garbage
from repro.ipfs.unixfs import AddResult, UnixFS
from repro.obs.tracer import span as obs_span


@dataclass(frozen=True)
class NodeStat:
    peer_id: str
    n_blocks: int
    pinned_roots: int


class IpfsNode:
    """A single IPFS-like peer."""

    def __init__(
        self,
        peer_id: str,
        blockstore: Blockstore | None = None,
        chunker: Chunker | None = None,
    ) -> None:
        self.peer_id = peer_id
        self.blockstore = blockstore if blockstore is not None else MemoryBlockstore()
        self.unixfs = UnixFS(self.blockstore, chunker=chunker)
        self.dag = DagService(self.blockstore)
        self.pins = PinManager()
        self.bitswap = Engine(peer_id, self.blockstore)

    @property
    def online(self) -> bool:
        """Whether this node is up; crashed nodes neither serve nor fetch."""
        return self.bitswap.online

    def set_online(self, up: bool) -> None:
        self.bitswap.online = up

    # -- local operations -----------------------------------------------------

    def add_bytes(self, data: bytes, pin: bool = True) -> AddResult:
        """Chunk, hash, and store ``data``; returns the root CID."""
        with obs_span("ipfs.add_bytes") as sp:
            sp.set_attr("peer", self.peer_id)
            sp.set_attr("bytes", len(data))
            result = self.unixfs.add_file(data)
            sp.set_attr("leaves", result.n_leaves)
            if pin:
                self.pins.pin(result.cid, recursive=True)
            return result

    def cat_local(self, cid: CID) -> bytes:
        """Read a file using only local blocks (raises if any is missing)."""
        return self.unixfs.read_file(cid)

    def has_local(self, cid: CID) -> bool:
        return self.blockstore.has(cid)

    def pin(self, cid: CID, recursive: bool = True) -> None:
        self.pins.pin(cid, recursive=recursive)

    def unpin(self, cid: CID) -> None:
        self.pins.unpin(cid)

    def gc(self) -> GCResult:
        return collect_garbage(self.blockstore, self.pins, self.dag)

    def stat(self) -> NodeStat:
        return NodeStat(
            peer_id=self.peer_id,
            n_blocks=len(self.blockstore),
            pinned_roots=len(self.pins.recursive) + len(self.pins.direct),
        )

    # -- remote fetch -----------------------------------------------------------

    def fetch_block(self, cid: CID, providers: list[str], on_transfer=None) -> None:
        """Ensure one block is local, pulling it over bitswap if needed."""
        if not self.blockstore.has(cid):
            self.bitswap.want(cid, providers, on_transfer=on_transfer)

    def cat(self, cid: CID, providers: list[str] | None = None, on_transfer=None) -> bytes:
        """Read a file, fetching any missing blocks from ``providers``.

        Traverses the DAG top-down: interior nodes are fetched first, then
        their children, so only the blocks of *this* file move.
        """
        providers = providers or []
        with obs_span("ipfs.node.cat") as sp:
            sp.set_attr("peer", self.peer_id)
            try:
                data = self.cat_local(cid)
                sp.set_attr("remote", False)
                return data
            except BlockNotFoundError:
                pass
            sp.set_attr("remote", True)
            self._ensure_subtree(cid, providers, on_transfer)
            return self.cat_local(cid)

    def _ensure_subtree(self, cid: CID, providers: list[str], on_transfer) -> None:
        self.fetch_block(cid, providers, on_transfer)
        from repro.crypto.cid import CODEC_DAG_JSON  # local import avoids cycle risk

        if cid.codec == CODEC_DAG_JSON:
            node = self.dag.get(cid)
            for link in node.links:
                self._ensure_subtree(link.cid, providers, on_transfer)
