"""IpfsCluster: a swarm of IpfsNodes wired through a DHT and bitswap.

The cluster is the deployment unit the framework's off-chain tier runs on —
the paper uses two IPFS nodes; experiments here scale that. ``add`` stores
on one node and announces provider records; ``cat`` on any other node
resolves providers through the DHT and pulls blocks over bitswap, so
cross-node retrieval exercises the full discovery + exchange path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cid import CID, CODEC_DAG_JSON
from repro.errors import BlockNotFoundError, InvalidBlockError, StorageError
from repro.ipfs.block import Block
from repro.ipfs.chunker import Chunker
from repro.ipfs.dht import DhtRegistry
from repro.ipfs.node import IpfsNode
from repro.ipfs.unixfs import AddResult
from repro.obs.metrics import get_registry
from repro.obs.tracer import span as obs_span
from repro.util.parallel import parallel_map


@dataclass(frozen=True)
class ClusterStat:
    n_nodes: int
    total_blocks: int
    dht_lookup_hops: int


class IpfsCluster:
    """A fully-connected bitswap swarm with DHT provider routing."""

    def __init__(
        self,
        n_nodes: int = 2,
        chunker: Chunker | None = None,
        replication: int = 20,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.dht = DhtRegistry(replication=replication)
        self.nodes: dict[str, IpfsNode] = {}
        bootstrap: str | None = None
        for i in range(n_nodes):
            peer_id = f"ipfs-{i}"
            node = IpfsNode(peer_id, chunker=chunker)
            self.nodes[peer_id] = node
            self.dht.join(peer_id, bootstrap=bootstrap)
            if bootstrap is None:
                bootstrap = peer_id
        # Fully-connected bitswap sessions (small swarms, as in the paper).
        names = list(self.nodes)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                self.nodes[a].bitswap.connect(self.nodes[b].bitswap)

    # -- selection -------------------------------------------------------------

    def node(self, peer_id: str | None = None) -> IpfsNode:
        if peer_id is None:
            for candidate in self.nodes.values():
                if candidate.online:
                    return candidate
            raise StorageError("no online cluster node")
        try:
            return self.nodes[peer_id]
        except KeyError:
            raise StorageError(f"unknown cluster node {peer_id!r}") from None

    def peer_ids(self) -> list[str]:
        return list(self.nodes)

    def online_peer_ids(self) -> list[str]:
        return [peer_id for peer_id, node in self.nodes.items() if node.online]

    # -- membership / chaos hooks -------------------------------------------------

    def crash_node(self, peer_id: str) -> None:
        """Crash a node in place: it stops serving and fetching, but keeps
        its blockstore so a later :meth:`restart_node` brings the data back."""
        self.node(peer_id).set_online(False)

    def restart_node(self, peer_id: str) -> int:
        """Bring a node back and fsck its blockstore: every stored block is
        rehashed against its CID, and blocks that no longer verify (rot
        while the node was down) are quarantined on the spot. Returns the
        number of blocks dropped; the replication layer's next repair pass
        re-fetches clean copies from surviving replicas."""
        node = self.node(peer_id)
        node.set_online(True)
        removed = 0
        with obs_span("ipfs.restart_rehash") as sp:
            sp.set_attr("node", peer_id)
            for cid in sorted(node.blockstore.cids(), key=lambda c: c.encode()):
                try:
                    Block.verified(cid, node.blockstore.get(cid).data)
                except InvalidBlockError:
                    node.blockstore.delete(cid)
                    removed += 1
            sp.set_attr("removed", removed)
        if removed:
            get_registry().counter("ipfs_quarantined_blocks_total").inc(removed)
        return removed

    def remove_node(self, peer_id: str) -> None:
        """Take a node out of the swarm (crash/decommission): its blocks
        become unreachable, its DHT records are forgotten, and bitswap
        sessions to it are torn down."""
        node = self.node(peer_id)  # raises on unknown id
        del self.nodes[peer_id]
        self.dht.leave(peer_id)
        node.bitswap.disconnect_all()

    # -- cluster-level API -------------------------------------------------------

    def add(self, data: bytes, node: str | None = None, announce: bool = True) -> AddResult:
        """Store ``data`` on one node; optionally publish provider records.

        Announcing covers every block of the file (root and children share
        the provider in practice since whole files live on the adding node;
        we announce the root, which is how IPFS advertises files too).
        """
        with obs_span("ipfs.add") as sp:
            sp.set_attr("bytes", len(data))
            target = self.node(node)
            if not target.online:
                # The requested node is down — fail over to any online node
                # rather than writing into a crashed store.
                get_registry().counter("ipfs_failover_total", {"op": "add"}).inc()
                sp.set_attr("failover_from", target.peer_id)
                target = self.node(None)
            sp.set_attr("node", target.peer_id)
            result = target.add_bytes(data)
            if announce:
                self.dht.provide(target.peer_id, result.cid)
            return result

    def add_many(
        self,
        payloads: list[bytes],
        node: str | None = None,
        announce: bool = True,
        max_workers: int | None = None,
    ) -> list[AddResult]:
        """Store many payloads, overlapping chunking+hashing on a thread
        pool; results come back in input order.

        All payloads land on one node (the requested one, or the add
        failover target), exactly as N sequential :meth:`add` calls would;
        provider records are announced serially afterwards so the DHT sees
        the same sequence of updates as the serial path.
        """
        with obs_span("ipfs.add_many") as sp:
            sp.set_attr("items", len(payloads))
            sp.set_attr("bytes", sum(len(p) for p in payloads))
            if not payloads:
                return []
            target = self.node(node)
            if not target.online:
                get_registry().counter("ipfs_failover_total", {"op": "add"}).inc()
                sp.set_attr("failover_from", target.peer_id)
                target = self.node(None)
            sp.set_attr("node", target.peer_id)
            results = parallel_map(
                target.add_bytes, payloads, max_workers=max_workers, queue="ipfs.add"
            )
            if announce:
                for result in results:
                    self.dht.provide(target.peer_id, result.cid)
            return results

    def cat_many(
        self,
        cids: list[CID],
        node: str | None = None,
        max_workers: int | None = None,
    ) -> list[bytes]:
        """Fetch many files concurrently; results come back in input order.

        Each fetch follows the full :meth:`cat` path (local fast path, DHT
        provider discovery, bitswap, stale-provider failover); the first
        failing fetch's error propagates, as in a serial loop.
        """
        with obs_span("ipfs.cat_many") as sp:
            sp.set_attr("items", len(cids))
            return parallel_map(
                lambda cid: self.cat(cid, node=node),
                cids,
                max_workers=max_workers,
                queue="ipfs.cat",
            )

    def providers_for(self, cid: CID, requester: str) -> list[str]:
        with obs_span("ipfs.dht.providers") as sp:
            providers = sorted(self.dht.find_providers(requester, cid))
            sp.set_attr("providers", len(providers))
            return providers

    def cat(self, cid: CID, node: str | None = None) -> bytes:
        """Read a file from any node, discovering providers via the DHT.

        If the DHT-advertised providers can't serve every block (crashed
        node, stale provider record), the read fails over to the online
        nodes that actually hold the complete file."""
        with obs_span("ipfs.cat") as sp:
            reader = self.node(node)
            if not reader.online:
                raise StorageError(f"cluster node {reader.peer_id!r} is offline")
            sp.set_attr("node", reader.peer_id)
            if reader.has_local(cid):
                try:
                    return reader.cat_local(cid)
                except StorageError:
                    # Partial local copy: fall through to the remote path.
                    sp.set_attr("partial_local", True)
                    get_registry().counter("ipfs_partial_local_total").inc()
            providers = self.providers_for(cid, reader.peer_id)
            try:
                return reader.cat(cid, providers=providers)
            except BlockNotFoundError:
                # Stale-provider recovery: only content that *was* announced
                # may fall over to replicas — unannounced content stays
                # undiscoverable, as DHT semantics require.
                if not providers:
                    raise
                fallback = [
                    peer_id
                    for peer_id, other in sorted(self.nodes.items())
                    if other.online
                    and peer_id != reader.peer_id
                    and peer_id not in providers
                    and other.blockstore.has(cid)
                ]
                if not fallback:
                    raise
                get_registry().counter(
                    "ipfs_failover_total", {"op": "cat_providers"}
                ).inc()
                sp.set_attr("failover_providers", len(fallback))
                return reader.cat(cid, providers=fallback)

    def quarantine(self, cid: CID) -> int:
        """Delete locally-stored blocks under ``cid`` whose bytes no longer
        match their CID (detected corruption), cluster-wide. Returns the
        number of blocks removed; a follow-up :meth:`cat` re-fetches clean
        copies from surviving replicas."""
        removed = 0
        with obs_span("ipfs.quarantine") as sp:
            for node in self.nodes.values():
                removed += self._quarantine_node(node, cid)
            sp.set_attr("removed", removed)
        if removed:
            get_registry().counter("ipfs_quarantined_blocks_total").inc(removed)
        return removed

    @staticmethod
    def _quarantine_node(node: IpfsNode, root: CID) -> int:
        removed = 0
        stack = [root]
        seen: set[CID] = set()
        while stack:
            current = stack.pop()
            if current in seen or not node.blockstore.has(current):
                continue
            seen.add(current)
            block = node.blockstore.get(current)
            try:
                Block.verified(current, block.data)
            except InvalidBlockError:
                node.blockstore.delete(current)
                removed += 1
                continue
            if current.codec == CODEC_DAG_JSON:
                stack.extend(link.cid for link in node.dag.get(current).links)
        return removed

    def stat(self) -> ClusterStat:
        return ClusterStat(
            n_nodes=len(self.nodes),
            total_blocks=sum(len(n.blockstore) for n in self.nodes.values()),
            dht_lookup_hops=self.dht.lookup_hops,
        )
