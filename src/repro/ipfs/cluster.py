"""IpfsCluster: a swarm of IpfsNodes wired through a DHT and bitswap.

The cluster is the deployment unit the framework's off-chain tier runs on —
the paper uses two IPFS nodes; experiments here scale that. ``add`` stores
on one node and announces provider records; ``cat`` on any other node
resolves providers through the DHT and pulls blocks over bitswap, so
cross-node retrieval exercises the full discovery + exchange path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cid import CID
from repro.errors import StorageError
from repro.ipfs.chunker import Chunker
from repro.ipfs.dht import DhtRegistry
from repro.ipfs.node import IpfsNode
from repro.ipfs.unixfs import AddResult
from repro.obs.tracer import span as obs_span


@dataclass(frozen=True)
class ClusterStat:
    n_nodes: int
    total_blocks: int
    dht_lookup_hops: int


class IpfsCluster:
    """A fully-connected bitswap swarm with DHT provider routing."""

    def __init__(
        self,
        n_nodes: int = 2,
        chunker: Chunker | None = None,
        replication: int = 20,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        self.dht = DhtRegistry(replication=replication)
        self.nodes: dict[str, IpfsNode] = {}
        bootstrap: str | None = None
        for i in range(n_nodes):
            peer_id = f"ipfs-{i}"
            node = IpfsNode(peer_id, chunker=chunker)
            self.nodes[peer_id] = node
            self.dht.join(peer_id, bootstrap=bootstrap)
            if bootstrap is None:
                bootstrap = peer_id
        # Fully-connected bitswap sessions (small swarms, as in the paper).
        names = list(self.nodes)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                self.nodes[a].bitswap.connect(self.nodes[b].bitswap)

    # -- selection -------------------------------------------------------------

    def node(self, peer_id: str | None = None) -> IpfsNode:
        if peer_id is None:
            return next(iter(self.nodes.values()))
        try:
            return self.nodes[peer_id]
        except KeyError:
            raise StorageError(f"unknown cluster node {peer_id!r}") from None

    def peer_ids(self) -> list[str]:
        return list(self.nodes)

    def remove_node(self, peer_id: str) -> None:
        """Take a node out of the swarm (crash/decommission): its blocks
        become unreachable, its DHT records are forgotten, and bitswap
        sessions to it are torn down."""
        node = self.node(peer_id)  # raises on unknown id
        del self.nodes[peer_id]
        self.dht.leave(peer_id)
        for other in self.nodes.values():
            other.bitswap._peers.pop(peer_id, None)
        node.bitswap._peers.clear()

    # -- cluster-level API -------------------------------------------------------

    def add(self, data: bytes, node: str | None = None, announce: bool = True) -> AddResult:
        """Store ``data`` on one node; optionally publish provider records.

        Announcing covers every block of the file (root and children share
        the provider in practice since whole files live on the adding node;
        we announce the root, which is how IPFS advertises files too).
        """
        with obs_span("ipfs.add") as sp:
            sp.set_attr("bytes", len(data))
            target = self.node(node)
            sp.set_attr("node", target.peer_id)
            result = target.add_bytes(data)
            if announce:
                self.dht.provide(target.peer_id, result.cid)
            return result

    def providers_for(self, cid: CID, requester: str) -> list[str]:
        with obs_span("ipfs.dht.providers") as sp:
            providers = sorted(self.dht.find_providers(requester, cid))
            sp.set_attr("providers", len(providers))
            return providers

    def cat(self, cid: CID, node: str | None = None) -> bytes:
        """Read a file from any node, discovering providers via the DHT."""
        with obs_span("ipfs.cat") as sp:
            reader = self.node(node)
            sp.set_attr("node", reader.peer_id)
            if reader.has_local(cid):
                try:
                    return reader.cat_local(cid)
                except StorageError:
                    pass  # partial local copy: fall through to remote fetch
            providers = self.providers_for(cid, reader.peer_id)
            return reader.cat(cid, providers=providers)

    def stat(self) -> ClusterStat:
        return ClusterStat(
            n_nodes=len(self.nodes),
            total_blocks=sum(len(n.blockstore) for n in self.nodes.values()),
            dht_lookup_hops=self.dht.lookup_hops,
        )
