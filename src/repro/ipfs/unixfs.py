"""UnixFS-like file layer: files as balanced Merkle-DAG trees of chunks.

``add_file`` chunks the payload, stores each chunk as a raw leaf block, and
builds a fan-out tree of DAG nodes bottom-up (default fan-out 174, matching
go-ipfs); a single-chunk file is stored as one raw block with no envelope,
exactly as IPFS does. ``read_file`` walks the tree in order, verifying every
block hash, and reassembles the bytes. ``file_size`` answers from link
metadata without touching leaf data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cid import CID, CODEC_DAG_JSON
from repro.errors import DagError
from repro.ipfs.block import Block
from repro.ipfs.blockstore import Blockstore
from repro.ipfs.chunker import Chunker, FixedSizeChunker
from repro.ipfs.dag import DagLink, DagNode, DagService
from repro.obs.prof import profiled

DEFAULT_FANOUT = 174  # go-ipfs balanced-DAG default

# Payload marker distinguishing file-tree interior nodes from other DAG uses.
_FILE_NODE_DATA = b"unixfs:file"


@dataclass(frozen=True)
class AddResult:
    """Outcome of adding a file: its root CID and storage accounting."""

    cid: CID
    size: int
    n_leaves: int
    n_nodes: int


class UnixFS:
    """File add/read operations over a blockstore."""

    def __init__(
        self,
        blockstore: Blockstore,
        chunker: Chunker | None = None,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.blockstore = blockstore
        self.chunker = chunker or FixedSizeChunker()
        self.fanout = fanout
        self.dag = DagService(blockstore)

    # -- write path ----------------------------------------------------------

    def add_file(self, data: bytes) -> AddResult:
        """Store ``data`` and return its root CID."""
        leaves: list[DagLink] = []
        n_leaves = 0
        with profiled("ipfs.chunk", n_bytes=len(data)):
            for chunk in self.chunker.chunks(data):
                block = Block.for_data(chunk)
                self.blockstore.put(block)
                leaves.append(DagLink(name="", cid=block.cid, tsize=len(chunk)))
                n_leaves += 1

        if len(leaves) == 1:
            # Single chunk: the raw block itself is the file.
            return AddResult(cid=leaves[0].cid, size=len(data), n_leaves=1, n_nodes=0)

        with profiled("ipfs.dag"):
            level = leaves
            n_nodes = 0
            while len(level) > 1:
                parents: list[DagLink] = []
                for start in range(0, len(level), self.fanout):
                    group = level[start : start + self.fanout]
                    node = DagNode(data=_FILE_NODE_DATA, links=tuple(group))
                    cid = self.dag.put(node)
                    n_nodes += 1
                    parents.append(
                        DagLink(name="", cid=cid, tsize=sum(l.tsize for l in group))
                    )
                level = parents
        return AddResult(cid=level[0].cid, size=len(data), n_leaves=n_leaves, n_nodes=n_nodes)

    # -- read path -----------------------------------------------------------

    def read_file(self, root: CID) -> bytes:
        """Reassemble a file from its root CID, verifying every block."""
        out = bytearray()
        with profiled("ipfs.read") as pf:
            self._read_into(root, out)
            pf.add_bytes(len(out))
        return bytes(out)

    def _read_into(self, cid: CID, out: bytearray) -> None:
        if cid.codec == CODEC_DAG_JSON:
            node = self.dag.get(cid)
            if node.data != _FILE_NODE_DATA:
                raise DagError(f"{cid} is not a UnixFS file node")
            for link in node.links:
                self._read_into(link.cid, out)
        else:
            block = self.blockstore.get(cid)
            if not cid.verifies(block.data):  # pragma: no cover - store verifies
                raise DagError(f"leaf block {cid} failed verification")
            out.extend(block.data)

    def file_size(self, root: CID) -> int:
        """File size from link metadata alone (no leaf reads)."""
        if root.codec != CODEC_DAG_JSON:
            return len(self.blockstore.get(root).data)
        node = self.dag.get(root)
        return sum(l.tsize for l in node.links)

    def leaf_cids(self, root: CID) -> list[CID]:
        """CIDs of the raw chunks, in file order."""
        if root.codec != CODEC_DAG_JSON:
            return [root]
        node = self.dag.get(root)
        out: list[CID] = []
        for link in node.links:
            out.extend(self.leaf_cids(link.cid))
        return out
