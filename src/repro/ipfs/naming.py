"""IPNS-style mutable naming over immutable content.

CIDs are permanent: updating a dataset produces a *new* CID. Consumers
that need "the latest X" — the current trust-registry export, today's
camera manifest — follow a *name*: a pointer owned by a keypair, bound to
a CID by a signed, monotonically-sequenced record. Anyone can verify a
record against the owner's public key; stale or forged updates are
rejected, so a name is exactly as trustworthy as its key.

This mirrors IPNS semantics: name = hash of the owner's public key,
records carry (cid, seq, validity window), highest valid seq wins.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.cid import CID
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import SignatureError, StorageError
from repro.util.serialization import canonical_json


def name_for_key(public_key: PublicKey) -> str:
    """The IPNS name owned by a key: hash of the public key, k51-prefixed."""
    return "k51" + hashlib.sha256(public_key.key_bytes).hexdigest()[:40]


@dataclass(frozen=True)
class IpnsRecord:
    """A signed name→CID binding."""

    name: str
    cid: str
    seq: int
    valid_from: float
    valid_until: float
    public_key_hex: str
    signature: bytes

    def signing_payload(self) -> bytes:
        return canonical_json(
            {
                "name": self.name,
                "cid": self.cid,
                "seq": self.seq,
                "valid_from": self.valid_from,
                "valid_until": self.valid_until,
            }
        )

    def verify(self) -> None:
        """Owner key must match the name, and the signature must hold."""
        public_key = PublicKey.from_hex(self.public_key_hex)
        if name_for_key(public_key) != self.name:
            raise SignatureError(f"key does not own name {self.name!r}")
        public_key.verify(self.signing_payload(), self.signature)


def make_record(
    keypair: KeyPair,
    cid: CID | str,
    seq: int,
    valid_from: float = 0.0,
    lifetime_s: float = 24 * 3600.0,
) -> IpnsRecord:
    """Create and sign a record binding the keypair's name to ``cid``."""
    cid_str = cid.encode() if isinstance(cid, CID) else cid
    CID.parse(cid_str)  # validate early
    name = name_for_key(keypair.public)
    unsigned = IpnsRecord(
        name=name,
        cid=cid_str,
        seq=seq,
        valid_from=valid_from,
        valid_until=valid_from + lifetime_s,
        public_key_hex=keypair.public.hex(),
        signature=b"",
    )
    signature = keypair.sign(unsigned.signing_payload())
    return IpnsRecord(
        name=name,
        cid=cid_str,
        seq=seq,
        valid_from=valid_from,
        valid_until=unsigned.valid_until,
        public_key_hex=keypair.public.hex(),
        signature=signature,
    )


@dataclass
class NameRegistry:
    """The resolver's record store (one per node or cluster).

    ``publish`` validates and keeps only the highest-sequence record per
    name; ``resolve`` returns the bound CID, honoring validity windows.
    """

    _records: dict[str, IpnsRecord] = field(default_factory=dict)

    def publish(self, record: IpnsRecord) -> None:
        record.verify()
        current = self._records.get(record.name)
        if current is not None and record.seq <= current.seq:
            raise StorageError(
                f"stale IPNS update for {record.name!r}: "
                f"seq {record.seq} <= current {current.seq}"
            )
        self._records[record.name] = record

    def resolve(self, name: str, now: float | None = None) -> CID:
        record = self._records.get(name)
        if record is None:
            raise StorageError(f"unknown name {name!r}")
        if now is not None and not (record.valid_from <= now <= record.valid_until):
            raise StorageError(f"record for {name!r} is outside its validity window")
        return CID.parse(record.cid)

    def record_for(self, name: str) -> IpnsRecord:
        try:
            return self._records[name]
        except KeyError:
            raise StorageError(f"unknown name {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._records)
