"""CAR (Content-Addressed aRchive) import/export.

A CAR file is the portable form of a DAG: a header naming the root CIDs
followed by the blocks themselves. It is how IPFS content moves between
systems without a network (backup, cold archival, bulk hand-off) — for the
framework, how a city archives evidence bundles or ships them to another
jurisdiction's cluster. Every imported block is hash-verified, so a CAR
from an untrusted courier is safe to ingest.

Framing (simplified from the CARv1 spec, same structure): a varint-length-
prefixed canonical-JSON header ``{"version": 1, "roots": [...]}``, then for
each block a varint-length-prefixed section of ``cid-string \\n raw-bytes``.
"""

from __future__ import annotations

from repro.crypto.cid import CID
from repro.errors import DagError, EncodingError, StorageError
from repro.ipfs.block import Block
from repro.ipfs.blockstore import Blockstore
from repro.ipfs.dag import DagService
from repro.util.serialization import canonical_json, from_canonical_json
from repro.util.varint import decode_varint, encode_varint

CAR_VERSION = 1


def export_car(blockstore: Blockstore, roots: list[CID]) -> bytes:
    """Serialize the subgraphs under ``roots`` into a CAR byte string.

    Shared blocks are written once even when reachable from several roots.
    """
    if not roots:
        raise StorageError("a CAR needs at least one root")
    dag = DagService(blockstore)
    header = canonical_json({"version": CAR_VERSION, "roots": [r.encode() for r in roots]})
    out = bytearray(encode_varint(len(header)) + header)
    written: set[CID] = set()
    for root in roots:
        for cid, _ in dag.walk(root):
            if cid in written:
                continue
            written.add(cid)
            data = blockstore.get(cid).data
            section = cid.encode().encode("ascii") + b"\n" + data
            out += encode_varint(len(section)) + section
    return bytes(out)


def import_car(blockstore: Blockstore, raw: bytes) -> list[CID]:
    """Load a CAR into a blockstore, verifying every block; returns roots.

    Fails if any root's subgraph is incomplete after the import — a CAR
    that promises a root must deliver every block under it.
    """
    header_len, pos = decode_varint(raw)
    try:
        header = from_canonical_json(raw[pos : pos + header_len])
    except EncodingError as exc:
        raise StorageError(f"bad CAR header: {exc}") from exc
    if not isinstance(header, dict) or header.get("version") != CAR_VERSION:
        raise StorageError("unsupported CAR version")
    try:
        roots = [CID.parse(r) for r in header["roots"]]
    except (KeyError, TypeError, EncodingError) as exc:
        raise StorageError(f"bad CAR roots: {exc}") from exc
    pos += header_len

    while pos < len(raw):
        section_len, pos = decode_varint(raw, pos)
        section = raw[pos : pos + section_len]
        if len(section) != section_len:
            raise StorageError("truncated CAR section")
        pos += section_len
        sep = section.find(b"\n")
        if sep < 0:
            raise StorageError("malformed CAR section (no CID delimiter)")
        cid = CID.parse(section[:sep].decode("ascii"))
        # Block.verified raises InvalidBlockError on any hash mismatch.
        blockstore.put(Block.verified(cid, section[sep + 1 :]))

    dag = DagService(blockstore)
    for root in roots:
        try:
            for _cid, _node in dag.walk(root):
                pass
        except (StorageError, DagError) as exc:
            raise StorageError(f"CAR incomplete under root {root}: {exc}") from exc
    return roots
