"""Blocks: the unit of content-addressed storage.

A block is immutable bytes plus the CID that addresses them. Constructing a
block computes the CID; receiving a block from an untrusted peer goes through
:func:`Block.verified`, which recomputes the hash and rejects mismatches —
the integrity property the paper leans on when it stores CIDs on-chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cid import CID, CODEC_RAW
from repro.errors import InvalidBlockError


@dataclass(frozen=True)
class Block:
    """Immutable (cid, data) pair with the invariant cid == hash(data)."""

    cid: CID
    data: bytes

    @classmethod
    def for_data(cls, data: bytes, codec: int = CODEC_RAW) -> "Block":
        """Create a block, deriving its CID from the bytes."""
        return cls(cid=CID.for_data(data, codec=codec), data=bytes(data))

    @classmethod
    def verified(cls, cid: CID, data: bytes) -> "Block":
        """Accept a block from an untrusted source only if the hash matches."""
        if not cid.verifies(data):
            raise InvalidBlockError(f"data does not hash to {cid}")
        return cls(cid=cid, data=bytes(data))

    def __len__(self) -> int:
        return len(self.data)
