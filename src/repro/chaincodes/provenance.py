"""Provenance chaincode (paper §III-B c).

"The chaincode uses cryptographic hashes to verify data integrity,
preventing tampering and maintaining an immutable record of changes."

Each data entry gets a hash-chained lineage: every provenance event
(captured → validated → stored → accessed → …) links to the previous
event's hash, so the full chain is verifiable from the latest record and
any historical edit is detectable. Entries are stored under composite keys
``prov / <entry_id> / <seq>`` so one range scan returns a lineage in order.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.util.serialization import canonical_json
from repro.util.clock import isoformat

IDX_PROV = "prov"
_HEAD_PREFIX = "provhead:"
GENESIS_HASH = "0" * 64

# The lifecycle actions a record may go through; free-form extras allowed
# but these anchor the tests and examples.
STANDARD_ACTIONS = ("captured", "validated", "stored", "accessed", "flagged")


def _entry_hash(entry: dict) -> str:
    hashable = {k: v for k, v in entry.items() if k != "entry_hash"}
    return hashlib.sha256(canonical_json(hashable)).hexdigest()


class ProvenanceChaincode(Chaincode):
    name = "provenance"

    @staticmethod
    def _head_key(entry_id: str) -> str:
        return _HEAD_PREFIX + entry_id

    def record(
        self,
        stub: ChaincodeStub,
        entry_id: str,
        action: str,
        actor: str,
        details_json: str = "{}",
    ):
        """Append one provenance event to a data entry's chain."""
        if not entry_id or not action:
            raise ChaincodeError("entry_id and action are required")
        try:
            details = json.loads(details_json)
        except json.JSONDecodeError as exc:
            raise ChaincodeError(f"details is not valid JSON: {exc}") from exc
        head_raw = stub.get_state(self._head_key(entry_id))
        if head_raw is None:
            seq, prev_hash = 0, GENESIS_HASH
        else:
            head = json.loads(head_raw)
            seq, prev_hash = head["seq"] + 1, head["entry_hash"]
        entry = {
            "entry_id": entry_id,
            "seq": seq,
            "action": action,
            "actor": actor,
            "details": details,
            "tx_id": stub.get_tx_id(),
            "timestamp": isoformat(stub.get_timestamp()),
            "prev_hash": prev_hash,
        }
        entry["entry_hash"] = _entry_hash(entry)
        key = stub.create_composite_key(IDX_PROV, [entry_id, f"{seq:08d}"])
        stub.put_state(key, canonical_json(entry))
        stub.put_state(
            self._head_key(entry_id),
            # Canonical: the head record is re-read and re-hashed on every
            # append, so its bytes must not depend on dict order.
            canonical_json({"seq": seq, "entry_hash": entry["entry_hash"]}),
        )
        stub.set_event("ProvenanceRecorded", {"entry_id": entry_id, "action": action})
        return {"seq": seq, "entry_hash": entry["entry_hash"]}

    def lineage(self, stub: ChaincodeStub, entry_id: str):
        """The full provenance chain of an entry, oldest first."""
        rows = stub.get_state_by_partial_composite_key(IDX_PROV, [entry_id])
        return [json.loads(v) for _, v in rows]

    def verify(self, stub: ChaincodeStub, entry_id: str):
        """Recompute and check every hash link; returns the verified length.

        Raises on a broken link — the tamper-detection the paper claims.
        """
        chain = self.lineage(stub, entry_id)
        if not chain:
            raise ChaincodeError(f"no provenance for entry {entry_id}")
        prev_hash = GENESIS_HASH
        for i, entry in enumerate(chain):
            if entry["seq"] != i:
                raise ChaincodeError(f"provenance gap at seq {i} for {entry_id}")
            if entry["prev_hash"] != prev_hash:
                raise ChaincodeError(f"provenance chain broken at seq {i}")
            if _entry_hash(entry) != entry["entry_hash"]:
                raise ChaincodeError(f"provenance entry {i} hash mismatch")
            prev_hash = entry["entry_hash"]
        return {"entry_id": entry_id, "length": len(chain), "head": prev_hash}

    def head(self, stub: ChaincodeStub, entry_id: str):
        raw = stub.get_state(self._head_key(entry_id))
        if raw is None:
            raise ChaincodeError(f"no provenance for entry {entry_id}")
        return json.loads(raw)
