"""Trust Score chaincode: stores trust state on-chain (paper §III-A:
"storing it on-chain for future reference").

The off-chain :class:`repro.trust.TrustEngine` computes scores; this
contract is their system of record — every update is a transaction, so the
full trust trajectory of a source is auditable from the ledger history.
Validator flag/removal records live here too.
"""

from __future__ import annotations

import json

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.util.serialization import canonical_json
from repro.util.clock import isoformat

_SCORE_PREFIX = "trust:"
_VALIDATOR_PREFIX = "validator:"


class TrustScoreChaincode(Chaincode):
    name = "trust_score"

    @staticmethod
    def _score_key(source_id: str) -> str:
        return _SCORE_PREFIX + source_id

    @staticmethod
    def _validator_key(name: str) -> str:
        return _VALIDATOR_PREFIX + name

    # -- source scores ---------------------------------------------------------

    def put_score(self, stub: ChaincodeStub, source_id: str, record_json: str):
        try:
            record = json.loads(record_json)
        except json.JSONDecodeError as exc:
            raise ChaincodeError(f"score record is not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or "score" not in record:
            raise ChaincodeError("score record must be an object with a 'score' field")
        score = record["score"]
        if not isinstance(score, (int, float)) or not 0.0 <= score <= 1.0:
            raise ChaincodeError("score must be a number in [0, 1]")
        record = dict(record)
        record["source_id"] = source_id
        record["updated_at"] = isoformat(stub.get_timestamp())
        stub.put_state(self._score_key(source_id), canonical_json(record))
        stub.set_event("TrustScoreUpdated", {"source_id": source_id, "score": score})
        return record

    def get_score(self, stub: ChaincodeStub, source_id: str):
        raw = stub.get_state(self._score_key(source_id))
        if raw is None:
            raise ChaincodeError(f"no trust score for source {source_id}")
        return json.loads(raw)

    def score_history(self, stub: ChaincodeStub, source_id: str):
        """The source's full trust trajectory from the ledger history DB."""
        out = []
        for entry in stub.get_history_for_key(self._score_key(source_id)):
            if entry.value is not None:
                record = json.loads(entry.value)
                out.append({"tx_id": entry.tx_id, "score": record["score"]})
        return out

    def list_scores(self, stub: ChaincodeStub):
        rows = stub.get_state_by_range(_SCORE_PREFIX, _SCORE_PREFIX + "\x7f")
        return [json.loads(v) for _, v in rows]

    # -- validator accountability ----------------------------------------------------

    def flag_validator(self, stub: ChaincodeStub, name: str, reason: str):
        raw = stub.get_state(self._validator_key(name))
        record = json.loads(raw) if raw is not None else {"name": name, "flags": 0, "removed": False}
        record["flags"] += 1
        record["last_reason"] = reason
        record["flagged_at"] = isoformat(stub.get_timestamp())
        stub.put_state(self._validator_key(name), canonical_json(record))
        stub.set_event("ValidatorFlagged", {"name": name, "flags": record["flags"]})
        return record

    def remove_validator(self, stub: ChaincodeStub, name: str, reason: str):
        raw = stub.get_state(self._validator_key(name))
        record = json.loads(raw) if raw is not None else {"name": name, "flags": 0}
        record["removed"] = True
        record["removal_reason"] = reason
        record["removed_at"] = isoformat(stub.get_timestamp())
        stub.put_state(self._validator_key(name), canonical_json(record))
        stub.set_event("ValidatorRemoved", {"name": name})
        return record

    def get_validator(self, stub: ChaincodeStub, name: str):
        raw = stub.get_state(self._validator_key(name))
        if raw is None:
            raise ChaincodeError(f"no record for validator {name}")
        return json.loads(raw)
