"""Access-control chaincode: per-entry read authorization.

The paper picks a permissioned platform because "many stakeholders need
selective access to sensitive information" — surveillance footage is not
public record. This contract stores an ACL per data entry (which orgs may
fetch the raw bytes) and an immutable access-request audit trail; the
query engine consults it before the off-chain fetch, so the blockchain —
not client goodwill — decides who reads what.

Entries without an ACL stay readable by everyone (open data is the default
for pollution sensors and the like); setting an ACL closes the entry to
the listed orgs plus its owner.
"""

from __future__ import annotations

import json

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.util.serialization import canonical_json
from repro.util.clock import isoformat

_ACL_PREFIX = "acl:"
IDX_ACCESS_LOG = "acl~log"


class AccessControlChaincode(Chaincode):
    name = "access_control"

    @staticmethod
    def _key(entry_id: str) -> str:
        return _ACL_PREFIX + entry_id

    def set_acl(self, stub: ChaincodeStub, entry_id: str, orgs_json: str):
        """Restrict an entry to the listed orgs. Only the entry's owner org
        (or the first setter) may change an existing ACL."""
        if not entry_id:
            raise ChaincodeError("entry_id required")
        try:
            orgs = json.loads(orgs_json)
        except json.JSONDecodeError as exc:
            raise ChaincodeError(f"orgs is not valid JSON: {exc}") from exc
        if not isinstance(orgs, list) or not all(isinstance(o, str) for o in orgs) or not orgs:
            raise ChaincodeError("orgs must be a non-empty list of org names")
        caller_org = stub.get_creator().org
        existing_raw = stub.get_state(self._key(entry_id))
        if existing_raw is not None:
            existing = json.loads(existing_raw)
            if existing["owner_org"] != caller_org:
                raise ChaincodeError(
                    f"only owner org {existing['owner_org']!r} may change this ACL"
                )
            owner = existing["owner_org"]
        else:
            owner = caller_org
        record = {
            "entry_id": entry_id,
            "owner_org": owner,
            "allowed_orgs": sorted(set(orgs) | {owner}),
            "updated_at": isoformat(stub.get_timestamp()),
            "updated_by": stub.get_creator().name,
        }
        stub.put_state(self._key(entry_id), canonical_json(record))
        stub.set_event("AclUpdated", {"entry_id": entry_id, "allowed_orgs": record["allowed_orgs"]})
        return record

    def get_acl(self, stub: ChaincodeStub, entry_id: str):
        raw = stub.get_state(self._key(entry_id))
        if raw is None:
            return None  # open entry
        return json.loads(raw)

    def check_access(self, stub: ChaincodeStub, entry_id: str, org: str):
        """May ``org`` read this entry's raw data?"""
        acl = self.get_acl(stub, entry_id)
        allowed = acl is None or org in acl["allowed_orgs"]
        return {"entry_id": entry_id, "org": org, "allowed": allowed}

    def log_access(self, stub: ChaincodeStub, entry_id: str, outcome: str):
        """Append an access attempt to the immutable audit trail."""
        if outcome not in ("granted", "denied"):
            raise ChaincodeError("outcome must be 'granted' or 'denied'")
        creator = stub.get_creator()
        entry = {
            "entry_id": entry_id,
            "accessor": creator.name,
            "org": creator.org,
            "outcome": outcome,
            "tx_id": stub.get_tx_id(),
            "at": isoformat(stub.get_timestamp()),
        }
        key = stub.create_composite_key(IDX_ACCESS_LOG, [entry_id, stub.get_tx_id()])
        stub.put_state(key, canonical_json(entry))
        return entry

    def access_log(self, stub: ChaincodeStub, entry_id: str):
        rows = stub.get_state_by_partial_composite_key(IDX_ACCESS_LOG, [entry_id])
        return sorted((json.loads(v) for _, v in rows), key=lambda e: e["at"])
