"""Admin Enrollment chaincode — the paper's role-management contract.

A faithful port of the §III-B snippet::

    async enrollAdmin(ctx, adminId) {
      const exists = await this.adminExists(ctx, adminId);
      if (exists) { throw new Error('Admin ${adminId} already exists'); }
      const admin = { role: 'admin', createdAt: new Date().toISOString() };
      await ctx.stub.putState(adminId, Buffer.from(JSON.stringify(admin)));
      return 'Admin ${adminId} enrolled successfully'; }

with the same duplicate check and on-chain metadata, plus the revocation
and listing functions a real deployment needs for auditing.
"""

from __future__ import annotations

import json

from repro.errors import ChaincodeError
from repro.fabric.chaincode import Chaincode, ChaincodeStub
from repro.util.serialization import canonical_json
from repro.util.clock import isoformat

_ADMIN_PREFIX = "admin:"


class AdminEnrollmentChaincode(Chaincode):
    name = "admin_enrollment"

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _key(admin_id: str) -> str:
        return _ADMIN_PREFIX + admin_id

    # -- contract functions -----------------------------------------------------

    def enroll_admin(self, stub: ChaincodeStub, admin_id: str):
        """Enroll a new admin; rejects duplicates (paper's exists check)."""
        if not admin_id:
            raise ChaincodeError("admin id must be non-empty")
        if stub.get_state(self._key(admin_id)) is not None:
            raise ChaincodeError(f"Admin {admin_id} already exists")
        admin = {
            "admin_id": admin_id,
            "role": "admin",
            "created_at": isoformat(stub.get_timestamp()),
            "enrolled_by": stub.get_creator().name,
        }
        stub.put_state(self._key(admin_id), canonical_json(admin))
        stub.set_event("AdminEnrolled", {"admin_id": admin_id})
        return f"Admin {admin_id} enrolled successfully"

    def admin_exists(self, stub: ChaincodeStub, admin_id: str):
        return stub.get_state(self._key(admin_id)) is not None

    def get_admin(self, stub: ChaincodeStub, admin_id: str):
        raw = stub.get_state(self._key(admin_id))
        if raw is None:
            raise ChaincodeError(f"Admin {admin_id} not found")
        return json.loads(raw)

    def revoke_admin(self, stub: ChaincodeStub, admin_id: str, actor_admin_id: str):
        """Only an existing admin may revoke another (and not themselves)."""
        if admin_id == actor_admin_id:
            raise ChaincodeError("an admin cannot revoke themselves")
        if stub.get_state(self._key(actor_admin_id)) is None:
            raise ChaincodeError(f"actor {actor_admin_id} is not an admin")
        if stub.get_state(self._key(admin_id)) is None:
            raise ChaincodeError(f"Admin {admin_id} not found")
        stub.del_state(self._key(admin_id))
        stub.set_event("AdminRevoked", {"admin_id": admin_id, "by": actor_admin_id})
        return f"Admin {admin_id} revoked"

    def list_admins(self, stub: ChaincodeStub):
        rows = stub.get_state_by_range(_ADMIN_PREFIX, _ADMIN_PREFIX + "\x7f")
        return [json.loads(v) for _, v in rows]
